#!/usr/bin/env python
"""Recreate the paper's trans-Atlantic testbed in the simulator.

Builds INRIA (firewalled, France) ↔ Indiana University (US backbone) with
the paper's measured bandwidths and realistic 2005 RTTs, deploys the
MSG-Dispatcher + WS-MsgBox at IU, and sweeps the client count to show the
Figure 6 effect live: with the mailbox the system scales; pointing
replies at the firewalled client collapses it.

Run:  python examples/transatlantic_simulation.py
"""

from dataclasses import replace

from repro.core import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.rt.service import SoapHttpApp
from repro.simnet import (
    BACKBONE_IU,
    INRIA,
    SimHttpServer,
    Simulator,
)
from repro.simnet.scenarios import add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.workload.sim_testclient import SimRampConfig, SimRampTester
from repro.wsa import EndpointReference


def build_world(use_mailbox: bool, clients: int):
    sim = Simulator()
    net = Network(sim)
    inria = add_site(net, INRIA, name="inria")
    iu_ws = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    iu_wsd = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"), open_ports=(8000, 8500)
    )

    echo = SimAsyncEchoService(net, iu_ws, reply_senders=32, connect_timeout=4.0)
    SimHttpServer(net, iu_ws, 9000, echo.handler, workers=32, service_time=0.004)

    registry = ServiceRegistry()
    registry.register("echo", "http://iuWS:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=4, ws_workers=8, accept_queue=128, destination_queue=16,
        parallel_per_destination=4, connect_timeout=4.0,
        passthrough_reply_prefixes=("http://iuWSD:8500/mailbox",),
    )
    dispatcher = SimMsgDispatcher(
        net, iu_wsd, registry, own_address="http://iuWSD:8000/msg", config=config
    )
    SimHttpServer(net, iu_wsd, 8000, dispatcher.handler, workers=32,
                  service_time=0.003)

    store = MailboxStore(clock=sim.clock, max_messages_per_box=100_000)
    msgbox = MsgBoxService(store, base_url="http://iuWSD:8500/mailbox")
    mb_app = SoapHttpApp()
    mb_app.mount("/mailbox", msgbox)
    SimHttpServer(net, iu_wsd, 8500, lambda r: mb_app.handle_request(r, None),
                  workers=32, service_time=0.004)

    ids = IdGenerator("example", seed=clients)
    if use_mailbox:
        eprs = [
            make_mailbox_epr("http://iuWSD:8500/mailbox", store.create())
            for _ in range(clients)
        ]
        reply_for = lambda n: eprs[n % len(eprs)]
    else:
        reply_for = lambda n: EndpointReference(
            f"http://inria:{20000 + n % clients}/reply"
        )

    def factory(counter=[0]):
        counter[0] += 1
        env = make_echo_message(
            to="urn:wsd:echo", message_id=ids.next(), reply_to=reply_for(counter[0])
        )
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        return HttpRequest("POST", "/msg/echo", headers=headers, body=env.to_bytes())

    tester = SimRampTester(net, inria, "iuWSD", 8000, "/msg/echo", factory)
    return tester, dispatcher, msgbox


def main() -> None:
    print("Simulated testbed: INRIA (1335/1262 kbps, firewalled) "
          "<-> IU backbone (3655/2739 kbps), RTT ~130 ms\n")
    header = f"{'clients':>8} {'with mailbox':>14} {'replies->client':>16}"
    print(header)
    print("-" * len(header))
    for clients in (1, 10, 25, 50):
        row = [f"{clients:>8}"]
        for use_mailbox in (True, False):
            tester, dispatcher, msgbox = build_world(use_mailbox, clients)
            result = tester.run(
                SimRampConfig(clients=clients, duration=30.0,
                              connect_timeout=10.0, response_timeout=10.0,
                              think_time=0.004)
            )
            row.append(f"{result.per_minute:>13.0f}{'*' if not use_mailbox else ' '}")
        print(" ".join(row))
    print("\n(*) without the mailbox the dispatcher burns connect timeouts "
          "against the INRIA firewall and collapses — Figure 6's finding.")


if __name__ == "__main__":
    main()

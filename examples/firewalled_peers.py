#!/usr/bin/env python
"""Two peers behind firewalls holding a long conversation via WS-MsgBox.

The paper's motivating scenario: *neither* peer has an accessible network
endpoint (applets, NATed laptops).  Both create mailboxes at the public
intermediary, advertise the mailbox EPRs as their reply addresses, and a
multi-turn conversation flows entirely through outbound HTTP — each peer
only ever *originates* connections.

The conversation here is a tiny negotiation: peer A proposes a number,
peer B counters with half, until they agree below a threshold.  Every
turn is a one-way WS-Addressing message deposited into the other peer's
mailbox; ``RelatesTo`` chains the turns into one conversation, exactly
the "reliable and long running conversations through firewalls" the paper
targets.

Run:  python examples/firewalled_peers.py
"""

from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxClient, MsgBoxService
from repro.rt import HttpClient, HttpServer, SoapHttpApp
from repro.soap import Envelope, RpcRequest, build_rpc_request, parse_rpc_request
from repro.transport import InprocNetwork
from repro.util.ids import IdGenerator
from repro.wsa import AddressingHeaders, EndpointReference

CONVERSATION_NS = "urn:example:negotiation"


class Peer:
    """A firewalled peer: a mailbox for inbox, outbound HTTP for outbox."""

    def __init__(self, name: str, net: InprocNetwork, post_office_url: str) -> None:
        self.name = name
        self.http = HttpClient(net)
        self.mailbox = MsgBoxClient(self.http, post_office_url)
        self.mailbox.create()
        self.ids = IdGenerator(name, seed=hash(name) % 2**31)
        self.transcript: list[str] = []

    @property
    def epr(self) -> EndpointReference:
        return self.mailbox.epr()

    def send_proposal(self, to: EndpointReference, value: int,
                      relates_to: str | None = None) -> str:
        envelope = build_rpc_request(
            RpcRequest(CONVERSATION_NS, "propose", [("value", str(value))])
        )
        message_id = self.ids.next()
        headers = AddressingHeaders(
            to=to.address,
            action=f"{CONVERSATION_NS}/propose",
            message_id=message_id,
            reply_to=self.epr,
            relates_to=[relates_to] if relates_to else [],
            reference_headers=[p.copy() for p in to.reference_properties],
        )
        headers.attach(envelope)
        self.http.post_envelope(to.address, envelope)
        self.transcript.append(f"{self.name} -> propose {value}")
        return message_id

    def receive_one(self, timeout: float = 5.0) -> tuple[int, str, EndpointReference]:
        """Poll the mailbox for the next turn; returns (value, msg id, sender)."""
        messages = self.mailbox.poll(expected=1, timeout=timeout)
        if not messages:
            raise TimeoutError(f"{self.name}: no message arrived")
        envelope = messages[0]
        call = parse_rpc_request(envelope)
        headers = AddressingHeaders.from_envelope(envelope)
        value = int(call.require_param("value"))
        self.transcript.append(f"{self.name} <- propose {value}")
        return value, headers.message_id or "", headers.reply_to

    def close(self) -> None:
        self.mailbox.destroy()
        self.http.close()


def main() -> None:
    net = InprocNetwork()

    # the only public machine: the post office
    msgbox = MsgBoxService(
        MailboxStore(),
        security=MailboxSecurity(b"post-office-secret"),
        base_url="http://post-office.example:8500/mailbox",
    )
    app = SoapHttpApp()
    app.mount("/mailbox", msgbox)
    server = HttpServer(
        net.listen("post-office.example:8500"), app.handle_request, workers=4
    ).start()
    print(f"[po]   post office at {server.url}")

    alice = Peer("alice", net, "http://post-office.example:8500/mailbox")
    bob = Peer("bob", net, "http://post-office.example:8500/mailbox")
    print(f"[alice] mailbox {alice.mailbox.mailbox_id[:12]}…")
    print(f"[bob]   mailbox {bob.mailbox.mailbox_id[:12]}…")

    # Alice opens the negotiation at 1000; each side halves until < 10.
    value = 1000
    last_id = alice.send_proposal(bob.epr, value)
    turn_owner, other = bob, alice
    turns = 1
    while True:
        value, last_id, sender_epr = turn_owner.receive_one()
        if value < 10:
            print(f"[deal] {turn_owner.name} accepts {value} after {turns} turns")
            break
        counter = value // 2
        last_id = turn_owner.send_proposal(sender_epr, counter, relates_to=last_id)
        turn_owner, other = other, turn_owner
        turns += 1

    print("\n-- transcript --")
    for line in alice.transcript + bob.transcript:
        print("  ", line)
    print(f"\n[po]   mailbox service stats: {msgbox.stats}")

    alice.close()
    bob.close()
    server.stop()
    print("done.")


if __name__ == "__main__":
    main()

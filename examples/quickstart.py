#!/usr/bin/env python
"""Quickstart: stand up the full WS-Dispatcher stack in one process.

Builds the paper's Figure 1 deployment on real threads and real HTTP
framing (over the in-process transport, so it runs anywhere with zero
setup):

- an echo Web Service in the "inaccessible zone",
- the intermediary host with Registry, RPC-Dispatcher, MSG-Dispatcher and
  WS-MsgBox,
- a client that calls the service both ways: synchronous SOAP-RPC through
  the RPC-Dispatcher, and asynchronous messaging with a mailbox.

Run:  python examples/quickstart.py
"""

from repro.core import (
    MsgDispatcher,
    MsgDispatcherConfig,
    RpcDispatcher,
    ServiceRegistry,
    StatusPage,
)
from repro.http import HttpRequest
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxClient, MsgBoxService
from repro.rt import HttpClient, HttpServer, SoapHttpApp
from repro.soap import parse_rpc_response
from repro.transport import InprocNetwork
from repro.util.ids import IdGenerator
from repro.workload import AsyncEchoService, EchoService, make_echo_message, make_echo_request


def main() -> None:
    net = InprocNetwork()

    # ------------------------------------------------------------------
    # Inaccessible zone: the Web Service host (think: behind a firewall)
    # ------------------------------------------------------------------
    ws_http = HttpClient(net)
    ws_app = SoapHttpApp()
    ws_app.mount("/echo-rpc", EchoService())            # classic request/response
    ws_app.mount("/echo-msg", AsyncEchoService(ws_http))  # one-way messaging
    ws_server = HttpServer(
        net.listen("internal.example:9000"), ws_app.handle_request, workers=4
    ).start()
    print(f"[ws]   echo services listening at {ws_server.url}")

    # ------------------------------------------------------------------
    # Intermediary: Registry + both dispatchers + WS-MsgBox
    # ------------------------------------------------------------------
    registry = ServiceRegistry()
    registry.register(
        "echo-rpc", "http://internal.example:9000/echo-rpc",
        metadata={"desc": "RPC echo"},
    )
    registry.register(
        "echo-msg", "http://internal.example:9000/echo-msg",
        metadata={"desc": "messaging echo"},
    )

    wsd_http = HttpClient(net)
    rpc_dispatcher = RpcDispatcher(registry, wsd_http)
    msg_dispatcher = MsgDispatcher(
        registry,
        wsd_http,
        own_address="http://wsd.example:8000/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
    )
    msgbox = MsgBoxService(
        MailboxStore(),
        security=MailboxSecurity(b"quickstart-secret"),
        base_url="http://wsd.example:8000/mailbox",
    )
    status = StatusPage()
    status.add("msg-dispatcher", msg_dispatcher)
    status.add("rpc-dispatcher", rpc_dispatcher)
    status.add("msgbox", msgbox)
    status.add("registry", lambda: registry.stats)

    app = SoapHttpApp()
    app.mount("/msg", msg_dispatcher)
    app.mount("/mailbox", msgbox)
    app.mount_page("/status", status.page_handler)

    def front_door(request, peer=None):
        if request.target.startswith("/rpc"):
            return rpc_dispatcher.handle_request(request, peer)
        return app.handle_request(request, peer)

    wsd_server = HttpServer(
        net.listen("wsd.example:8000"), front_door, workers=8
    ).start()
    print(f"[wsd]  dispatcher listening at {wsd_server.url}")

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    client = HttpClient(net)

    # 1) synchronous SOAP-RPC through the RPC-Dispatcher
    reply = client.call_soap("http://wsd.example:8000/rpc/echo-rpc", make_echo_request())
    echoed = parse_rpc_response(reply).result("return")
    print(f"[rpc]  synchronous echo returned {len(echoed or '')} bytes of payload")

    # 2) asynchronous messaging with a mailbox (the firewalled-client path)
    mailbox = MsgBoxClient(client, "http://wsd.example:8000/mailbox")
    mailbox.create()
    print(f"[mbox] created mailbox {mailbox.mailbox_id[:12]}…")

    ids = IdGenerator("quickstart", seed=1)
    message = make_echo_message(
        to="urn:wsd:echo-msg", message_id=ids.next(), reply_to=mailbox.epr()
    )
    status = client.post_envelope("http://wsd.example:8000/msg/echo-msg", message).status
    print(f"[msg]  one-way message accepted with HTTP {status}")

    responses = mailbox.poll(expected=1, timeout=5)
    body = parse_rpc_response(responses[0])
    print(f"[mbox] picked up {len(responses)} response; echo payload intact: "
          f"{body.result('return') is not None}")

    # the ops view: live counters of every component over plain GET
    status_text = client.request(
        "http://wsd.example:8000/status", HttpRequest("GET", "/")
    ).body.decode()
    print("[status]")
    for line in status_text.splitlines():
        print("   ", line)
    mailbox.destroy()
    client.close()
    msg_dispatcher.stop()
    wsd_server.stop()
    ws_server.stop()
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Future-work demo: a load-balanced farm of WS-Dispatchers with SSO.

The paper's §4.4 roadmap, implemented: a farm of RPC-Dispatchers fronting
replicated echo services, registry-integrated load balancing
(least-pending), liveness probing with automatic failover, and single
sign-on enforced at the dispatcher so the services stay security-unaware.

Run:  python examples/dispatcher_farm.py
"""

from repro.core import RpcDispatcher, ServiceRegistry, SsoGate, TokenIssuer
from repro.core.loadbalance import DispatcherFarm, LeastPending, RoundRobin
from repro.core.sso import attach_token
from repro.errors import TransportError
from repro.rt import HttpClient, HttpServer, SoapHttpApp
from repro.soap import parse_rpc_response
from repro.transport import InprocNetwork
from repro.workload import EchoService, make_echo_request


def main() -> None:
    net = InprocNetwork()

    # --- replicated echo service on two internal hosts --------------------
    registry = ServiceRegistry(selector=RoundRobin())
    for i in range(2):
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        server = HttpServer(
            net.listen(f"replica{i}.internal:9000"), app.handle_request, workers=4
        ).start()
        print(f"[svc]  echo replica at {server.url}")
    registry.register(
        "echo",
        ["http://replica0.internal:9000/echo", "http://replica1.internal:9000/echo"],
    )

    # --- SSO: services do zero security; the dispatchers check ----------
    issuer = TokenIssuer(b"farm-secret")
    issuer.add_principal("alice", "wonderland")
    gate = SsoGate(issuer)
    gate.restrict("echo", ["alice"])

    # --- a farm of three dispatchers --------------------------------------
    farm_urls = []
    servers = []
    for i in range(3):
        dispatcher = RpcDispatcher(registry, HttpClient(net), inspector=gate)
        server = HttpServer(
            net.listen(f"wsd{i}.example:8000"), dispatcher.handle_request, workers=4
        ).start()
        farm_urls.append(server.url)
        servers.append(server)
        print(f"[farm] dispatcher {i} at {server.url}")

    farm = DispatcherFarm(farm_urls, policy=LeastPending())
    client = HttpClient(net)
    token = issuer.login("alice", "wonderland")

    def call_via_farm() -> bool:
        url = farm.pick()
        try:
            envelope = attach_token(make_echo_request(), token)
            reply = client.call_soap(f"{url}/rpc/echo", envelope)
            return parse_rpc_response(reply).result("return") is not None
        except TransportError:
            farm.report_failure(url)
            return False
        finally:
            farm.finish(url)

    ok = sum(call_via_farm() for _ in range(30))
    print(f"\n[run]  30 authorized calls, {ok} succeeded across the farm")

    # anonymous caller is stopped at the dispatcher, not the service
    resp = client.post_envelope(f"{farm.pick()}/rpc/echo", make_echo_request())
    print(f"[sso]  anonymous call rejected with HTTP {resp.status}")

    # kill one dispatcher; the farm fails over transparently
    servers[0].stop()
    farm.probe_all(lambda url: _probe(client, url))
    print(f"[fail] dispatcher 0 stopped; healthy members: "
          f"{[u.rsplit('/', 1)[-1] for u in farm.healthy_members]}")
    ok = sum(call_via_farm() for _ in range(10))
    print(f"[run]  10 more calls after failover, {ok} succeeded")

    for server in servers[1:]:
        server.stop()
    client.close()
    print("done.")


def _probe(client: HttpClient, url: str) -> bool:
    from repro.http import HttpRequest

    try:
        client.request(f"{url}/rpc/__probe__", HttpRequest("GET", "/"))
        return True
    except TransportError:
        return False


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Future-work demo: hold/retry delivery with expiration + dedup.

Paper §4.4: "adding hold/retry on delivery to simple one way messaging
(HTTP) with messages stored in DB with expiration time ... related with
use of WS-ReliableMessaging."

This example wires a :class:`HoldRetryStore` in front of a flaky service
(down for the first 3 seconds, then healthy) and shows: at-least-once
delivery across the outage, expiration of messages that outlive their
TTL, and receiver-side duplicate suppression keyed by ``wsa:MessageID``.

Run:  python examples/reliable_messaging.py
"""

import threading
import time

from repro.errors import TransportError
from repro.msgbox import MailboxStore
from repro.reliable import DuplicateFilter, ExponentialBackoff, HoldRetryStore
from repro.rt import HttpClient, HttpServer, SoapHttpApp
from repro.rt.service import FunctionService
from repro.soap import Envelope
from repro.transport import InprocNetwork
from repro.util.ids import IdGenerator
from repro.workload import make_echo_message
from repro.wsa import AddressingHeaders


def main() -> None:
    net = InprocNetwork()
    boot_at = time.monotonic() + 3.0  # the service is "down" for 3 s
    dedup = DuplicateFilter(window=60.0)
    received: list[str] = []
    duplicates = [0]

    def flaky_service(envelope: Envelope, ctx) -> None:
        if time.monotonic() < boot_at:
            raise TransportError("service still booting")
        message_id = AddressingHeaders.from_envelope(envelope).message_id or "?"
        if dedup.seen(message_id):
            duplicates[0] += 1
            return None  # at-least-once made effectively-once
        received.append(message_id)
        return None

    app = SoapHttpApp()
    app.mount("/inbox", FunctionService(flaky_service))
    server = HttpServer(net.listen("svc.example:9000"), app.handle_request).start()
    print(f"[svc]  flaky service at {server.url} (down for the first 3 s)")

    http = HttpClient(net, connect_timeout=1.0, response_timeout=2.0)

    def deliver(msg) -> None:
        response = http.post_envelope(msg.target_url, Envelope.from_bytes(msg.envelope_bytes))
        if response.status >= 400:
            raise TransportError(f"HTTP {response.status}")

    store = HoldRetryStore(
        deliver,
        policy=ExponentialBackoff(max_attempts=8, base=0.25, max_delay=2.0),
        default_ttl=30.0,
    )

    ids = IdGenerator("reliable", seed=1)
    print("[send] holding 10 messages while the service is down…")
    for _ in range(10):
        message_id = ids.next()
        envelope = make_echo_message("http://svc.example:9000/inbox", message_id)
        store.hold(message_id, "http://svc.example:9000/inbox", envelope.to_bytes())

    # one message with a hopeless TTL, to demonstrate expiration
    doomed = ids.next()
    envelope = make_echo_message("http://svc.example:9000/inbox", doomed)
    store.hold(doomed, "http://svc.example:9000/inbox", envelope.to_bytes(), ttl=1.0)

    # pump on a background cadence, like a dispatcher maintenance thread
    stop = threading.Event()

    def pump_loop():
        while not stop.is_set() and store.pending():
            store.pump()
            time.sleep(0.25)

    pump_thread = threading.Thread(target=pump_loop)
    pump_thread.start()
    pump_thread.join(timeout=20)
    stop.set()

    stats = store.stats
    print(f"[done] delivered={stats['delivered']} expired={stats['expired']} "
          f"attempts={stats['attempts']}")
    print(f"[svc]  unique messages received: {len(received)}; "
          f"duplicates suppressed: {duplicates[0]}")
    assert stats["delivered"] == 10 and stats["expired"] == 1

    server.stop()
    http.close()
    print("done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Long-running conversations that survive disconnection and disorder.

The conversation layer (`repro.conversation`) packages the paper's
headline promise — "reliable and long running conversations through
firewalls between Web Service peers that have no accessible network
endpoints" — as a library feature:

- both peers live behind NAT and only ever make *outbound* HTTP calls;
- turns are sequence-numbered, so batchy mailbox polling can deliver them
  out of order and the application still sees them in order;
- duplicates (hold/retry redelivery) are suppressed by MessageID;
- a peer can go offline for as long as it likes — the conversation state
  waits in its mailbox.

Run:  python examples/long_conversation.py
"""

from repro.conversation import ConversationPeer
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxClient, MsgBoxService
from repro.rt import HttpClient, HttpServer, SoapHttpApp
from repro.transport import InprocNetwork
from repro.xmlmini import Element, QName


def note(text: str) -> Element:
    return Element(QName("urn:app:journal", "entry"), text=text)


def main() -> None:
    net = InprocNetwork()

    msgbox = MsgBoxService(
        MailboxStore(),
        security=MailboxSecurity(b"po-secret"),
        base_url="http://post-office.example:8500/mailbox",
    )
    app = SoapHttpApp()
    app.mount("/mailbox", msgbox)
    server = HttpServer(
        net.listen("post-office.example:8500"), app.handle_request, workers=4
    ).start()
    po_url = "http://post-office.example:8500/mailbox"
    print(f"[po]    post office at {server.url}")

    def make_peer(name: str) -> ConversationPeer:
        http = HttpClient(net)
        mailbox = MsgBoxClient(http, po_url)
        mailbox.create()
        return ConversationPeer(name, http, mailbox)

    alice = make_peer("alice")
    bob = make_peer("bob")

    # --- a multi-turn exchange -------------------------------------------
    conv = alice.start()
    conv.send(note("day 1: started the experiment"), to=bob.mailbox.epr())
    conv.send(note("day 2: first results look odd"))
    conv.send(note("day 3: found the bug in the rig"))
    print("[alice] sent 3 journal entries while bob was offline")

    # bob was away the whole time; everything waited in his mailbox
    bob.poll()
    bob_conv = bob.conversation(conv.id)
    for _ in range(3):
        turn = bob_conv.receive(timeout=2)
        print(f"[bob]   <- seq {turn.seq}: {turn.envelope.body.text}")

    bob_conv.send(note("caught up — nice find!"))
    reply = conv.receive(timeout=2)
    print(f"[alice] <- seq {reply.seq}: {reply.envelope.body.text}")

    # --- ordering guarantee under disorder ----------------------------------
    # Send three more turns but poll only after all arrived; the mailbox
    # hands them over in one batch and the layer orders them by sequence.
    for day in (4, 5, 6):
        conv.send(note(f"day {day}: more data"))
    got = [bob_conv.receive(timeout=2).envelope.body.text for _ in range(3)]
    print(f"[bob]   batch arrival, in order: {[t.split(':')[0] for t in got]}")
    assert [t.split(":")[0] for t in got] == ["day 4", "day 5", "day 6"]

    print(f"[stats] duplicates dropped: alice={alice.duplicates_dropped} "
          f"bob={bob.duplicates_dropped}")
    server.stop()
    print("done.")


if __name__ == "__main__":
    main()

"""Command-line experiment runner.

Regenerate any of the paper's tables/figures (or the ablations) from a
shell::

    python -m repro.experiments fig6 --clients 1,10,30,50 --duration 60
    python -m repro.experiments table1
    python -m repro.experiments fig4 --paper-scale
    python -m repro.experiments msgbox-bug

Output is the same rows/series the benchmarks record, printed to stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablations,
    chaos,
    crashrecovery,
    drain,
    fig4,
    fig5,
    fig6,
    registryfailover,
    table1,
)
from repro.workload.results import render_ascii_plot


def _parse_counts(text: str | None) -> list[int] | None:
    if not text:
        return None
    return [int(x) for x in text.split(",") if x.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig4", "fig5", "fig6", "table1",
            "msgbox-bug", "pool-sizing", "batching", "reliability", "chaos",
            "crash-recovery", "drain", "registry-failover",
        ],
    )
    parser.add_argument(
        "--runtime",
        choices=drain.RUNTIMES,
        default="threaded",
        help="dispatcher backend for the drain experiment",
    )
    parser.add_argument(
        "--clients",
        help="comma-separated client counts (figures) or count (table1)",
    )
    parser.add_argument("--duration", type=float, help="seconds per point")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full parameters",
    )
    parser.add_argument(
        "--plot", action="store_true", help="append an ASCII plot"
    )
    args = parser.parse_args(argv)

    counts = _parse_counts(args.clients)
    name = args.experiment

    if name in ("fig4", "fig5", "fig6"):
        module = {"fig4": fig4, "fig5": fig5, "fig6": fig6}[name]
        if args.paper_scale:
            counts = module.PAPER_CLIENT_COUNTS
            duration = module.PAPER_DURATION
        else:
            duration = args.duration or 20.0
        report = module.run(client_counts=counts, duration=duration)
        print(report.render())
        if args.plot:
            value = "transmitted" if name == "fig4" else "per_minute"
            print()
            print(render_ascii_plot(report.series, value, title=name))
        failures = module.check_shape(report)
    elif name == "table1":
        clients = counts[0] if counts else 10
        report = table1.run(clients=clients, duration=args.duration or 20.0)
        print(report.render())
        failures = table1.check_shape(report)
    elif name == "msgbox-bug":
        report = ablations.msgbox_bug(client_counts=counts)
        print(report.render())
        failures = ablations.check_msgbox_bug(report)
    elif name == "pool-sizing":
        report = ablations.pool_sizing(
            clients=counts[0] if counts else 20,
            duration=args.duration or 15.0,
        )
        print(report.render())
        failures = []
    elif name == "batching":
        report = ablations.batching(
            clients=counts[0] if counts else 20,
            duration=args.duration or 15.0,
        )
        print(report.render())
        failures = []
    elif name == "chaos":
        messages = counts[0] if counts else 120
        report = chaos.run(messages=messages)
        print(report.render())
        failures = chaos.check_shape(report)
    elif name == "crash-recovery":
        messages = counts[0] if counts else 80
        report = crashrecovery.run(messages=messages)
        print(report.render())
        failures = crashrecovery.check_shape(report)
    elif name == "drain":
        messages = counts[0] if counts else 400
        report = drain.run(runtime=args.runtime, messages=messages)
        print(report.render())
        failures = drain.check_shape(report)
    elif name == "registry-failover":
        report = registryfailover.run()
        print(report.render())
        failures = registryfailover.check_shape(report)
    else:  # reliability
        report = ablations.reliability()
        print(report.render())
        failures = []

    if failures:
        print("\nSHAPE CHECK FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall shape checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

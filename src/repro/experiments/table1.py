"""Table 1 — possible interactions between Web Service peers using WSD.

The paper's matrix (client style × service style) with its verdicts:

=====================  ==========================  ===========================
                       RPC based service           Messaging based service
=====================  ==========================  ===========================
Peer acting as         (1) Limited but very        (2) Very limited (may not
RPC client             popular (RPC connection     work at all if message
                       is forwarded)               reply comes too late)
Peer acting as         (3) Limited: RPC server is  (4) Unlimited (no transport
messaging client       a bottleneck (translation   time limit on sending
                       of semantics)               response)
=====================  ==========================  ===========================

We operationalise each verdict:

- *works_fast*  — a call with a sub-second service time completes.
- *works_slow*  — a call whose service needs longer than every HTTP/TCP
  timeout on the path still completes.  Only quadrant 4 can.
- *throughput*  — messages/minute at a moderate service delay with ten
  concurrent clients: quadrant 3's translation holds a dispatcher
  connection per in-flight call, so it trails quadrant 4 (the
  "bottleneck").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import (
    SimMsgDispatcher,
    SimMsgDispatcherConfig,
    SimRpcDispatcher,
)
from repro.experiments.common import (
    DISPATCHER_SERVICE_TIME,
    ExperimentReport,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import EchoService, make_echo_message, make_echo_request
from repro.workload.results import RunResult
from repro.workload.sim_testclient import SimRampConfig, SimRampTester

#: every HTTP timeout on the paths below is <= this; a service slower than
#: this can only answer via messaging
SLOW_DELAY = 45.0
FAST_DELAY = 0.2
MODERATE_DELAY = 1.0

QUADRANTS = {
    1: "RPC client -> RPC service",
    2: "RPC client -> MSG service",
    3: "MSG client -> RPC service",
    4: "MSG client -> MSG service",
}

PAPER_VERDICTS = {
    1: "limited but very popular",
    2: "very limited",
    3: "limited: RPC server is a bottleneck",
    4: "unlimited",
}


@dataclass
class QuadrantResult:
    quadrant: int
    works_fast: bool
    works_slow: bool
    throughput_per_min: float

    @property
    def verdict(self) -> str:
        if self.works_slow:
            return "unlimited"
        if self.works_fast:
            return "limited"
        return "broken"


def _build_world(service_delay: float, rpc_service: bool):
    """Common world: firewalled client, service + dispatcher stack at IU."""
    sim = Simulator()
    net = Network(sim)
    client = add_site(net, INRIA, name="inria")
    ws_host = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    wsd_host = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"),
        open_ports=(8000, 8100, 8200, 8500),
    )
    registry = ServiceRegistry()
    registry.register("echo", "http://iuWS:9000/echo")

    if rpc_service:
        app = SoapHttpApp()
        app.mount("/echo", EchoService())

        def slow_handler(request):
            yield sim.timeout(service_delay)
            return app.handle_request(request, None)

        SimHttpServer(net, ws_host, 9000, slow_handler, workers=64,
                      service_time=SOAP_SERVICE_TIME)
        echo_service = None
    else:
        echo_service = SimAsyncEchoService(
            net, ws_host, reply_senders=64, response_delay=service_delay
        )
        SimHttpServer(net, ws_host, 9000, echo_service.handler, workers=64,
                      service_time=SOAP_SERVICE_TIME)

    msg_config = SimMsgDispatcherConfig(
        ws_workers=16,
        response_timeout=30.0,
        accept_queue=128,
        destination_queue=64,
        parallel_per_destination=4,
        passthrough_reply_prefixes=("http://iuWSD:8500/mailbox",),
    )
    msg_disp = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://iuWSD:8000/msg",
        config=msg_config,
    )
    SimHttpServer(net, wsd_host, 8000, msg_disp.handler, workers=64,
                  service_time=DISPATCHER_SERVICE_TIME)
    SimHttpServer(net, wsd_host, 8100,
                  lambda req: msg_disp.bridge_handler(req, bridge_timeout=30.0),
                  workers=64, service_time=DISPATCHER_SERVICE_TIME)
    rpc_disp = SimRpcDispatcher(net, wsd_host, registry, response_timeout=30.0)
    SimHttpServer(net, wsd_host, 8200, rpc_disp.handler, workers=64,
                  service_time=DISPATCHER_SERVICE_TIME)

    store = MailboxStore(clock=sim.clock, max_messages_per_box=100_000)
    msgbox = MsgBoxService(store, base_url="http://iuWSD:8500/mailbox")
    mb_app = SoapHttpApp()
    mb_app.mount("/mailbox", msgbox)
    SimHttpServer(net, wsd_host, 8500,
                  lambda req: mb_app.handle_request(req, None), workers=64,
                  service_time=SOAP_SERVICE_TIME)
    handles = {"msgbox": msgbox, "msg_disp": msg_disp, "rpc_disp": rpc_disp}
    return sim, net, client, store, handles


def _single_call(quadrant: int, service_delay: float) -> bool:
    """One call through the quadrant's path; True when the reply arrives."""
    rpc_service = quadrant in (1, 3)
    sim, net, client, store, _handles = _build_world(service_delay, rpc_service)
    ids = IdGenerator("t1", seed=quadrant)
    outcome: list[bool] = []

    def rpc_style_call(port: int, path: str):
        body = make_echo_request().to_bytes()
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        req = HttpRequest("POST", path, headers=headers, body=body)
        try:
            resp = yield from sim_http_request(
                net, client, "iuWSD", port, req,
                connect_timeout=10.0, response_timeout=60.0,
            )
            outcome.append(resp.status == 200 and bool(resp.body))
        except Exception:
            outcome.append(False)

    def msg_style_call():
        mailbox_id = store.create()
        epr = make_mailbox_epr("http://iuWSD:8500/mailbox", mailbox_id)
        env = make_echo_message(
            to="urn:wsd:echo", message_id=ids.next(), reply_to=epr
        )
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        req = HttpRequest("POST", "/msg/echo", headers=headers,
                          body=env.to_bytes())
        try:
            resp = yield from sim_http_request(
                net, client, "iuWSD", 8000, req,
                connect_timeout=10.0, response_timeout=10.0,
            )
            if resp.status != 202:
                outcome.append(False)
                return
        except Exception:
            outcome.append(False)
            return
        # poll the mailbox (in simulated time) for the response
        deadline = sim.now + service_delay + 90.0
        while sim.now < deadline:
            if store.peek_count(mailbox_id) > 0:
                outcome.append(True)
                return
            yield sim.timeout(1.0)
        outcome.append(False)

    if quadrant == 1:
        proc = sim.process(rpc_style_call(8200, "/rpc/echo"))
    elif quadrant == 2:
        proc = sim.process(rpc_style_call(8100, "/bridge/echo"))
    else:
        proc = sim.process(msg_style_call())
    sim.run(until=proc)
    return bool(outcome and outcome[0])


def _throughput(quadrant: int, clients: int, duration: float) -> RunResult:
    """Concurrent echo load at a moderate service delay."""
    rpc_service = quadrant in (1, 3)
    sim, net, client, store, handles = _build_world(MODERATE_DELAY, rpc_service)
    ids = IdGenerator("t1-load", seed=quadrant)

    if quadrant in (1, 2):
        port, path = (8200, "/rpc/echo") if quadrant == 1 else (8100, "/bridge/echo")
        tester = SimRampTester(net, client, "iuWSD", port, path)
    else:
        eprs = [
            make_mailbox_epr("http://iuWSD:8500/mailbox", store.create())
            for _ in range(clients)
        ]

        def factory(counter=[0]):
            counter[0] += 1
            env = make_echo_message(
                to="urn:wsd:echo",
                message_id=ids.next(),
                reply_to=eprs[counter[0] % len(eprs)],
            )
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            return HttpRequest("POST", "/msg/echo", headers=headers,
                               body=env.to_bytes())

        tester = SimRampTester(net, client, "iuWSD", 8000, "/msg/echo", factory)
    result = tester.run(SimRampConfig(
        clients=clients, duration=duration,
        connect_timeout=10.0, response_timeout=35.0,
    ))
    if quadrant in (3, 4):
        # the throughput that matters is *completed* exchanges: responses
        # actually landing in mailboxes (acceptance alone just buffers)
        deposits = handles["msgbox"].stats.get("deposits", 0)
        result.transmitted = deposits
    return result


def run(clients: int = 10, duration: float = 30.0) -> ExperimentReport:
    """Reproduce Table 1's verdicts; returns per-quadrant results."""
    report = ExperimentReport(
        experiment="Table 1",
        description="Interaction matrix: RPC/messaging client x RPC/messaging service",
    )
    rows = ["quadrant\tpath\tfast\tslow\tmsgs/min\tpaper verdict"]
    results: dict[int, QuadrantResult] = {}
    for quadrant in (1, 2, 3, 4):
        works_fast = _single_call(quadrant, FAST_DELAY)
        works_slow = _single_call(quadrant, SLOW_DELAY)
        tp = _throughput(quadrant, clients, duration)
        qr = QuadrantResult(quadrant, works_fast, works_slow, tp.per_minute)
        results[quadrant] = qr
        rows.append(
            f"({quadrant})\t{QUADRANTS[quadrant]}\t"
            f"{'yes' if works_fast else 'NO'}\t"
            f"{'yes' if works_slow else 'NO'}\t"
            f"{tp.per_minute:.0f}\t{PAPER_VERDICTS[quadrant]}"
        )
    report.tables = ["\n".join(rows)]
    report.extras["results"] = results
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """Paper-verdict checks; returns failed checks."""
    results: dict[int, QuadrantResult] = report.extras["results"]  # type: ignore[assignment]
    failures: list[str] = []
    for q in (1, 2, 3, 4):
        if not results[q].works_fast:
            failures.append(f"quadrant {q} broken even for a fast service")
    for q in (1, 2, 3):
        if results[q].works_slow:
            failures.append(
                f"quadrant {q} should hit transport time limits for slow services"
            )
    if not results[4].works_slow:
        failures.append("quadrant 4 must work regardless of service delay")
    if not results[4].throughput_per_min > results[3].throughput_per_min:
        failures.append(
            "quadrant 3 (translation to RPC) should be the bottleneck vs 4"
        )
    return failures

"""Figure 5 — RPC communication under "good" conditions (high connectivity).

Paper setup: clients on the IU backbone (iuHigh, 3655/2739 kbps) calling
the echo WS on inriaFast, one minute per point, clients ∈ 10..300,
direct vs via RPC-Dispatcher.  Reported: messages/minute.

Expected shape (paper §4.3.1): "We had no lost packets at all";
throughput climbs, then "after 200 connections message throughput does
not improve and even gets slightly worsened dues to contention"; the
dispatcher curve tracks the direct curve closely.
"""

from __future__ import annotations

from repro.experiments.common import (
    CLIENT_CALL_OVERHEAD,
    ExperimentReport,
    build_rpc_scenario,
    paper_shape_summary,
)
from repro.simnet.scenarios import BACKBONE_IU, INRIA
from repro.workload.results import Series, render_table
from repro.workload.sim_testclient import SimRampConfig, SimRampTester

PAPER_CLIENT_COUNTS = [10, 25, 50, 100, 150, 200, 250, 300]
PAPER_DURATION = 60.0


def run(
    client_counts: list[int] | None = None,
    duration: float = PAPER_DURATION,
    ws_workers: int = 48,
) -> ExperimentReport:
    """Reproduce Figure 5; series 'Direct WS-RPC' and 'With RPC-Dispatcher'."""
    counts = client_counts or PAPER_CLIENT_COUNTS
    report = ExperimentReport(
        experiment="Figure 5",
        description=(
            "RPC communication, high connectivity (iuHigh -> inriaFast), "
            "messages/minute vs clients"
        ),
    )
    series_direct = Series("Direct WS-RPC")
    series_disp = Series("With RPC-Dispatcher")
    for via, series in ((False, series_direct), (True, series_disp)):
        for clients in counts:
            scenario = build_rpc_scenario(
                BACKBONE_IU,
                INRIA,
                via_dispatcher=via,
                ws_workers=ws_workers,
            )
            tester = SimRampTester(
                scenario.net,
                scenario.client_host,
                scenario.entry_host,
                scenario.entry_port,
                scenario.entry_path,
            )
            config = SimRampConfig(
                clients=clients,
                duration=duration,
                connect_timeout=10.0,
                response_timeout=20.0,
                think_time=CLIENT_CALL_OVERHEAD,
            )
            series.add(tester.run(config))
    report.series = [series_direct, series_disp]
    report.tables = [
        render_table(report.series, "per_minute", title="Fig5 messages/minute"),
        render_table(report.series, "not_sent", title="Fig5 packets lost"),
    ]
    report.notes.append(paper_shape_summary(report.series))
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """Paper-prose checks; returns failed checks."""
    failures: list[str] = []
    for s in report.series:
        lost = sum(r.not_sent for r in s.results)
        if lost > 0:
            failures.append(f"{s.label}: expected zero loss, saw {lost}")
        rates = {r.clients: r.per_minute for r in s.results}
        if len(rates) >= 3:
            xs = sorted(rates)
            small, mid = xs[0], xs[len(xs) // 2]
            big = xs[-1]
            if not rates[small] < rates[big] * 1.05:
                failures.append(f"{s.label}: no ramp-up from {small} clients")
            # plateau: the largest count should not beat the midpoint by much
            if big >= 200 and rates[big] > rates[mid] * 1.5:
                failures.append(
                    f"{s.label}: still scaling at {big} clients "
                    f"({rates[big]:.0f} vs {rates[mid]:.0f})"
                )
    d = report.series_by_label("Direct WS-RPC")
    w = report.series_by_label("With RPC-Dispatcher")
    for rd, rw in zip(d.results, w.results):
        if rw.per_minute < 0.6 * rd.per_minute:
            failures.append(
                f"dispatcher overhead too large at {rd.clients} clients"
            )
    return failures

"""Crash-recovery experiment: durable store-and-forward under SIGKILL.

The acceptance test for the message journal (paper §4.4: "messages
stored in DB with expiration time").  A client streams one-way messages
through a durable MSG-Dispatcher while a seeded
:class:`~repro.chaos.plan.ServiceCrash` kills the dispatcher host
mid-drain — the process loses its accept queue, destination queues, hold
store, and any unflushed journal marks.  After ``restart_after`` seconds
a fresh incarnation opens the *same* journal, replays every record still
``enqueued``, and finishes the drain.

What the sink must observe for the durability story to hold:

- **zero loss** — every message the dispatcher acked with 202 arrives,
  including those that were in flight when the process died;
- **zero duplicate absorption** — replays and client resends may hit the
  wire more than once (at-least-once is the journal's contract), but the
  sink's :class:`~repro.reliable.DuplicateFilter` absorbs each message
  exactly once;
- **bit-reproducibility** — the whole run is simulated, so two runs with
  the same seed produce identical summaries (checked by :func:`run`).
"""

from __future__ import annotations

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan, ServiceCrash
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.errors import ReproError
from repro.experiments.common import (
    DISPATCHER_SERVICE_TIME,
    ExperimentReport,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.reliable import BreakerConfig, DuplicateFilter, FixedDelay, HoldRetryStore
from repro.simnet.httpsim import SimHttpClientPool, SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.soap import Envelope
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.store.journal import DEAD, MessageJournal
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders

#: (crash_at, restart_after) points swept by :func:`run`
CRASH_POINTS = ((6.0, 4.0), (10.0, 8.0))


def run_point(
    crash_at: float,
    restart_after: float,
    messages: int = 80,
    send_gap: float = 0.25,
    seed: int = 11,
    horizon: float = 150.0,
) -> dict:
    """One crash/restart scenario; returns the per-point summary dict."""
    sim = Simulator()
    net = Network(sim, loss_seed=seed)
    client_host = add_site(net, INRIA, name="client")
    wsd_host = add_site(net, BACKBONE_IU, name="wsd", open_ports=(8000,))
    sink_host = add_site(net, BACKBONE_IU, name="sink", open_ports=(9000,))

    metrics = MetricsRegistry()
    traces = TraceStore(enabled=False)
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://sink:9000/echo")

    # The journal object is the disk: it survives the simulated SIGKILL
    # and the restarted incarnation reopens it.  "always" commits each
    # append before the 202 ack (journal-before-ack) without the real
    # sleep group commit would add; marks stay buffered, so a crash can
    # lose them — that is the at-least-once tail the sink dedupes.
    journal = MessageJournal(sync="always", now_fn=lambda: sim.now)

    arrivals = 0
    delivered: set[str] = set()
    sink_dupes = DuplicateFilter(window=horizon, clock=sim.clock)

    def sink_handler(request: HttpRequest) -> HttpResponse:
        nonlocal arrivals
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        arrivals += 1
        if mid and not sink_dupes.seen(mid):
            delivered.add(mid)
        return HttpResponse(status=202)

    SimHttpServer(
        net, sink_host, 9000, sink_handler, workers=16,
        service_time=SOAP_SERVICE_TIME,
    )

    def make_dispatcher() -> SimMsgDispatcher:
        hold_store = HoldRetryStore(
            policy=FixedDelay(max_attempts=10_000, delay=0.5),
            default_ttl=horizon,
            clock=sim.clock,
        )
        config = SimMsgDispatcherConfig(
            connect_timeout=3.0,
            response_timeout=5.0,
            breaker=BreakerConfig(consecutive_failures=3, open_for=2.0),
            hold_pump_interval=0.25,
            dedupe_window=horizon,
        )
        return SimMsgDispatcher(
            net, wsd_host, registry, own_address="http://wsd:8000/msg",
            config=config, metrics=metrics, traces=traces,
            hold_store=hold_store, durable=journal, recover=True,
        )

    incarnation = {"disp": make_dispatcher()}

    def dispatcher_handler(request: HttpRequest):
        return incarnation["disp"].handler(request)

    SimHttpServer(
        net, wsd_host, 8000, dispatcher_handler, workers=16,
        service_time=DISPATCHER_SERVICE_TIME,
    )

    controller = ChaosController(
        net,
        FaultPlan(
            (ServiceCrash(host="wsd", at=crash_at, restart_after=restart_after),),
            seed=seed,
        ),
        metrics=metrics,
    )
    controller.start()

    recovered = {"replayed": 0}

    def crash_and_restart():
        yield sim.timeout(crash_at)
        incarnation["disp"].crash()
        yield sim.timeout(restart_after)
        # the restarted process reopens the journal and replays it
        incarnation["disp"] = make_dispatcher()
        recovered["replayed"] = incarnation["disp"].stats.get("recovered", 0)

    sim.process(crash_and_restart(), name="crash-restart")

    ids = IdGenerator("crash", seed=seed)
    pool = SimHttpClientPool(
        net, client_host, connect_timeout=5.0, response_timeout=10.0
    )
    sent: list[str] = []
    accepted: set[str] = set()
    resends = 0

    def sender():
        nonlocal resends
        for _ in range(messages):
            mid = ids.next()
            env = make_echo_message(to="urn:wsd:echo", message_id=mid)
            body = env.to_bytes()
            sent.append(mid)
            for attempt in range(40):
                if attempt:
                    resends += 1
                headers = Headers()
                headers.set("Content-Type", SOAP11_CONTENT_TYPE)
                request = HttpRequest(
                    "POST", "/msg/echo", headers=headers, body=body
                )
                try:
                    response = yield from pool.exchange("wsd", 8000, request)
                except ReproError:
                    yield sim.timeout(1.0)
                    continue
                if response.status == 202:
                    accepted.add(mid)
                    break
                yield sim.timeout(1.0)
            yield sim.timeout(send_gap)

    sim.process(sender(), name="crash-sender")
    sim.run(until=horizon)

    duplicates_at_sink = arrivals - len(delivered)
    return {
        "crash_at": crash_at,
        "restart_after": restart_after,
        "sent": len(sent),
        "accepted": len(accepted),
        "delivered_unique": len(delivered & set(sent)),
        "sink_arrivals": arrivals,
        "duplicates_at_sink": duplicates_at_sink,
        "duplicates_absorbed": duplicates_at_sink,  # sink absorbed every one
        "client_resends": resends,
        "replayed_on_restart": recovered["replayed"],
        "journal_pending": journal.pending_count(),
        "dead_letters": journal.counts().get(DEAD, 0),
        "dead_by_reason": journal.dead_counts(),
    }


def run(
    crash_points: tuple = CRASH_POINTS,
    messages: int = 80,
    seed: int = 11,
) -> ExperimentReport:
    """Sweep the crash points; every point is run twice to prove the
    summaries are bit-identical (seeded simulation, no wall clock)."""
    report = ExperimentReport(
        experiment="Crash recovery",
        description=(
            "SIGKILL the durable dispatcher mid-drain, restart from the "
            "journal: zero loss, duplicates absorbed, bit-reproducible"
        ),
    )
    rows = []
    for crash_at, restart_after in crash_points:
        point = run_point(
            crash_at, restart_after, messages=messages, seed=seed
        )
        rerun = run_point(
            crash_at, restart_after, messages=messages, seed=seed
        )
        point["reproducible"] = point == rerun
        rows.append(point)
        report.extras[f"crash={crash_at:g}s,restart={restart_after:g}s"] = point
    lines = [
        "# crash recovery [unique deliveries vs accepted]",
        "crash_s\trestart_s\tsent\taccepted\tdelivered\tdupes\treplayed\tdead\trepro",
    ]
    for p in rows:
        lines.append(
            f"{p['crash_at']:g}\t{p['restart_after']:g}\t{p['sent']}\t"
            f"{p['accepted']}\t{p['delivered_unique']}\t"
            f"{p['duplicates_at_sink']}\t{p['replayed_on_restart']}\t"
            f"{p['dead_letters']}\t{p['reproducible']}"
        )
    report.tables = ["\n".join(lines)]
    report.notes.append(
        f"seed={seed}; the journal object survives the crash (it plays "
        "the disk); the sink's DuplicateFilter absorbs at-least-once "
        "replays, so 'delivered' counts unique messages"
    )
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """Durability contract: no accepted message lost, no point divergent."""
    failures: list[str] = []
    for key, point in report.extras.items():
        if point["delivered_unique"] < point["accepted"]:
            failures.append(
                f"{key}: {point['accepted']} accepted but only "
                f"{point['delivered_unique']} delivered — the crash lost "
                "messages"
            )
        if point["accepted"] < point["sent"]:
            failures.append(
                f"{key}: client gave up on "
                f"{point['sent'] - point['accepted']} messages"
            )
        if not point["reproducible"]:
            failures.append(f"{key}: two seeded runs diverged")
    return failures

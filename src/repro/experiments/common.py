"""Shared experiment plumbing: scenario assembly and reporting.

Calibration constants: the paper's stack was Java/XSUL on 2005 hardware.
We charge explicit CPU costs per SOAP message so throughput magnitudes
land in the paper's range — the *shape* of every curve comes from the
modelled network/firewall/thread mechanics, not from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import (
    SimMsgDispatcher,
    SimMsgDispatcherConfig,
    SimRpcDispatcher,
)
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.scenarios import SiteSpec, add_site
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Host, Network
from repro.workload.echo import EchoService
from repro.workload.results import RunResult, Series, render_table

#: CPU seconds a speed-1.0 host spends parsing+serializing one SOAP/HTTP
#: message in a 2005 Java stack (XSUL measured a few ms per message).
SOAP_SERVICE_TIME = 0.004
#: Dispatcher per-message processing (header parse, registry lookup, rewrite).
DISPATCHER_SERVICE_TIME = 0.003
#: Client-side cost to produce/consume one call (test client serialization).
CLIENT_CALL_OVERHEAD = 0.004


@dataclass
class ExperimentReport:
    """Uniform result object: labelled series + rendered text blocks."""

    experiment: str
    description: str
    series: list[Series] = field(default_factory=list)
    tables: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: free-form per-run extras (stats dicts, classifications)
    extras: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.experiment} ==", self.description, ""]
        parts.extend(self.tables)
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)


@dataclass
class RpcScenario:
    """A built RPC measurement scenario (fresh simulator per point)."""

    sim: Simulator
    net: Network
    client_host: Host
    entry_host: str
    entry_port: int
    entry_path: str
    ws_server: SimHttpServer
    dispatcher: SimRpcDispatcher | None = None


def build_rpc_scenario(
    client_spec: SiteSpec,
    server_spec: SiteSpec,
    via_dispatcher: bool,
    ws_workers: int = 64,
    dispatcher_workers: int = 64,
    ws_port: int = 8080,
    dispatcher_port: int = 8000,
    service_time: float = SOAP_SERVICE_TIME,
) -> RpcScenario:
    """Client site → (optional RPC-Dispatcher →) echo WS.

    The WS and dispatcher ports are opened in the server site's firewall
    (the paper's services were reachable); the *client* site keeps its
    outbound-only posture, which is irrelevant for RPC since replies ride
    the same connection.
    """
    sim = Simulator()
    net = Network(sim)
    client_host = add_site(net, client_spec)
    server_host = add_site(
        net, server_spec, open_ports=(ws_port, dispatcher_port)
    )

    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    ws_server = SimHttpServer(
        net,
        server_host,
        ws_port,
        lambda req: app.handle_request(req, None),
        workers=ws_workers,
        service_time=service_time,
    )
    dispatcher = None
    if via_dispatcher:
        registry = ServiceRegistry()
        registry.register("echo", f"http://{server_host.name}:{ws_port}/echo")
        dispatcher = SimRpcDispatcher(net, server_host, registry)
        SimHttpServer(
            net,
            server_host,
            dispatcher_port,
            dispatcher.handler,
            workers=dispatcher_workers,
            service_time=DISPATCHER_SERVICE_TIME,
        )
        return RpcScenario(
            sim, net, client_host, server_host.name, dispatcher_port,
            "/rpc/echo", ws_server, dispatcher,
        )
    return RpcScenario(
        sim, net, client_host, server_host.name, ws_port, "/echo", ws_server
    )


def paper_shape_summary(series: list[Series]) -> str:
    """One-line-per-series max/min summary to eyeball curve shapes."""
    lines = []
    for s in series:
        if not s.results:
            continue
        peak = max(s.results, key=lambda r: r.per_minute)
        lines.append(
            f"{s.label}: peak {peak.per_minute:.0f}/min at {peak.clients} clients, "
            f"total lost {sum(r.not_sent for r in s.results)}"
        )
    return "\n".join(lines)

"""Ablations of the design choices DESIGN.md calls out.

- :func:`msgbox_bug` — §4.3.2's thread-per-message WS-MsgBox failure
  (a real thread census against a modelled heap) vs the bounded pool.
- :func:`pool_sizing` — MSG-Dispatcher CxThread/WsThread pool sizes vs
  throughput (the paper: "the sizes of the pools are configurable").
- :func:`batching` — multiple messages per connection vs
  connection-per-message (§4.1: batched delivery "is more efficient than
  opening multiple short lived connections").
- :func:`reliability` — hold/retry with expiration under injected
  downtime (future work §4.4).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.experiments.common import (
    DISPATCHER_SERVICE_TIME,
    ExperimentReport,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxService
from repro.msgbox.service import SimulatedOutOfMemory, make_mailbox_epr
from repro.reliable import ExponentialBackoff, FixedDelay, HeldMessage, HoldRetryStore
from repro.rt.service import RequestContext, SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.clock import ManualClock
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.workload.results import Series, render_table
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


# ---------------------------------------------------------------------------
# F6b: the WS-MsgBox thread explosion
# ---------------------------------------------------------------------------

def msgbox_bug(
    client_counts: list[int] | None = None,
    messages_per_client: int = 2,
    ack_delay: float = 1.0,
    heap_limit_bytes: int = 32 * 1024 * 1024,
) -> ExperimentReport:
    """Reproduce the OutOfMemory collapse above ~50 clients.

    Each "client" deposits ``messages_per_client`` messages back-to-back
    (all clients released by a barrier, so the burst is simultaneous);
    every deposit triggers a reply send that takes ``ack_delay`` seconds
    (a WAN reply — keep it comfortably larger than the burst duration so
    the reproduction is immune to scheduler jitter).  With
    ``delivery_mode='thread-per-message'`` the live thread count scales
    with the in-flight messages and the modelled heap (32 MiB / 512 KiB
    stacks = 64 threads) blows exactly like the paper's JVM; the pooled
    redesign sheds load instead.
    """
    counts = client_counts or [10, 25, 50, 100]
    report = ExperimentReport(
        experiment="Fig6b (4.3.2)",
        description="WS-MsgBox delivery threading: thread-per-message vs pooled",
    )
    rows = ["mode\tclients\tdeposits\tpeak_threads\tcrashed"]
    for mode in ("thread-per-message", "pooled"):
        for clients in counts:
            store = MailboxStore(max_messages_per_box=100_000)
            service = MsgBoxService(
                store,
                delivery_mode=mode,
                ack_sender=lambda data: time.sleep(ack_delay),
                ack_workers=8,
                heap_limit_bytes=heap_limit_bytes,
            )
            boxes = [store.create() for _ in range(clients)]
            crashed = False
            deposits = 0
            threads = []
            # All clients burst simultaneously — the paper's scenario is a
            # popular service under concurrent load, and a barrier keeps
            # the reproduction independent of thread scheduling jitter.
            start = threading.Barrier(clients + 1)

            def depositor(box_id: str) -> None:
                nonlocal crashed, deposits
                env = make_echo_message(
                    to="urn:wsd:echo", message_id=f"uuid:bug-{box_id}-{deposits}"
                )
                from repro.msgbox.service import Q_MAILBOX_ID
                from repro.xmlmini import Element

                env.headers.append(Element(Q_MAILBOX_ID, text=box_id))
                ctx = RequestContext(path="/mailbox/deposit")
                try:
                    start.wait(timeout=10)
                except threading.BrokenBarrierError:
                    return
                for _ in range(messages_per_client):
                    try:
                        service.handle(env, ctx)
                        deposits += 1
                    except SimulatedOutOfMemory:
                        crashed = True
                        return
                    except Exception:
                        return  # service already dead

            for box in boxes:
                t = threading.Thread(target=depositor, args=(box,), daemon=True)
                threads.append(t)
                t.start()
            start.wait(timeout=10)
            for t in threads:
                t.join(timeout=ack_delay * messages_per_client + 10)
            crashed = crashed or service.dead
            peak = service.stats.get("ack_peak_threads", 0)
            rows.append(
                f"{mode}\t{clients}\t{deposits}\t{peak}\t{'YES' if crashed else 'no'}"
            )
            report.extras[f"{mode}@{clients}"] = {
                "deposits": deposits,
                "peak_threads": peak,
                "crashed": crashed,
            }
    report.tables = ["\n".join(rows)]
    return report


def check_msgbox_bug(report: ExperimentReport) -> list[str]:
    failures = []
    extras = report.extras
    small = [k for k in extras if k.startswith("thread-per-message@")]
    crashed_at = sorted(
        int(k.split("@")[1]) for k in small if extras[k]["crashed"]  # type: ignore[index]
    )
    survived_at = sorted(
        int(k.split("@")[1]) for k in small if not extras[k]["crashed"]  # type: ignore[index]
    )
    if not crashed_at:
        failures.append("thread-per-message mode never crashed")
    if survived_at and crashed_at and min(crashed_at) < max(survived_at):
        failures.append("crash onset is not monotone in client count")
    for k, v in extras.items():
        if k.startswith("pooled@") and v["crashed"]:  # type: ignore[index]
            failures.append(f"pooled mode crashed at {k}")
    return failures


# ---------------------------------------------------------------------------
# A1: dispatcher pool sizing
# ---------------------------------------------------------------------------

def _msgbox_scenario(
    ws_workers: int,
    batch_size: int,
    pool_per_destination: int,
    pipeline_batches: bool = True,
):
    sim = Simulator()
    net = Network(sim)
    client = add_site(net, INRIA, name="inria")
    ws_host = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    wsd_host = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"), open_ports=(8000, 8500)
    )
    echo = SimAsyncEchoService(net, ws_host, reply_senders=32)
    SimHttpServer(net, ws_host, 9000, echo.handler, workers=32,
                  service_time=SOAP_SERVICE_TIME)
    registry = ServiceRegistry()
    registry.register("echo", "http://iuWS:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=4, ws_workers=ws_workers, batch_size=batch_size,
        pipeline_batches=pipeline_batches,
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://iuWSD:8000/msg", config=config
    )
    dispatcher.pool.pool_per_destination = pool_per_destination
    SimHttpServer(net, wsd_host, 8000, dispatcher.handler, workers=32,
                  service_time=DISPATCHER_SERVICE_TIME)
    store = MailboxStore(clock=sim.clock, max_messages_per_box=100_000)
    msgbox = MsgBoxService(store, base_url="http://iuWSD:8500/mailbox")
    app = SoapHttpApp()
    app.mount("/mailbox", msgbox)
    SimHttpServer(net, wsd_host, 8500, lambda r: app.handle_request(r, None),
                  workers=32, service_time=SOAP_SERVICE_TIME)
    return sim, net, client, store, dispatcher


def _run_msgbox_load(sim, net, client, store, clients: int, duration: float):
    ids = IdGenerator("abl", seed=clients)
    eprs = [
        make_mailbox_epr("http://iuWSD:8500/mailbox", store.create())
        for _ in range(clients)
    ]

    def factory(counter=[0]):
        counter[0] += 1
        env = make_echo_message(
            to="urn:wsd:echo", message_id=ids.next(),
            reply_to=eprs[counter[0] % len(eprs)],
        )
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        return HttpRequest("POST", "/msg/echo", headers=headers, body=env.to_bytes())

    tester = SimRampTester(net, client, "iuWSD", 8000, "/msg/echo", factory)
    return tester.run(SimRampConfig(clients=clients, duration=duration))


def pool_sizing(
    ws_worker_counts: list[int] | None = None,
    clients: int = 30,
    duration: float = 20.0,
) -> ExperimentReport:
    """A1: WsThread pool size vs delivered throughput."""
    sizes = ws_worker_counts or [1, 2, 4, 8, 16]
    report = ExperimentReport(
        experiment="Ablation A1",
        description="MSG-Dispatcher WsThread pool size vs delivered msgs/min",
    )
    rows = ["ws_workers\taccepted/min\tdelivered\tdeposits"]
    for size in sizes:
        sim, net, client, store, dispatcher = _msgbox_scenario(
            ws_workers=size, batch_size=8, pool_per_destination=2
        )
        result = _run_msgbox_load(sim, net, client, store, clients, duration)
        delivered = dispatcher.stats.get("delivered", 0)
        rows.append(
            f"{size}\t{result.per_minute:.0f}\t{delivered}\t"
            f"{sum(store.stats(b)['deposits'] for b in [])}"
        )
        report.extras[f"ws={size}"] = {
            "accepted_per_min": result.per_minute,
            "delivered": delivered,
        }
    report.tables = ["\n".join(rows)]
    return report


# ---------------------------------------------------------------------------
# A2: delivery batching / connection reuse
# ---------------------------------------------------------------------------

def batching(
    clients: int = 30,
    duration: float = 20.0,
) -> ExperimentReport:
    """A2: batched persistent delivery vs connection-per-message."""
    report = ExperimentReport(
        experiment="Ablation A2",
        description="Batched delivery over persistent connections vs "
        "connection-per-message",
    )
    rows = [
        "variant\taccepted/min\tdelivered\tfresh_connects\treuses\tbursts"
    ]
    variants = {
        "batch=8, pipelined": (8, 2, True),
        "batch=8, serial-drain": (8, 2, False),
        "batch=1, persistent": (1, 2, False),
        "batch=1, conn-per-msg": (1, 0, False),
    }
    for label, (batch, pool, pipelined) in variants.items():
        sim, net, client, store, dispatcher = _msgbox_scenario(
            ws_workers=8, batch_size=batch, pool_per_destination=pool,
            pipeline_batches=pipelined,
        )
        result = _run_msgbox_load(sim, net, client, store, clients, duration)
        rows.append(
            f"{label}\t{result.per_minute:.0f}\t"
            f"{dispatcher.stats.get('delivered', 0)}\t"
            f"{dispatcher.pool.fresh_connects}\t{dispatcher.pool.reuses}\t"
            f"{dispatcher.pool.pipelined_bursts}"
        )
        report.extras[label] = {
            "accepted_per_min": result.per_minute,
            "delivered": dispatcher.stats.get("delivered", 0),
            "fresh_connects": dispatcher.pool.fresh_connects,
            "reuses": dispatcher.pool.reuses,
            "pipelined_bursts": dispatcher.pool.pipelined_bursts,
            "pipeline_replays": dispatcher.pool.pipeline_replays,
        }
    report.tables = ["\n".join(rows)]
    return report


# ---------------------------------------------------------------------------
# A4: hold/retry reliability
# ---------------------------------------------------------------------------

def reliability(
    downtime: float = 5.0,
    messages: int = 50,
    ttl: float = 30.0,
) -> ExperimentReport:
    """A4: delivery ratio with/without hold-retry across service downtime."""
    report = ExperimentReport(
        experiment="Ablation A4",
        description="Hold/retry store vs single-attempt delivery across a "
        f"{downtime}s outage",
    )
    rows = ["policy\tdelivered\texpired\tattempts"]
    for label, policy in (
        ("no-retry", FixedDelay(max_attempts=1, delay=0.0)),
        ("fixed x5", FixedDelay(max_attempts=5, delay=1.0)),
        ("backoff x8", ExponentialBackoff(max_attempts=8, base=0.25, max_delay=4.0)),
    ):
        clock = ManualClock()
        up_at = clock.now() + downtime

        def deliver(msg: HeldMessage) -> None:
            if clock.now() < up_at:
                raise ConnectionError("service down")

        store = HoldRetryStore(deliver, policy=policy, default_ttl=ttl, clock=clock)
        for i in range(messages):
            store.hold(f"uuid:rel-{label}-{i}", "http://svc/echo", b"<x/>")
        # pump on a 0.5 s cadence for the ttl window
        for _ in range(int(ttl / 0.5)):
            store.pump()
            clock.advance(0.5)
            if store.pending() == 0:
                break
        stats = store.stats
        rows.append(
            f"{label}\t{stats['delivered']}\t{stats['expired']}\t{stats['attempts']}"
        )
        report.extras[label] = stats
    report.tables = ["\n".join(rows)]
    return report

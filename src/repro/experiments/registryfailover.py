"""Registry-failover experiment: replicated discovery under replica loss.

The acceptance test for the replicated registry (ROADMAP item 2).  Three
:class:`~repro.registry.replica.RegistryReplica` peers gossip over the
simulated network while a :class:`~repro.registry.client.ReplicatedRegistryClient`
streams lookups; a seeded :class:`~repro.chaos.plan.ServiceCrash`
SIGKILLs the client's *first-preference* replica mid-run (host dark,
journal marks dropped), and the restarted incarnation reopens the same
journal and re-converges via anti-entropy.

What the run must show for the replication story to hold:

- **zero lookup failures** — every ``lookup`` during the outage fails
  over to a surviving replica; after the rejoin, the sweep's
  availability bias rides out the victim's staleness window (a just-
  restarted replica answering "unknown" does not end the sweep);
- **bounded staleness** — a service registered *while the victim is
  down* reaches it within two anti-entropy intervals of the rejoin;
- **bit-reproducibility** — every point is run twice and the summaries
  must be identical (seeded shuffle, seeded gossip peer choice, seeded
  network).
"""

from __future__ import annotations

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan, ServiceCrash
from repro.errors import ReproError
from repro.experiments.common import ExperimentReport
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.registry import RegistryReplica, ReplicatedRegistryClient, SimGossipPeer
from repro.registry.gossip import GossipHandler
from repro.simnet.kernel import Simulator
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.scenarios import BACKBONE_IU, add_site
from repro.simnet.topology import Network
from repro.store.journal import MessageJournal

#: (crash_at, restart_after) points swept by :func:`run`
CRASH_POINTS = ((8.0, 6.0), (12.0, 10.0))

REPLICAS = ("reg1", "reg2", "reg3")
GOSSIP_PORT = 7000


class _Slot:
    """Forwarder standing in for one replica *process*: the simulated
    SIGKILL swaps ``obj`` for a fresh incarnation while every long-lived
    reference (client handle, gossip driver, HTTP handler) keeps
    pointing at the slot."""

    def __init__(self, obj) -> None:
        self.obj = obj

    def __getattr__(self, name):
        return getattr(self.obj, name)


def run_point(
    crash_at: float,
    restart_after: float,
    lookup_gap: float = 0.2,
    interval: float = 1.0,
    seed: int = 17,
    horizon: float = 40.0,
) -> dict:
    """One crash/rejoin scenario; returns the per-point summary dict."""
    sim = Simulator()
    net = Network(sim, loss_seed=seed)
    metrics = MetricsRegistry()
    flight = FlightRecorder()

    hosts = {
        name: add_site(net, BACKBONE_IU, name=name, open_ports=(GOSSIP_PORT,))
        for name in REPLICAS
    }
    # one journal object per replica: it is the disk, so it survives the
    # simulated SIGKILL and the restarted incarnation reopens it
    journals = {
        name: MessageJournal(sync="always", now_fn=lambda: sim.now)
        for name in REPLICAS
    }
    slots = {
        name: _Slot(RegistryReplica(name, journal=journals[name], metrics=metrics))
        for name in REPLICAS
    }
    for name in REPLICAS:
        SimHttpServer(
            net, hosts[name], GOSSIP_PORT,
            GossipHandler(slots[name], metrics=metrics),
            workers=4, service_time=0.0005,
        )
    gossips = {
        name: SimGossipPeer(
            net, hosts[name], slots[name],
            {p: (p, GOSSIP_PORT) for p in REPLICAS if p != name},
            interval=interval, seed=seed + i,
            metrics=metrics, flight=flight,
        ).start()
        for i, name in enumerate(REPLICAS)
    }

    client = ReplicatedRegistryClient(
        dict(slots), seed=seed, cache_ttl=0.0, max_passes=1,
        clock=sim.clock, metrics=metrics, flight=flight,
    )
    client.register("echo", "http://sink:9000/echo")
    # kill the replica every sweep tries first — the strongest failover
    # exercise (a less-preferred victim would never even be consulted)
    victim = client.replica_names[0]
    rejoin_at = crash_at + restart_after

    controller = ChaosController(
        net,
        FaultPlan(
            (ServiceCrash(host=victim, at=crash_at, restart_after=restart_after),),
            seed=seed,
        ),
        metrics=metrics, flight=flight,
        replicas={victim: slots[victim]},
    )
    controller.start()

    restored = {"count": -1}

    def crash_and_restart():
        yield sim.timeout(crash_at)
        # the dying process loses its buffered journal marks (the chaos
        # controller darkens the host and flips availability)
        journals[victim].drop_unflushed()
        yield sim.timeout(restart_after)
        replica = RegistryReplica(victim, journal=journals[victim], metrics=metrics)
        slots[victim].obj = replica
        restored["count"] = replica.stats.get("restored", 0)

    sim.process(crash_and_restart(), name="crash-restart")

    lookups = {"attempts": 0, "failures": 0}

    def looker():
        while True:
            try:
                client.lookup("echo")
            except ReproError:
                lookups["failures"] += 1
            lookups["attempts"] += 1
            yield sim.timeout(lookup_gap)

    sim.process(looker(), name="lookup-driver")

    late = {"registered_at": -1.0, "lookups": 0, "failures": 0}

    def late_registrar():
        # register a new service while the victim is down, then hammer it
        yield sim.timeout(crash_at + restart_after / 2)
        client.register("late-svc", "http://sink:9001/late")
        late["registered_at"] = round(sim.now, 6)
        while True:
            yield sim.timeout(lookup_gap)
            try:
                client.lookup("late-svc")
            except ReproError:
                late["failures"] += 1
            late["lookups"] += 1

    sim.process(late_registrar(), name="late-registrar")

    convergence = {"converged_at": -1.0}

    def monitor():
        while True:
            yield sim.timeout(interval / 10)
            if convergence["converged_at"] >= 0 or sim.now <= rejoin_at:
                continue
            vvs = [dict(slots[n].vv) for n in REPLICAS]
            if all(slots[n].available for n in REPLICAS) and all(
                vv == vvs[0] for vv in vvs
            ):
                convergence["converged_at"] = round(sim.now, 6)

    sim.process(monitor(), name="convergence-monitor")

    sim.run(until=horizon)

    health = {n: gossips[n].health.snapshot() for n in REPLICAS}
    events = flight.counts_by_kind()
    staleness = (
        round(convergence["converged_at"] - rejoin_at, 6)
        if convergence["converged_at"] >= 0
        else -1.0
    )
    return {
        "crash_at": crash_at,
        "restart_after": restart_after,
        "victim": victim,
        "interval": interval,
        "lookups": lookups["attempts"],
        "lookup_failures": lookups["failures"],
        "late_lookups": late["lookups"],
        "late_lookup_failures": late["failures"],
        "late_registered_at": late["registered_at"],
        "failovers": int(
            metrics.counter(
                "registry_client_failover_total",
                "lookup attempts that skipped past a failed replica",
            ).labels().get()
        ),
        "replayed_on_restart": restored["count"],
        "converged_at": convergence["converged_at"],
        "staleness_after_rejoin": staleness,
        "gossip_rounds": sum(
            p["rounds"] for snap in health.values() for p in snap.values()
        ),
        "gossip_failures": sum(
            p["failures"] for snap in health.values() for p in snap.values()
        ),
        "replica_down_events": events.get("replica-down", 0),
        "replica_rejoin_events": events.get("replica-rejoin", 0),
        "gossip_converged_events": events.get("gossip-converged", 0),
        "final_entries": {n: slots[n].stats["entries"] for n in REPLICAS},
    }


def run(
    crash_points: tuple = CRASH_POINTS,
    seed: int = 17,
    interval: float = 1.0,
) -> ExperimentReport:
    """Sweep the crash points; every point runs twice to prove the
    summaries are bit-identical (seeded simulation, no wall clock)."""
    report = ExperimentReport(
        experiment="Registry failover",
        description=(
            "SIGKILL one of three gossiping registry replicas mid-run: "
            "zero lookup failures, rejoin from journal, convergence "
            "within two anti-entropy intervals, bit-reproducible"
        ),
    )
    rows = []
    for crash_at, restart_after in crash_points:
        point = run_point(
            crash_at, restart_after, seed=seed, interval=interval
        )
        rerun = run_point(
            crash_at, restart_after, seed=seed, interval=interval
        )
        point["reproducible"] = point == rerun
        rows.append(point)
        report.extras[f"crash={crash_at:g}s,restart={restart_after:g}s"] = point
    lines = [
        "# registry failover [lookup availability across a replica SIGKILL]",
        "crash_s\trestart_s\tvictim\tlookups\tfails\tlate_fails\tfailovers"
        "\treplayed\tstale_s\trepro",
    ]
    for p in rows:
        lines.append(
            f"{p['crash_at']:g}\t{p['restart_after']:g}\t{p['victim']}\t"
            f"{p['lookups']}\t{p['lookup_failures']}\t"
            f"{p['late_lookup_failures']}\t{p['failovers']}\t"
            f"{p['replayed_on_restart']}\t{p['staleness_after_rejoin']:g}\t"
            f"{p['reproducible']}"
        )
    report.tables = ["\n".join(lines)]
    report.notes.append(
        f"seed={seed}, anti-entropy interval={interval:g}s; the victim is "
        "the client's first-preference replica; 'stale_s' is how long "
        "after the rejoin the three version vectors re-equalised"
    )
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """Replication contract: lookups never fail, staleness is bounded."""
    failures: list[str] = []
    for key, point in report.extras.items():
        if point["lookup_failures"] or point["late_lookup_failures"]:
            failures.append(
                f"{key}: {point['lookup_failures']} lookup and "
                f"{point['late_lookup_failures']} late-lookup failures — "
                "failover did not mask the replica loss"
            )
        if point["failovers"] <= 0:
            failures.append(f"{key}: the outage never exercised failover")
        if point["replayed_on_restart"] <= 0:
            failures.append(
                f"{key}: the restarted replica replayed nothing from its "
                "journal"
            )
        if point["converged_at"] < 0:
            failures.append(f"{key}: replicas never re-converged")
        elif point["staleness_after_rejoin"] > 2 * point["interval"]:
            failures.append(
                f"{key}: convergence took {point['staleness_after_rejoin']:g}s "
                f"(> 2 intervals = {2 * point['interval']:g}s)"
            )
        if not point["replica_down_events"] or not point["replica_rejoin_events"]:
            failures.append(
                f"{key}: missing replica-down/replica-rejoin flight events"
            )
        if not point["reproducible"]:
            failures.append(f"{key}: two seeded runs diverged")
    return failures

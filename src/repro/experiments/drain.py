"""Backlog-drain experiment over real loopback TCP, runtime-selectable.

The experiments CLI grew up on the deterministic simulator; this one runs
the *real* runtimes instead, because its question is about them: given an
admitted backlog of one-way messages, how fast does each dispatcher
backend drain it to a sink?

``runtime="threaded"`` drives :class:`~repro.core.MsgDispatcher` (CxThread
/ WsThread pools), ``runtime="aio"`` drives
:class:`~repro.aio.AioMsgDispatcher` on one loop thread, and
``runtime="sharded"`` stands up a whole
:class:`~repro.shard.ShardSupervisor` fleet (worker subprocesses behind
one SO_REUSEPORT endpoint).  The sink is the same threaded HTTP server in
all cases, so the variable under test is the dispatcher substrate — this
is the ROADMAP item 3 follow-on wiring ``repro.aio`` (and now
``repro.shard``) into ``python -m repro.experiments``.
"""

from __future__ import annotations

import threading
import time

from repro.core.msg_dispatcher import MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.errors import ReproError
from repro.experiments.common import ExperimentReport
from repro.http import HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.rt.server import HttpServer
from repro.rt.service import RequestContext
from repro.soap import Envelope
from repro.transport.tcp import TcpConnector, TcpListener
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders

RUNTIMES = ("threaded", "aio", "sharded")


def _start_sink(delivered: set, done: threading.Event, expected: int):
    lock = threading.Lock()

    def handler(request, peer):
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        with lock:
            if mid:
                delivered.add(mid)
            if len(delivered) >= expected:
                done.set()
        return HttpResponse(status=202)

    return HttpServer(
        TcpListener("127.0.0.1:0"), handler, workers=8, name="drain-sink"
    ).start()


def _run_point(runtime: str, messages: int, batch_size: int) -> dict:
    delivered: set = set()
    done = threading.Event()
    sink = _start_sink(delivered, done, messages)
    metrics = MetricsRegistry(enabled=False)
    traces = TraceStore(enabled=False)
    registry = ServiceRegistry(metrics=metrics)
    registry.register("drain-echo", sink.url + "/echo")
    config = MsgDispatcherConfig(
        cx_threads=2, ws_threads=4, batch_size=batch_size,
        pipeline_batches=True,
    )

    ids = IdGenerator("drain", seed=7)
    envelopes = [
        make_echo_message(to="urn:wsd:drain-echo", message_id=ids.next())
        for _ in range(messages)
    ]

    stop_fns = []
    try:
        if runtime == "sharded":
            from repro.shard import ShardSupervisor, SupervisorConfig
            from repro.rt.client import HttpClient

            supervisor = ShardSupervisor(
                {"drain-echo": sink.url + "/echo"},
                SupervisorConfig(shards=2, batch_size=batch_size),
            ).start()
            stop_fns.append(supervisor.stop)
            feeder = HttpClient(TcpConnector())
            stop_fns.append(feeder.close)
            t0 = time.perf_counter()
            for envelope in envelopes:
                feeder.post_envelope(
                    supervisor.data_url + "/msg/drain-echo", envelope
                )
        elif runtime == "aio":
            from repro.aio import AioHttpClient, AioLoopThread, AioMsgDispatcher

            loop_thread = AioLoopThread(name="drain-loop").start()
            stop_fns.append(loop_thread.stop)

            async def build():
                return AioMsgDispatcher(
                    registry, AioHttpClient(metrics=metrics),
                    own_address="http://127.0.0.1:0/msg",
                    config=config, metrics=metrics, traces=traces,
                )

            dispatcher = loop_thread.run(build())
            stop_fns.append(dispatcher.stop)
            t0 = time.perf_counter()
            for envelope in envelopes:
                dispatcher.handle(
                    envelope, RequestContext("/msg/drain-echo", None, None)
                )
        else:
            from repro.core.msg_dispatcher import MsgDispatcher
            from repro.rt.client import HttpClient

            client = HttpClient(TcpConnector(), metrics=metrics)
            stop_fns.append(client.close)
            dispatcher = MsgDispatcher(
                registry, client, own_address="http://127.0.0.1:0/msg",
                config=config, metrics=metrics, traces=traces,
            )
            stop_fns.append(dispatcher.stop)
            t0 = time.perf_counter()
            for envelope in envelopes:
                dispatcher.handle(
                    envelope, RequestContext("/msg/drain-echo", None, None)
                )
        done.wait(timeout=60.0)
        elapsed = time.perf_counter() - t0
    finally:
        for stop in stop_fns:
            try:
                stop()
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
        sink.stop()
    return {
        "runtime": runtime,
        "messages": messages,
        "delivered": len(delivered),
        "elapsed_s": round(elapsed, 4),
        "msgs_per_s": round(len(delivered) / elapsed, 1) if elapsed else 0.0,
    }


def run(
    runtime: str = "threaded",
    messages: int = 400,
    batch_size: int = 8,
) -> ExperimentReport:
    """Drain ``messages`` through the chosen runtime; one row per run."""
    if runtime not in RUNTIMES:
        raise ValueError(f"runtime must be one of {RUNTIMES}, not {runtime!r}")
    report = ExperimentReport(
        experiment="Backlog drain (real TCP)",
        description=(
            "admitted one-way backlog drained to a threaded sink; the "
            "variable is the dispatcher runtime"
        ),
    )
    point = _run_point(runtime, messages, batch_size)
    report.extras[runtime] = point
    lines = [
        "# backlog drain [one-way msgs to delivery at the sink]",
        "runtime\tmessages\tdelivered\telapsed_s\tmsgs_per_s",
        f"{point['runtime']}\t{point['messages']}\t{point['delivered']}\t"
        f"{point['elapsed_s']}\t{point['msgs_per_s']}",
    ]
    report.tables = ["\n".join(lines)]
    report.notes.append(
        f"batch_size={batch_size}, pipelined bursts on; sink is the "
        "threaded HttpServer in every mode"
    )
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    failures: list[str] = []
    for runtime, point in report.extras.items():
        if point["delivered"] < point["messages"]:
            failures.append(
                f"{runtime}: only {point['delivered']} of "
                f"{point['messages']} drained"
            )
    return failures

"""Figure 6 — asynchronous communication (messaging mode).

Paper setup ("good" environment): a firewalled client exchanges one-way
WS-Addressing echo messages, one minute per point, clients ∈ 1..50.
Three configurations:

- **One way (response blocked) with WS-MSG** — client sends directly to
  the messaging WS; the WS's attempts to reply to the firewalled client
  hang on dropped SYNs, starving its sender pool, which throttles how
  fast it accepts new messages.
- **With MSG-Dispatcher** — the dispatcher forwards requests fine, but
  its WsThreads burn connect timeouts trying to deliver *responses* to
  the firewalled client endpoints; delivery slots starve, queues fill,
  the dispatcher sheds load.  The paper calls this "the slowest
  performance".
- **With MSG-D and MsgBox** — responses go to a WS-MsgBox mailbox next to
  the dispatcher; every hop is between accessible endpoints, so this is
  "the best from [a] performance perspective when the number of
  concurrent connections is higher than 10".

Measured: one-way echo messages per minute successfully handed to the
entry point (the paper's "how many calls were made").
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.experiments.common import (
    CLIENT_CALL_OVERHEAD,
    DISPATCHER_SERVICE_TIME,
    ExperimentReport,
    SOAP_SERVICE_TIME,
    paper_shape_summary,
)
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.rt.service import RequestContext, SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.workload.results import Series, render_table
from repro.workload.sim_testclient import SimRampConfig, SimRampTester
from repro.wsa import EndpointReference

PAPER_CLIENT_COUNTS = [1, 5, 10, 20, 30, 40, 50]
PAPER_DURATION = 60.0

MODES = ("one-way direct (response blocked)", "MSG-Dispatcher", "MSG-D + MsgBox")


def _build(mode: str, clients: int, reply_connect_timeout: float):
    """Assemble one fig6 configuration; returns (net, tester pieces)."""
    sim = Simulator()
    net = Network(sim)
    client_host = add_site(net, INRIA, name="inria")
    ws_host = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    wsd_host = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"), open_ports=(8000, 8500)
    )

    echo_ws = SimAsyncEchoService(
        net,
        ws_host,
        reply_senders=32,  # a container-default pool; the dispatcher's
        connect_timeout=reply_connect_timeout,  # WsThread pool is smaller
    )
    SimHttpServer(
        net, ws_host, 9000, echo_ws.handler, workers=32,
        service_time=SOAP_SERVICE_TIME,
    )

    ids = IdGenerator("fig6", seed=clients)
    extras: dict[str, object] = {"echo_ws": echo_ws}

    if mode == "one-way direct (response blocked)":
        # replies target per-client endpoints on the firewalled host
        def factory(counter=[0]):
            counter[0] += 1
            port = 20000 + counter[0] % max(clients, 1)
            env = make_echo_message(
                to=f"http://iuWS:9000/echo",
                message_id=ids.next(),
                reply_to=EndpointReference(f"http://inria:{port}/reply"),
            )
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            return HttpRequest("POST", "/echo", headers=headers, body=env.to_bytes())

        tester = SimRampTester(net, client_host, "iuWS", 9000, "/echo", factory)
        return net, tester, extras

    registry = ServiceRegistry()
    registry.register("echo", "http://iuWS:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=4,
        ws_workers=8,
        accept_queue=128,
        destination_queue=16,
        parallel_per_destination=4,
        connect_timeout=reply_connect_timeout,
        shed_on_full=False,  # paper-faithful: no admission control
        passthrough_reply_prefixes=("http://iuWSD:8500/mailbox",),
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://iuWSD:8000/msg", config=config
    )
    SimHttpServer(
        net, wsd_host, 8000, dispatcher.handler, workers=32,
        service_time=DISPATCHER_SERVICE_TIME,
    )
    extras["dispatcher"] = dispatcher

    if mode == "MSG-Dispatcher":
        def factory(counter=[0]):
            counter[0] += 1
            port = 20000 + counter[0] % max(clients, 1)
            env = make_echo_message(
                to="urn:wsd:echo",
                message_id=ids.next(),
                reply_to=EndpointReference(f"http://inria:{port}/reply"),
            )
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            return HttpRequest(
                "POST", "/msg/echo", headers=headers, body=env.to_bytes()
            )

        tester = SimRampTester(net, client_host, "iuWSD", 8000, "/msg/echo", factory)
        return net, tester, extras

    # MSG-D + MsgBox: mailbox service co-located with the dispatcher
    store = MailboxStore(clock=sim.clock, max_messages_per_box=100_000)
    msgbox = MsgBoxService(store, base_url="http://iuWSD:8500/mailbox")
    mb_app = SoapHttpApp()
    mb_app.mount("/mailbox", msgbox)
    SimHttpServer(
        net, wsd_host, 8500,
        lambda req: mb_app.handle_request(req, None),
        workers=32,
        service_time=SOAP_SERVICE_TIME,
    )
    extras["msgbox"] = msgbox

    # one mailbox per client (created out of band; the RPC create call is
    # cheap and not part of the measured steady state)
    eprs = [
        make_mailbox_epr("http://iuWSD:8500/mailbox", store.create())
        for _ in range(max(clients, 1))
    ]

    def factory(counter=[0]):
        counter[0] += 1
        env = make_echo_message(
            to="urn:wsd:echo",
            message_id=ids.next(),
            reply_to=eprs[counter[0] % len(eprs)],
        )
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        return HttpRequest("POST", "/msg/echo", headers=headers, body=env.to_bytes())

    tester = SimRampTester(net, client_host, "iuWSD", 8000, "/msg/echo", factory)
    return net, tester, extras


def run(
    client_counts: list[int] | None = None,
    duration: float = PAPER_DURATION,
    reply_connect_timeout: float = 4.0,
) -> ExperimentReport:
    """Reproduce Figure 6; three series per :data:`MODES`."""
    counts = client_counts or PAPER_CLIENT_COUNTS
    report = ExperimentReport(
        experiment="Figure 6",
        description=(
            "Asynchronous communication: one-way echo messages/minute vs "
            "clients for direct / dispatcher / dispatcher+msgbox"
        ),
    )
    for mode in MODES:
        series = Series(mode)
        for clients in counts:
            net, tester, extras = _build(mode, clients, reply_connect_timeout)
            config = SimRampConfig(
                clients=clients,
                duration=duration,
                connect_timeout=10.0,
                response_timeout=10.0,
                think_time=CLIENT_CALL_OVERHEAD,
            )
            result = tester.run(config)
            series.add(result)
            key = f"{mode}@{clients}"
            if "dispatcher" in extras:
                report.extras[key] = dict(extras["dispatcher"].stats)
            if "msgbox" in extras:
                report.extras[key + ":deposits"] = extras["msgbox"].stats.get(
                    "deposits", 0
                )
        report.series.append(series)
    report.tables = [
        render_table(report.series, "per_minute", title="Fig6 messages/minute"),
    ]
    report.notes.append(paper_shape_summary(report.series))
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """Paper-prose checks; returns failed checks."""
    failures: list[str] = []
    direct = report.series_by_label(MODES[0])
    disp = report.series_by_label(MODES[1])
    mbox = report.series_by_label(MODES[2])
    for rd, rw, rm in zip(direct.results, disp.results, mbox.results):
        clients = rm.clients
        if clients > 10:
            if not (rm.per_minute >= rd.per_minute and rm.per_minute >= rw.per_minute):
                failures.append(
                    f"msgbox not best at {clients} clients: "
                    f"mb={rm.per_minute:.0f} direct={rd.per_minute:.0f} "
                    f"disp={rw.per_minute:.0f}"
                )
            if rw.per_minute > rd.per_minute:
                failures.append(
                    f"dispatcher-without-msgbox should be slowest at "
                    f"{clients} clients (disp={rw.per_minute:.0f} > "
                    f"direct={rd.per_minute:.0f})"
                )
    return failures

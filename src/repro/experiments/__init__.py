"""Experiment harness: one module per paper table/figure, plus ablations.

Every experiment exposes ``run(...) -> ExperimentReport`` with parameters
defaulting to the paper's settings (scaled knobs exist so the pytest
benchmarks can run quick versions).  Results print as the same rows /
series the paper plots; EXPERIMENTS.md records full-scale outputs.
"""

from repro.experiments.common import ExperimentReport
from repro.experiments import fig4, fig5, fig6, table1, ablations

__all__ = ["ExperimentReport", "fig4", "fig5", "fig6", "table1", "ablations"]

"""Chaos experiment: delivery robustness under packet loss and link flaps.

Sweeps a grid of (packet-loss rate × link-flap period) against a
MSG-Dispatcher equipped with the robustness stack — hold/retry store and
per-destination circuit breakers — and measures what the paper's Table 1
never could: how many one-way messages survive a hostile network, and at
what latency cost.

Each grid point builds a fresh simulation (client site → dispatcher →
echo sink), runs a seeded :class:`~repro.chaos.plan.FaultPlan` through
:class:`~repro.chaos.controller.ChaosController`, and counts unique
messages that arrive at the sink (a :class:`DuplicateFilter` collapses
hold/retry redeliveries).  Reported per point: delivery success ratio and
p50/p99 end-to-end latency.

The run doubles as the telemetry-plane acceptance rig: client and sink
record spans into their own :class:`ReportingTraceStore` and ship them to
the dispatcher's aggregating store over the span-report endpoint (so one
trace id shows the full client → WSD → sink tree), a
:class:`~repro.obs.flight.FlightRecorder` on the simulated clock captures
sheds/breaker trips/fault windows and dumps postmortems, and a
:class:`~repro.obs.history.MetricsSnapshotter` samples the registry in
simulated time and exports ``metrics_history.json``.  Everything runs on
the seeded simulation clock, so two runs of one grid point produce
bit-identical telemetry artefacts.
"""

from __future__ import annotations

import os

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan, LinkFlap, PacketLoss
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.errors import ReproError
from repro.experiments.common import (
    DISPATCHER_SERVICE_TIME,
    ExperimentReport,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.flight import FlightRecorder
from repro.obs.history import MetricsSnapshotter
from repro.obs.metrics import MetricsRegistry
from repro.obs.spanreport import (
    SPAN_REPORT_PATH,
    ReportingTraceStore,
    SimSpanShipper,
    SpanReportHandler,
)
from repro.obs.trace import TraceContext, TraceStore, attach_trace, extract_trace
from repro.reliable import BreakerConfig, DuplicateFilter, FixedDelay, HoldRetryStore
from repro.simnet.httpsim import SimHttpClientPool, SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders
from repro.soap import Envelope

LOSS_RATES = (0.0, 0.1, 0.3)
FLAP_PERIODS = (0.0, 10.0, 5.0)  # 0 = no flapping


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def run_point(
    loss: float,
    flap_period: float,
    messages: int = 120,
    send_gap: float = 0.25,
    seed: int = 7,
    horizon: float = 240.0,
    telemetry_dir: str | None = None,
) -> dict:
    """One grid point; returns the per-point summary dict.

    ``telemetry_dir`` turns on the file-producing half of the telemetry
    plane: flight-recorder postmortems land in
    ``<telemetry_dir>/postmortem-loss<loss>-flap<period>/`` and the
    metrics time-series in ``<telemetry_dir>/metrics_history.json``.
    In-memory telemetry (spans, flight ring, history ring) is always on.
    """
    sim = Simulator()
    net = Network(sim, loss_seed=seed)
    client_host = add_site(net, INRIA, name="client")
    wsd_host = add_site(net, BACKBONE_IU, name="wsd", open_ports=(8000,))
    sink_host = add_site(net, BACKBONE_IU, name="sink", open_ports=(9000,))

    metrics = MetricsRegistry()
    # the dispatcher's store is the aggregator: client and sink ship their
    # spans into it, so one /trace/<id> lookup shows all three processes
    traces = TraceStore(span_prefix="wsd")
    client_traces = ReportingTraceStore(span_prefix="client")
    svc_traces = ReportingTraceStore(span_prefix="svc")
    postmortem_dir = None
    if telemetry_dir is not None:
        postmortem_dir = os.path.join(
            telemetry_dir, f"postmortem-loss{loss:g}-flap{flap_period:g}"
        )
    flight = FlightRecorder(clock=lambda: sim.now, postmortem_dir=postmortem_dir)
    snapshotter = MetricsSnapshotter(metrics, interval=5.0, capacity=600)
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://sink:9000/echo")

    send_times: dict[str, float] = {}
    latencies: list[float] = []
    dupes = DuplicateFilter(window=3600.0, clock=sim.clock)
    delivered: set[str] = set()

    def sink_handler(request: HttpRequest) -> HttpResponse:
        t_in = sim.now
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        ctx = extract_trace(envelope)
        if ctx is not None:
            svc_traces.record(
                ctx.trace_id, "absorb", "sink", t_in, sim.now,
                parent_id=ctx.parent_span_id,
            )
        if mid and not dupes.seen(mid):
            delivered.add(mid)
            if mid in send_times:
                latencies.append(sim.now - send_times[mid])
        return HttpResponse(status=202)

    SimHttpServer(
        net, sink_host, 9000, sink_handler, workers=16,
        service_time=SOAP_SERVICE_TIME,
    )

    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=10_000, delay=0.5),
        default_ttl=horizon,
        clock=sim.clock,
        flight=flight,
    )
    config = SimMsgDispatcherConfig(
        connect_timeout=3.0,
        response_timeout=5.0,
        breaker=BreakerConfig(consecutive_failures=3, open_for=2.0),
        hold_pump_interval=0.25,
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://wsd:8000/msg",
        config=config, metrics=metrics, traces=traces, hold_store=hold_store,
        flight=flight,
    )
    report_handler = SpanReportHandler(traces, metrics=metrics)

    def wsd_handler(request: HttpRequest):
        # operator-plane span reports share the dispatcher's port but not
        # its pipeline: route them straight to the aggregator
        if request.target.split("?", 1)[0] == SPAN_REPORT_PATH:
            return report_handler(request)
        return (yield from dispatcher.handler(request))

    SimHttpServer(
        net, wsd_host, 8000, wsd_handler, workers=16,
        service_time=DISPATCHER_SERVICE_TIME,
    )
    shippers = [
        SimSpanShipper(net, client_host, client_traces, "wsd", 8000),
        SimSpanShipper(net, sink_host, svc_traces, "wsd", 8000),
    ]
    for shipper in shippers:
        shipper.start()
    sim.process(
        snapshotter.sim_process(sim, until=horizon), name="metrics-snapshotter"
    )

    faults = []
    if loss > 0:
        faults.append(
            PacketLoss(host="sink", at=2.0, duration=messages * send_gap, rate=loss)
        )
    if flap_period > 0:
        faults.append(
            LinkFlap(
                host="sink", at=5.0, period=flap_period,
                down_for=flap_period / 2.0, until=5.0 + messages * send_gap,
            )
        )
    controller = ChaosController(
        net, FaultPlan(tuple(faults), seed=seed), metrics=metrics, flight=flight
    )
    controller.start()

    ids = IdGenerator("chaos", seed=seed)
    pool = SimHttpClientPool(
        net, client_host, connect_timeout=5.0, response_timeout=10.0
    )
    sent: list[str] = []
    send_errors = 0

    def sender():
        nonlocal send_errors
        for _ in range(messages):
            mid = ids.next()
            env = make_echo_message(to="urn:wsd:echo", message_id=mid)
            # deterministic trace ids (derived from the seeded MessageID
            # generator) keep the telemetry artefacts bit-reproducible
            ctx = TraceContext(f"trace-{mid}")
            send_sid = client_traces.new_span_id()
            attach_trace(env, ctx.child(send_sid))
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            request = HttpRequest(
                "POST", "/msg/echo", headers=headers, body=env.to_bytes()
            )
            sent.append(mid)
            t_send = sim.now
            send_times[mid] = t_send
            try:
                yield from pool.exchange("wsd", 8000, request)
            except ReproError:
                send_errors += 1
            client_traces.record(
                ctx.trace_id, "send", "client", t_send, sim.now,
                span_id=send_sid,
            )
            yield sim.timeout(send_gap)

    sim.process(sender(), name="chaos-sender")
    sim.run(until=horizon)

    snapshotter.sample(t=sim.now)  # final state, after the horizon
    postmortem_path = None
    if telemetry_dir is not None:
        postmortem_path = flight.postmortem(
            "chaos-run-end", t=sim.now, loss=loss, flap_period=flap_period
        )
        snapshotter.export_json(
            os.path.join(telemetry_dir, "metrics_history.json")
        )

    # components seen on the first fully-shipped trace — ≥3 distinct
    # processes proves cross-process aggregation worked
    trace_components: list[str] = []
    sample_trace = None
    for mid in sent:
        tid = f"trace-{mid}"
        components = {s.component for s in traces.get(tid)}
        if len(components) >= 3:
            sample_trace = tid
            trace_components = sorted(components)
            break

    success = len(delivered & set(sent))
    return {
        "loss": loss,
        "flap_period": flap_period,
        "sent": len(sent),
        "delivered": success,
        "send_errors": send_errors,
        "success_ratio": success / len(sent) if sent else 0.0,
        "p50_latency": _percentile(latencies, 0.50),
        "p99_latency": _percentile(latencies, 0.99),
        "held_for_retry": dispatcher.stats.get("held_for_retry", 0),
        "breaker_blocked": dispatcher.stats.get("held_breaker_open", 0),
        "expired": hold_store.stats["expired"],
        "faults_injected": controller.injected,
        "sample_trace": sample_trace,
        "trace_components": trace_components,
        "spans_shipped": sum(s.shipped for s in shippers),
        "flight_events": flight.counts_by_kind(),
        "history_samples": len(snapshotter),
        "postmortem": postmortem_path,
    }


def run(
    loss_rates: tuple = LOSS_RATES,
    flap_periods: tuple = FLAP_PERIODS,
    messages: int = 120,
    seed: int = 7,
    telemetry_dir: str | None = "benchmarks/out",
) -> ExperimentReport:
    """Sweep the grid; one row per (loss, flap) combination."""
    report = ExperimentReport(
        experiment="Chaos sweep",
        description=(
            "Delivery success and latency under packet loss x link flaps "
            "(hold/retry + circuit breakers enabled)"
        ),
    )
    rows = []
    for loss in loss_rates:
        for period in flap_periods:
            point = run_point(
                loss, period, messages=messages, seed=seed,
                telemetry_dir=telemetry_dir,
            )
            rows.append(point)
            report.extras[f"loss={loss:.0%},flap={period:g}s"] = point
    lines = [
        "# chaos sweep [success ratio / p50 / p99 latency]",
        "loss%\tflap_s\tsent\tdelivered\tsuccess\tp50_s\tp99_s\theld\texpired",
    ]
    for p in rows:
        lines.append(
            f"{p['loss'] * 100:.0f}\t{p['flap_period']:g}\t{p['sent']}\t"
            f"{p['delivered']}\t{p['success_ratio']:.3f}\t"
            f"{p['p50_latency']:.3f}\t{p['p99_latency']:.3f}\t"
            f"{p['held_for_retry']}\t{p['expired']}"
        )
    report.tables = ["\n".join(lines)]
    report.notes.append(
        f"seed={seed}; every redelivery passes a DuplicateFilter, so "
        "'delivered' counts unique messages"
    )
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """The robustness stack should deliver everything the sender got in."""
    failures: list[str] = []
    for key, point in report.extras.items():
        accepted = point["sent"] - point["send_errors"]
        if point["delivered"] < accepted and point["expired"] == 0:
            failures.append(
                f"{key}: {accepted} accepted but only "
                f"{point['delivered']} delivered and none expired"
            )
    return failures

"""Chaos experiment: delivery robustness under packet loss and link flaps.

Sweeps a grid of (packet-loss rate × link-flap period) against a
MSG-Dispatcher equipped with the robustness stack — hold/retry store and
per-destination circuit breakers — and measures what the paper's Table 1
never could: how many one-way messages survive a hostile network, and at
what latency cost.

Each grid point builds a fresh simulation (client site → dispatcher →
echo sink), runs a seeded :class:`~repro.chaos.plan.FaultPlan` through
:class:`~repro.chaos.controller.ChaosController`, and counts unique
messages that arrive at the sink (a :class:`DuplicateFilter` collapses
hold/retry redeliveries).  Reported per point: delivery success ratio and
p50/p99 end-to-end latency.
"""

from __future__ import annotations

from repro.chaos.controller import ChaosController
from repro.chaos.plan import FaultPlan, LinkFlap, PacketLoss
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.errors import ReproError
from repro.experiments.common import (
    DISPATCHER_SERVICE_TIME,
    ExperimentReport,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.reliable import BreakerConfig, DuplicateFilter, FixedDelay, HoldRetryStore
from repro.simnet.httpsim import SimHttpClientPool, SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders
from repro.soap import Envelope

LOSS_RATES = (0.0, 0.1, 0.3)
FLAP_PERIODS = (0.0, 10.0, 5.0)  # 0 = no flapping


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def run_point(
    loss: float,
    flap_period: float,
    messages: int = 120,
    send_gap: float = 0.25,
    seed: int = 7,
    horizon: float = 240.0,
) -> dict:
    """One grid point; returns the per-point summary dict."""
    sim = Simulator()
    net = Network(sim, loss_seed=seed)
    client_host = add_site(net, INRIA, name="client")
    wsd_host = add_site(net, BACKBONE_IU, name="wsd", open_ports=(8000,))
    sink_host = add_site(net, BACKBONE_IU, name="sink", open_ports=(9000,))

    metrics = MetricsRegistry()
    traces = TraceStore(enabled=False)
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://sink:9000/echo")

    send_times: dict[str, float] = {}
    latencies: list[float] = []
    dupes = DuplicateFilter(window=3600.0, clock=sim.clock)
    delivered: set[str] = set()

    def sink_handler(request: HttpRequest) -> HttpResponse:
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        if mid and not dupes.seen(mid):
            delivered.add(mid)
            if mid in send_times:
                latencies.append(sim.now - send_times[mid])
        return HttpResponse(status=202)

    SimHttpServer(
        net, sink_host, 9000, sink_handler, workers=16,
        service_time=SOAP_SERVICE_TIME,
    )

    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=10_000, delay=0.5),
        default_ttl=horizon,
        clock=sim.clock,
    )
    config = SimMsgDispatcherConfig(
        connect_timeout=3.0,
        response_timeout=5.0,
        breaker=BreakerConfig(consecutive_failures=3, open_for=2.0),
        hold_pump_interval=0.25,
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://wsd:8000/msg",
        config=config, metrics=metrics, traces=traces, hold_store=hold_store,
    )
    SimHttpServer(
        net, wsd_host, 8000, dispatcher.handler, workers=16,
        service_time=DISPATCHER_SERVICE_TIME,
    )

    faults = []
    if loss > 0:
        faults.append(
            PacketLoss(host="sink", at=2.0, duration=messages * send_gap, rate=loss)
        )
    if flap_period > 0:
        faults.append(
            LinkFlap(
                host="sink", at=5.0, period=flap_period,
                down_for=flap_period / 2.0, until=5.0 + messages * send_gap,
            )
        )
    controller = ChaosController(
        net, FaultPlan(tuple(faults), seed=seed), metrics=metrics
    )
    controller.start()

    ids = IdGenerator("chaos", seed=seed)
    pool = SimHttpClientPool(
        net, client_host, connect_timeout=5.0, response_timeout=10.0
    )
    sent: list[str] = []
    send_errors = 0

    def sender():
        nonlocal send_errors
        for _ in range(messages):
            mid = ids.next()
            env = make_echo_message(to="urn:wsd:echo", message_id=mid)
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            request = HttpRequest(
                "POST", "/msg/echo", headers=headers, body=env.to_bytes()
            )
            sent.append(mid)
            send_times[mid] = sim.now
            try:
                yield from pool.exchange("wsd", 8000, request)
            except ReproError:
                send_errors += 1
            yield sim.timeout(send_gap)

    sim.process(sender(), name="chaos-sender")
    sim.run(until=horizon)

    success = len(delivered & set(sent))
    return {
        "loss": loss,
        "flap_period": flap_period,
        "sent": len(sent),
        "delivered": success,
        "send_errors": send_errors,
        "success_ratio": success / len(sent) if sent else 0.0,
        "p50_latency": _percentile(latencies, 0.50),
        "p99_latency": _percentile(latencies, 0.99),
        "held_for_retry": dispatcher.stats.get("held_for_retry", 0),
        "breaker_blocked": dispatcher.stats.get("held_breaker_open", 0),
        "expired": hold_store.stats["expired"],
        "faults_injected": controller.injected,
    }


def run(
    loss_rates: tuple = LOSS_RATES,
    flap_periods: tuple = FLAP_PERIODS,
    messages: int = 120,
    seed: int = 7,
) -> ExperimentReport:
    """Sweep the grid; one row per (loss, flap) combination."""
    report = ExperimentReport(
        experiment="Chaos sweep",
        description=(
            "Delivery success and latency under packet loss x link flaps "
            "(hold/retry + circuit breakers enabled)"
        ),
    )
    rows = []
    for loss in loss_rates:
        for period in flap_periods:
            point = run_point(loss, period, messages=messages, seed=seed)
            rows.append(point)
            report.extras[f"loss={loss:.0%},flap={period:g}s"] = point
    lines = [
        "# chaos sweep [success ratio / p50 / p99 latency]",
        "loss%\tflap_s\tsent\tdelivered\tsuccess\tp50_s\tp99_s\theld\texpired",
    ]
    for p in rows:
        lines.append(
            f"{p['loss'] * 100:.0f}\t{p['flap_period']:g}\t{p['sent']}\t"
            f"{p['delivered']}\t{p['success_ratio']:.3f}\t"
            f"{p['p50_latency']:.3f}\t{p['p99_latency']:.3f}\t"
            f"{p['held_for_retry']}\t{p['expired']}"
        )
    report.tables = ["\n".join(lines)]
    report.notes.append(
        f"seed={seed}; every redelivery passes a DuplicateFilter, so "
        "'delivered' counts unique messages"
    )
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """The robustness stack should deliver everything the sender got in."""
    failures: list[str] = []
    for key, point in report.extras.items():
        accepted = point["sent"] - point["send_errors"]
        if point["delivered"] < accepted and point["expired"] == 0:
            failures.append(
                f"{key}: {accepted} accepted but only "
                f"{point['delivered']} delivered and none expired"
            )
    return failures

"""Figure 4 — RPC communication under "bad" conditions (low broadband).

Paper setup: test client on the cable-modem host (iuLow, 2333/288 kbps,
P3@850) calling the echo WS on inriaSlow (P3@1GHz) for one minute per
point, clients ∈ {10, 100, 200, 500, 1000, 1500, 2000}, direct vs via the
RPC-Dispatcher.  Reported: packets transmitted and packets not sent
(log-scale y).

Expected shape (paper §4.3.1): no loss for small client counts; the limit
is reached "somewhere between 100 and 500 concurrent connections"; at 500
lost ≈ delivered; at 2000 lost ≈ 1000× delivered; the dispatcher has
"little negative impact on scalability".

Mechanisms that produce this here: the client host's connection table
(256 on the consumer stack) rejects connects beyond it instantly — each
rejected echo is a packet "not sent" — while the 288 kbps uplink congests
the connects/requests that do get through, pushing latencies toward the
response timeout.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.common import (
    CLIENT_CALL_OVERHEAD,
    ExperimentReport,
    build_rpc_scenario,
    paper_shape_summary,
)
from repro.simnet.scenarios import CABLE_MODEM_US, INRIA_SLOW
from repro.workload.results import Series, render_table
from repro.workload.sim_testclient import SimRampConfig, SimRampTester

#: the paper's x axis
PAPER_CLIENT_COUNTS = [10, 100, 200, 500, 1000, 1500, 2000]
PAPER_DURATION = 60.0


def run(
    client_counts: list[int] | None = None,
    duration: float = PAPER_DURATION,
    retry_backoff: float = 0.12,
    response_timeout: float = 15.0,
) -> ExperimentReport:
    """Reproduce Figure 4; returns series 'direct' and 'dispatcher'.

    ``retry_backoff`` is the test client's pause after a failed send —
    it sets the not-sent accumulation rate for starved clients (the paper
    does not report theirs; 120 ms reproduces the observed magnitudes).
    """
    counts = client_counts or PAPER_CLIENT_COUNTS
    report = ExperimentReport(
        experiment="Figure 4",
        description=(
            "RPC communication, low broadband (iuLow cable modem -> "
            "inriaSlow), packets transmitted / not sent vs clients"
        ),
    )
    series_direct = Series("direct")
    series_disp = Series("dispatcher")
    for via, series in ((False, series_direct), (True, series_disp)):
        for clients in counts:
            scenario = build_rpc_scenario(
                CABLE_MODEM_US,
                INRIA_SLOW,
                via_dispatcher=via,
                ws_workers=32,
            )
            tester = SimRampTester(
                scenario.net,
                scenario.client_host,
                scenario.entry_host,
                scenario.entry_port,
                scenario.entry_path,
            )
            config = SimRampConfig(
                clients=clients,
                duration=duration,
                connect_timeout=10.0,
                response_timeout=response_timeout,
                retry_backoff=retry_backoff,
                think_time=CLIENT_CALL_OVERHEAD
                * CABLE_MODEM_US.cpu_factor,
            )
            series.add(tester.run(config))
    report.series = [series_direct, series_disp]
    report.tables = [
        render_table(report.series, "transmitted", title="Fig4 transmitted"),
        render_table(report.series, "not_sent", title="Fig4 not sent"),
    ]
    report.notes.append(paper_shape_summary(report.series))
    return report


def check_shape(report: ExperimentReport) -> list[str]:
    """Assertions from the paper's prose; returns failed checks."""
    failures: list[str] = []
    for label in ("direct", "dispatcher"):
        s = report.series_by_label(label)
        by_clients = {r.clients: r for r in s.results}
        small = min(by_clients)
        if by_clients[small].not_sent > 0:
            failures.append(f"{label}: loss at smallest count {small}")
        big = max(by_clients)
        if big >= 500:
            r = by_clients[big]
            if r.not_sent < r.transmitted:
                failures.append(
                    f"{label}: expected heavy loss at {big} clients "
                    f"(lost {r.not_sent} vs sent {r.transmitted})"
                )
    # dispatcher ~ direct ("little negative impact")
    d = report.series_by_label("direct")
    w = report.series_by_label("dispatcher")
    for rd, rw in zip(d.results, w.results):
        if rd.transmitted > 50 and rw.transmitted < 0.4 * rd.transmitted:
            failures.append(
                f"dispatcher collapses at {rd.clients} clients: "
                f"{rw.transmitted} vs direct {rd.transmitted}"
            )
    return failures

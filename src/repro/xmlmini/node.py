"""Element tree for the mini XML infoset.

The model is intentionally simple: an element has a :class:`QName`, an
attribute map keyed by QName, a list of children (elements interleaved
with text runs), and helper accessors tuned for SOAP processing (find one
child by name, collect all, get trimmed text).
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.errors import XmlError
from repro.xmlmini.names import QName

Child = Union["Element", str]


class Element:
    """A namespaced XML element.

    ``children`` holds :class:`Element` nodes and ``str`` text runs in
    document order.  ``text=`` in the constructor is shorthand for a single
    text child.
    """

    __slots__ = ("name", "attrs", "children")

    def __init__(
        self,
        name: QName | str,
        attrs: dict[QName, str] | None = None,
        children: list[Child] | None = None,
        text: str | None = None,
    ) -> None:
        if isinstance(name, str):
            name = QName.from_clark(name)
        self.name = name
        self.attrs: dict[QName, str] = dict(attrs or {})
        self.children: list[Child] = list(children or [])
        if text is not None:
            if children:
                raise XmlError("pass either children or text, not both")
            self.children = [text]

    # -- construction helpers ----------------------------------------------
    def add(self, child: Child) -> "Element":
        """Append a child and return it (fluent building of subtrees)."""
        if not isinstance(child, (Element, str)):
            raise XmlError(f"child must be Element or str, not {type(child)!r}")
        self.children.append(child)
        return child if isinstance(child, Element) else self

    def set(self, name: QName | str, value: str) -> None:
        if isinstance(name, str):
            name = QName.from_clark(name)
        self.attrs[name] = value

    def get(self, name: QName | str, default: str | None = None) -> str | None:
        if isinstance(name, str):
            name = QName.from_clark(name)
        return self.attrs.get(name, default)

    # -- navigation ----------------------------------------------------------
    def element_children(self) -> Iterator["Element"]:
        for c in self.children:
            if isinstance(c, Element):
                yield c

    def find(self, name: QName | str) -> "Element | None":
        """First child element with the given name, or None."""
        if isinstance(name, str):
            name = QName.from_clark(name)
        for c in self.element_children():
            if c.name == name:
                return c
        return None

    def find_all(self, name: QName | str) -> list["Element"]:
        if isinstance(name, str):
            name = QName.from_clark(name)
        return [c for c in self.element_children() if c.name == name]

    def require(self, name: QName | str) -> "Element":
        """Like :meth:`find` but raises :class:`XmlError` when absent."""
        found = self.find(name)
        if found is None:
            want = name if isinstance(name, str) else name.clark()
            raise XmlError(f"<{self.name.clark()}> has no child {want}")
        return found

    @property
    def text(self) -> str:
        """Concatenated direct text content (no descent into children)."""
        return "".join(c for c in self.children if isinstance(c, str))

    def full_text(self) -> str:
        """Concatenated text of the whole subtree."""
        parts: list[str] = []
        stack: list[Child] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, str):
                parts.append(node)
            else:
                stack.extend(reversed(node.children))
        return "".join(parts)

    # -- structural equality ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.name == other.name
            and self.attrs == other.attrs
            and _normalized(self.children) == _normalized(other.children)
        )

    def __hash__(self) -> int:  # structural objects are mutable; identity hash
        return id(self)

    def __repr__(self) -> str:
        return (
            f"Element({self.name.clark()!r}, attrs={len(self.attrs)}, "
            f"children={len(self.children)})"
        )

    def copy(self) -> "Element":
        """Deep copy of the subtree (dispatchers mutate copies, not inputs)."""
        return Element(
            self.name,
            attrs=dict(self.attrs),
            children=[
                c.copy() if isinstance(c, Element) else c for c in self.children
            ],
        )


def _normalized(children: list[Child]) -> list[Child]:
    """Merge adjacent text runs and drop empty ones, for equality checks."""
    out: list[Child] = []
    for c in children:
        if isinstance(c, str):
            if not c:
                continue
            if out and isinstance(out[-1], str):
                out[-1] = out[-1] + c
            else:
                out.append(c)
        else:
            out.append(c)
    return out

"""Recursive-descent XML parser for the mini infoset.

Supports the subset SOAP documents use: the XML declaration, elements,
attributes, namespace declarations (default and prefixed), character data
with the five predefined entities plus numeric character references,
comments, CDATA sections, and processing instructions (skipped).  DOCTYPE
is rejected outright — there is no reason for a SOAP endpoint to accept
DTDs, and rejecting them closes the classic entity-expansion attacks.

The parser works on a single string with an index cursor; it is O(n) in
the document size and allocates only the resulting tree.
"""

from __future__ import annotations

from repro.errors import XmlParseError
from repro.xmlmini.names import QName, XMLNS_NS, is_ncname, split_prefixed
from repro.xmlmini.node import Element

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}
_WS = " \t\r\n"


def parse(document: str | bytes) -> Element:
    """Parse an XML document and return the root element.

    Raises :class:`~repro.errors.XmlParseError` on malformed input.
    """
    if isinstance(document, bytes):
        try:
            document = document.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XmlParseError(f"document is not valid UTF-8: {exc}") from None
    return _Parser(document).parse_document()


def parse_fragment(
    text: str, ns_scope: dict[str | None, str | None] | None = None
) -> Element:
    """Parse a single element cut out of a larger document.

    ``ns_scope`` supplies the namespace bindings in force at the point the
    fragment was cut (prefix → URI, ``None`` key = default namespace), so
    prefixes declared on ancestors of the fragment still resolve.  Used by
    the zero-copy envelope scanner to parse just the ``<soap:Header>``
    region of a request.  Raises :class:`~repro.errors.XmlParseError` on
    malformed input or trailing content after the element.
    """
    parser = _Parser(text)
    scope: dict[str | None, str | None] = {None: None, "xml": "xml-ns"}
    if ns_scope:
        scope.update(ns_scope)
    parser.skip_ws()
    if parser.peek() != "<":
        raise parser.fail("expected an element")
    el = parser.parse_element(scope)
    parser.skip_ws()
    if parser.pos != parser.n:
        raise parser.fail("content after fragment element")
    return el


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.n = len(text)

    # -- error helpers -----------------------------------------------------
    def fail(self, message: str) -> XmlParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XmlParseError(message, pos=self.pos, line=line)

    # -- low-level cursor ---------------------------------------------------
    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.n else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.fail(f"expected {token!r}")
        self.pos += len(token)

    def skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos] in _WS:
            self.pos += 1

    def read_until(self, token: str, what: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.fail(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        while self.pos < self.n and self.text[self.pos] not in " \t\r\n=/>\"'<":
            self.pos += 1
        name = self.text[start : self.pos]
        if not name:
            raise self.fail("expected a name")
        return name

    # -- document ------------------------------------------------------------
    def parse_document(self) -> Element:
        self._skip_prolog()
        if self.peek() != "<":
            raise self.fail("expected root element")
        root = self.parse_element({None: None, "xml": "xml-ns"})
        # trailing misc
        while True:
            self.skip_ws()
            if self.pos >= self.n:
                return root
            if self.startswith("<!--"):
                self._skip_comment()
            elif self.startswith("<?"):
                self._skip_pi()
            else:
                raise self.fail("content after document element")

    def _skip_prolog(self) -> None:
        if self.startswith("﻿"):
            self.pos += 1
        if self.startswith("<?xml"):
            self._skip_pi()
        while True:
            self.skip_ws()
            if self.startswith("<!--"):
                self._skip_comment()
            elif self.startswith("<?"):
                self._skip_pi()
            elif self.startswith("<!DOCTYPE"):
                raise self.fail("DOCTYPE is not allowed")
            else:
                return

    def _skip_comment(self) -> None:
        self.expect("<!--")
        body = self.read_until("-->", "comment")
        if "--" in body:
            raise self.fail("'--' not allowed inside comment")

    def _skip_pi(self) -> None:
        self.expect("<?")
        self.read_until("?>", "processing instruction")

    # -- elements -----------------------------------------------------------
    def parse_element(self, ns_scope: dict[str | None, str | None]) -> Element:
        """Parse one element; ``ns_scope`` maps prefix (None = default) to
        namespace URI (None = no namespace)."""
        self.expect("<")
        raw_name = self.read_name()
        attrs_raw: list[tuple[str, str]] = []
        while True:
            before = self.pos
            self.skip_ws()
            if self.peek() in ("/", ">"):
                break
            if self.pos == before:
                raise self.fail("expected whitespace before attribute")
            aname = self.read_name()
            self.skip_ws()
            self.expect("=")
            self.skip_ws()
            attrs_raw.append((aname, self._read_attr_value()))

        # namespace scope for this element
        scope = ns_scope
        decls: dict[str | None, str | None] = {}
        for aname, avalue in attrs_raw:
            if aname == "xmlns":
                decls[None] = avalue or None
            elif aname.startswith("xmlns:"):
                prefix = aname[6:]
                if not is_ncname(prefix):
                    raise self.fail(f"bad namespace prefix {prefix!r}")
                if not avalue:
                    raise self.fail("prefixed namespace cannot be undeclared")
                decls[prefix] = avalue
        if decls:
            scope = {**ns_scope, **decls}

        name = self._expand(raw_name, scope, is_attr=False)
        el = Element(name)
        seen_attrs: set[QName] = set()
        for aname, avalue in attrs_raw:
            if aname == "xmlns" or aname.startswith("xmlns:"):
                continue
            q = self._expand(aname, scope, is_attr=True)
            if q in seen_attrs:
                raise self.fail(f"duplicate attribute {aname!r}")
            seen_attrs.add(q)
            el.attrs[q] = avalue

        if self.peek() == "/":
            self.expect("/>")
            return el
        self.expect(">")
        self._parse_content(el, scope)
        self.expect("</")
        closing = self.read_name()
        if closing != raw_name:
            raise self.fail(
                f"mismatched end tag: expected </{raw_name}>, got </{closing}>"
            )
        self.skip_ws()
        self.expect(">")
        return el

    def _parse_content(
        self, el: Element, scope: dict[str | None, str | None]
    ) -> None:
        buf: list[str] = []

        def flush() -> None:
            if buf:
                el.children.append("".join(buf))
                buf.clear()

        while True:
            if self.pos >= self.n:
                raise self.fail(f"unterminated element <{el.name.local}>")
            ch = self.text[self.pos]
            if ch == "<":
                if self.startswith("</"):
                    flush()
                    return
                if self.startswith("<!--"):
                    self._skip_comment()
                elif self.startswith("<![CDATA["):
                    self.expect("<![CDATA[")
                    buf.append(self.read_until("]]>", "CDATA section"))
                elif self.startswith("<?"):
                    self._skip_pi()
                else:
                    flush()
                    el.children.append(self.parse_element(scope))
            elif ch == "&":
                buf.append(self._read_reference())
            else:
                start = self.pos
                while self.pos < self.n and self.text[self.pos] not in "<&":
                    self.pos += 1
                buf.append(self.text[start : self.pos])

    # -- tokens ----------------------------------------------------------------
    def _read_attr_value(self) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.fail("attribute value must be quoted")
        self.pos += 1
        buf: list[str] = []
        while True:
            if self.pos >= self.n:
                raise self.fail("unterminated attribute value")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                return "".join(buf)
            if ch == "<":
                raise self.fail("'<' not allowed in attribute value")
            if ch == "&":
                buf.append(self._read_reference())
            else:
                buf.append(ch)
                self.pos += 1

    def _read_reference(self) -> str:
        self.expect("&")
        body = self.read_until(";", "entity reference")
        if body.startswith("#x") or body.startswith("#X"):
            try:
                code = int(body[2:], 16)
            except ValueError:
                raise self.fail(f"bad character reference &{body};") from None
        elif body.startswith("#"):
            try:
                code = int(body[1:])
            except ValueError:
                raise self.fail(f"bad character reference &{body};") from None
        else:
            if body not in _ENTITIES:
                raise self.fail(f"unknown entity &{body};")
            return _ENTITIES[body]
        if not (0 < code <= 0x10FFFF) or 0xD800 <= code <= 0xDFFF:
            raise self.fail(f"character reference &{body}; out of range")
        return chr(code)

    def _expand(
        self, raw: str, scope: dict[str | None, str | None], is_attr: bool
    ) -> QName:
        try:
            prefix, local = split_prefixed(raw)
        except Exception:
            raise self.fail(f"malformed name {raw!r}") from None
        if not is_ncname(local) or (prefix is not None and not is_ncname(prefix)):
            raise self.fail(f"invalid name {raw!r}")
        if prefix is None:
            # Unprefixed attributes are in no namespace (XML NS rec);
            # unprefixed elements take the default namespace.
            if is_attr:
                return QName(None, local)
            return QName(scope.get(None), local)
        if prefix == "xml":
            from repro.xmlmini.names import XML_NS

            return QName(XML_NS, local)
        if prefix == "xmlns":
            return QName(XMLNS_NS, local)
        ns = scope.get(prefix)
        if ns is None:
            raise self.fail(f"undeclared namespace prefix {prefix!r}")
        return QName(ns, local)

"""Serializer for the mini XML infoset.

Namespace handling: prefixes are assigned document-globally in first-use
order (honouring preferred prefixes such as ``soapenv`` or ``wsa``), and an
``xmlns:p`` declaration is emitted on any element that uses a prefix not
already declared by an ancestor.  Output is deterministic — attributes are
written in insertion order — so byte-level golden tests are stable.
"""

from __future__ import annotations

from repro.errors import XmlError
from repro.xmlmini.names import QName, XML_NS, XMLNS_NS
from repro.xmlmini.node import Element

#: Conventional prefixes used when these namespaces appear in a document.
PREFERRED_PREFIXES: dict[str, str] = {
    "http://schemas.xmlsoap.org/soap/envelope/": "soapenv",
    "http://www.w3.org/2003/05/soap-envelope": "soapenv",
    "http://schemas.xmlsoap.org/ws/2004/08/addressing": "wsa",
    "http://www.w3.org/2005/08/addressing": "wsa",
    XML_NS: "xml",
}


def escape_text(text: str) -> str:
    """Escape character data (``&``, ``<``, ``>``)."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text: str) -> str:
    """Escape attribute values (quotes, angle brackets, newlines/tabs)."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
        .replace("\r", "&#13;")
    )


class _PrefixAllocator:
    """Document-global namespace→prefix assignment."""

    def __init__(self) -> None:
        self.by_ns: dict[str, str] = {XML_NS: "xml"}
        self.used: set[str] = {"xml", "xmlns"}
        self._auto = 0

    def prefix_for(self, ns: str) -> str:
        if ns in self.by_ns:
            return self.by_ns[ns]
        want = PREFERRED_PREFIXES.get(ns)
        if want is None or want in self.used:
            while True:
                candidate = f"n{self._auto}"
                self._auto += 1
                if candidate not in self.used:
                    want = candidate
                    break
        self.by_ns[ns] = want
        self.used.add(want)
        return want


def _collect_namespaces(root: Element, alloc: _PrefixAllocator) -> list[str]:
    """Pre-walk the tree allocating prefixes in first-use document order.

    Returns the namespaces in allocation order so they can all be declared
    on the root element (the compact style typical of SOAP toolkits).
    """
    ordered: list[str] = []
    stack = [root]
    while stack:
        el = stack.pop()
        names = [el.name, *el.attrs.keys()]
        for q in names:
            if q.ns and q.ns not in (XML_NS, XMLNS_NS):
                if q.ns not in alloc.by_ns:
                    ordered.append(q.ns)
                alloc.prefix_for(q.ns)
        stack.extend(
            c for c in reversed(el.children) if isinstance(c, Element)
        )
    return ordered


def serialize(root: Element, xml_decl: bool = False) -> str:
    """Serialize an element tree to a string.

    Elements without a namespace are written unprefixed; the default
    namespace declaration is never used, so unnamespaced and namespaced
    elements can mix freely (SOAP bodies very often contain both).  Every
    namespace used anywhere in the tree is declared once, on the root.
    """
    alloc = _PrefixAllocator()
    hoisted = _collect_namespaces(root, alloc)
    parts: list[str] = []
    if xml_decl:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>')
    _write_element(
        root,
        alloc,
        frozenset({XML_NS}),
        parts,
        hoist=hoisted,
    )
    return "".join(parts)


def write_document(root: Element) -> bytes:
    """Serialize with the XML declaration, UTF-8 encoded (wire form)."""
    return serialize(root, xml_decl=True).encode("utf-8")


def _write_element(
    el: Element,
    alloc: _PrefixAllocator,
    in_scope: frozenset[str],
    out: list[str],
    hoist: list[str] | None = None,
) -> None:
    """Write one element; ``in_scope`` is the set of namespace URIs whose
    prefix declarations are visible from ancestors.  ``hoist`` (root call
    only) lists extra namespaces to declare here even if unused locally."""
    new_decls: list[tuple[str, str]] = []
    scope = set(in_scope)
    if hoist:
        for ns in hoist:
            if ns not in scope:
                scope.add(ns)
                new_decls.append((alloc.prefix_for(ns), ns))

    def resolve(ns: str) -> str:
        prefix = alloc.prefix_for(ns)
        if ns not in scope:
            scope.add(ns)
            if ns != XML_NS:
                new_decls.append((prefix, ns))
        return prefix

    if el.name.ns == XMLNS_NS:
        raise XmlError("xmlns pseudo-namespace cannot name an element")
    opening = (
        el.name.local
        if el.name.ns is None
        else f"{resolve(el.name.ns)}:{el.name.local}"
    )

    attr_parts: list[str] = []
    for aname, avalue in el.attrs.items():
        if aname.ns == XMLNS_NS:
            continue  # namespace decls are computed, never copied through
        if aname.ns is None:
            attr_parts.append(f'{aname.local}="{escape_attr(avalue)}"')
        else:
            attr_parts.append(
                f'{resolve(aname.ns)}:{aname.local}="{escape_attr(avalue)}"'
            )

    out.append(f"<{opening}")
    for prefix, ns in new_decls:
        out.append(f' xmlns:{prefix}="{escape_attr(ns)}"')
    for chunk in attr_parts:
        out.append(" " + chunk)

    if not el.children:
        out.append("/>")
        return
    out.append(">")
    child_scope = frozenset(scope)
    for child in el.children:
        if isinstance(child, str):
            out.append(escape_text(child))
        else:
            _write_element(child, alloc, child_scope, out)
    out.append(f"</{opening}>")

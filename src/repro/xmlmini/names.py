"""Qualified names and namespace utilities for the mini XML infoset."""

from __future__ import annotations

from repro.errors import XmlError

XMLNS_NS = "http://www.w3.org/2000/xmlns/"
XML_NS = "http://www.w3.org/XML/1998/namespace"

_NAME_START = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_NAME_CHARS = _NAME_START + "0123456789.-"


def is_ncname(name: str) -> bool:
    """True when ``name`` is a valid no-colon XML name (ASCII subset).

    SOAP element names are all ASCII; we accept non-ASCII letters too since
    Python's ``str.isalpha`` covers the XML letter classes closely enough
    for the documents this library produces and consumes.
    """
    if not name:
        return False
    first = name[0]
    if not (first in _NAME_START or (not first.isascii() and first.isalpha())):
        return False
    for ch in name[1:]:
        if ch in _NAME_CHARS:
            continue
        if not ch.isascii() and (ch.isalpha() or ch.isdigit()):
            continue
        return False
    return True


def split_prefixed(name: str) -> tuple[str | None, str]:
    """Split ``prefix:local`` into (prefix, local); prefix None if absent."""
    prefix, sep, local = name.partition(":")
    if not sep:
        return None, name
    if not prefix or not local or ":" in local:
        raise XmlError(f"malformed qualified name {name!r}")
    return prefix, local


class QName:
    """An expanded XML name: (namespace URI or None, local part).

    Hashable and comparable so it can key header-lookup dicts.
    """

    __slots__ = ("ns", "local")

    def __init__(self, ns: str | None, local: str) -> None:
        if not is_ncname(local):
            raise XmlError(f"invalid local name {local!r}")
        if ns is not None and not ns:
            raise XmlError("namespace URI must be None or non-empty")
        self.ns = ns
        self.local = local

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QName):
            return self.ns == other.ns and self.local == other.local
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.ns, self.local))

    def __repr__(self) -> str:
        return f"QName({self.ns!r}, {self.local!r})"

    def clark(self) -> str:
        """Clark notation ``{ns}local`` (or bare local when unnamespaced)."""
        return f"{{{self.ns}}}{self.local}" if self.ns else self.local

    @classmethod
    def from_clark(cls, text: str) -> "QName":
        """Parse Clark notation produced by :meth:`clark`."""
        if text.startswith("{"):
            ns, sep, local = text[1:].partition("}")
            if not sep:
                raise XmlError(f"malformed Clark name {text!r}")
            return cls(ns or None, local)
        return cls(None, text)

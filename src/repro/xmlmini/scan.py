"""Byte-offset envelope scanner for the zero-copy SOAP fast path.

:func:`scan_envelope` tokenizes a serialized SOAP document only as far as
it must: the prolog, the root start tag, the Header element (parsed into
real :class:`~repro.xmlmini.Element` trees via
:func:`~repro.xmlmini.parser.parse_fragment`), and the *span* of the Body.
The Body's bytes are never decoded, parsed, or copied — the scan records
their offsets so a rewritten document can later be produced by splicing
new header bytes between the untouched preamble and the untouched Body
slice (:meth:`EnvelopeScan.body_view` exposes the slice as a zero-copy
``memoryview``).

Every XML markup delimiter is ASCII, so the scan runs directly over the
UTF-8 bytes: multi-byte sequences can never alias ``<``, ``>``, quotes or
whitespace.  Between markup the scanner hops with ``bytes.find`` rather
than walking characters, so a large text payload costs one ``find`` call.

The scanner is deliberately conservative.  Anything it cannot prove safe
to splice — DOCTYPE, non-UTF-8 encodings, entity references in namespace
declarations, structural surprises, trailing content after the root —
raises :class:`~repro.errors.FastPathUnsupported`, and the caller falls
back to the full DOM parse, which is the arbiter of validity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NoReturn

from repro.errors import FastPathUnsupported, XmlError
from repro.xmlmini.names import QName, XML_NS
from repro.xmlmini.node import Element
from repro.xmlmini.parser import parse_fragment

_WS = b" \t\r\n"
_NAME_END = b" \t\r\n=/><\"'"
_QUOTES = (34, 39)  # '"' and "'"


@dataclass
class _StartTag:
    """One scanned start tag: raw name bytes, xmlns declarations only."""

    raw_name: bytes
    decls: dict[str | None, str | None]
    self_closing: bool
    end: int  # offset just past the closing '>'


@dataclass
class EnvelopeScan:
    """Result of scanning one serialized envelope; offsets index ``data``."""

    data: bytes
    root_name: QName
    #: namespace bindings in force inside the root element
    scope: dict[str | None, str | None]
    header: Element | None
    #: where rewritten header bytes are inserted
    splice_start: int
    #: first preserved byte after the original Header (== splice_start
    #: when the document had no Header)
    tail_start: int
    body_start: int
    body_end: int
    #: number of direct element children of Body
    body_children: int
    body_first_child: QName | None

    @property
    def body_view(self) -> memoryview:
        """The Body element's bytes as a zero-copy view of ``data``."""
        return memoryview(self.data)[self.body_start : self.body_end]


def _bail(reason: str, detail: str = "") -> NoReturn:
    raise FastPathUnsupported(reason, detail)


def _declared_encoding(decl: bytes) -> bytes | None:
    """Extract the encoding pseudo-attribute value from an XML declaration."""
    idx = decl.find(b"encoding")
    if idx < 0:
        return None
    i = idx + 8
    n = len(decl)
    while i < n and decl[i] in _WS:
        i += 1
    if i >= n or decl[i] != 61:  # '='
        return None
    i += 1
    while i < n and decl[i] in _WS:
        i += 1
    if i >= n or decl[i] not in _QUOTES:
        return None
    end = decl.find(decl[i : i + 1], i + 1)
    if end < 0:
        return None
    return decl[i + 1 : end].lower()


class _Scan:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.n = len(data)
        self.pos = 0

    # -- low-level cursor ---------------------------------------------------
    def startswith(self, token: bytes) -> bool:
        return self.data.startswith(token, self.pos)

    def skip_ws(self) -> None:
        d, n = self.data, self.n
        i = self.pos
        while i < n and d[i] in _WS:
            i += 1
        self.pos = i

    def skip_past(self, token: bytes, what: str) -> None:
        idx = self.data.find(token, self.pos)
        if idx < 0:
            _bail("malformed", f"unterminated {what}")
        self.pos = idx + len(token)

    def skip_misc(self) -> None:
        """Skip whitespace, comments, and processing instructions.

        Stops at anything else; ``<!`` that is neither a comment nor CDATA
        is a markup declaration (DOCTYPE) and bails.
        """
        while True:
            self.skip_ws()
            if self.startswith(b"<!--"):
                self.pos += 4
                self.skip_past(b"-->", "comment")
            elif self.startswith(b"<!["):
                return
            elif self.startswith(b"<!"):
                _bail("doctype", "markup declaration")
            elif self.startswith(b"<?"):
                self.pos += 2
                self.skip_past(b"?>", "processing instruction")
            else:
                return

    def skip_prolog(self) -> None:
        if self.startswith(b"\xef\xbb\xbf"):
            self.pos += 3
        if self.startswith(b"<?xml") and (
            self.pos + 5 < self.n and self.data[self.pos + 5] in b" \t\r\n?"
        ):
            end = self.data.find(b"?>", self.pos)
            if end < 0:
                _bail("malformed", "unterminated XML declaration")
            enc = _declared_encoding(self.data[self.pos : end])
            if enc is not None and enc not in (b"utf-8", b"utf8"):
                _bail("encoding", f"declared encoding {enc!r}")
            self.pos = end + 2
        self.skip_misc()

    # -- tags ---------------------------------------------------------------
    def scan_start_tag(self) -> _StartTag:
        """Scan the start tag at ``pos`` (which must point at ``<``).

        Collects only xmlns declarations — ordinary attributes are skipped
        over (the fragment parser re-reads them where they matter).
        Advances ``pos`` past the closing ``>``.
        """
        d, n = self.data, self.n
        i = self.pos + 1  # past '<'
        start = i
        while i < n and d[i] not in _NAME_END:
            i += 1
        raw_name = d[start:i]
        if not raw_name:
            _bail("malformed", "expected an element name")
        decls: dict[str | None, str | None] = {}
        self_closing = False
        while True:
            while i < n and d[i] in _WS:
                i += 1
            if i >= n:
                _bail("malformed", "unterminated start tag")
            c = d[i]
            if c == 62:  # '>'
                i += 1
                break
            if c == 47:  # '/'
                if i + 1 >= n or d[i + 1] != 62:
                    _bail("malformed", "stray '/' in start tag")
                self_closing = True
                i += 2
                break
            astart = i
            while i < n and d[i] not in _NAME_END:
                i += 1
            aname = d[astart:i]
            if not aname:
                _bail("malformed", "expected an attribute name")
            while i < n and d[i] in _WS:
                i += 1
            if i >= n or d[i] != 61:  # '='
                _bail("malformed", "attribute missing '='")
            i += 1
            while i < n and d[i] in _WS:
                i += 1
            if i >= n or d[i] not in _QUOTES:
                _bail("malformed", "attribute value must be quoted")
            vend = d.find(d[i : i + 1], i + 1)
            if vend < 0:
                _bail("malformed", "unterminated attribute value")
            value = d[i + 1 : vend]
            i = vend + 1
            if 60 in value:  # '<'
                _bail("malformed", "'<' in attribute value")
            if aname == b"xmlns" or aname.startswith(b"xmlns:"):
                if 38 in value:  # '&': entity refs need the full parser
                    _bail("unsupported", "entity reference in namespace declaration")
                try:
                    uri = value.decode("utf-8")
                except UnicodeDecodeError:
                    _bail("encoding", "namespace declaration is not UTF-8")
                if aname == b"xmlns":
                    decls[None] = uri or None
                else:
                    try:
                        prefix = aname[6:].decode("utf-8")
                    except UnicodeDecodeError:
                        _bail("encoding", "namespace prefix is not UTF-8")
                    if not prefix or not uri:
                        _bail("malformed", "bad namespace declaration")
                    decls[prefix] = uri
        self.pos = i
        return _StartTag(raw_name, decls, self_closing, i)

    def expand(self, raw: bytes, scope: dict[str | None, str | None]) -> QName:
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            _bail("encoding", "name is not UTF-8")
        prefix, sep, local = text.partition(":")
        if not sep:
            ns = scope.get(None)
            local = text
        elif prefix == "xml":
            ns = XML_NS
        else:
            if not prefix or not local or ":" in local:
                _bail("malformed", f"malformed name {text!r}")
            if prefix not in scope:
                _bail("malformed", f"undeclared namespace prefix {prefix!r}")
            ns = scope[prefix]
        try:
            return QName(ns, local)
        except XmlError:
            _bail("malformed", f"invalid name {text!r}")

    def tag_end(self, start: int) -> tuple[int, bool]:
        """``start`` points at ``<`` of a start tag; return the offset just
        past its ``>`` (honouring quoted attribute values) and whether the
        tag is self-closing."""
        d, n = self.data, self.n
        i = start + 1
        quote = 0
        while i < n:
            c = d[i]
            if quote:
                if c == quote:
                    quote = 0
            elif c in _QUOTES:
                quote = c
            elif c == 62:  # '>'
                return i + 1, d[i - 1] == 47
            elif c == 60:  # '<'
                _bail("malformed", "'<' inside a tag")
            i += 1
        _bail("malformed", "unterminated tag")

    def element_span(self, start: int) -> tuple[int, int, int | None]:
        """Depth-scan from the ``<`` of a start tag to just past its matching
        end tag, hopping between markup delimiters with ``bytes.find``.

        Returns ``(end_offset, direct_children, first_child_offset)``.  End
        tag *names* are not matched against start tags — balance alone
        decides — so a misnested document may scan; the fragment/slow-path
        parser still rejects it wherever the content is actually parsed.
        """
        d, n = self.data, self.n
        pos = start
        depth = 0
        children = 0
        first_child: int | None = None
        while True:
            lt = d.find(b"<", pos)
            if lt < 0:
                _bail("malformed", "unterminated element")
            nxt = d[lt + 1] if lt + 1 < n else 0
            if nxt == 33:  # '!'
                if d.startswith(b"<!--", lt):
                    end = d.find(b"-->", lt + 4)
                    if end < 0:
                        _bail("malformed", "unterminated comment")
                    pos = end + 3
                elif d.startswith(b"<![CDATA[", lt):
                    end = d.find(b"]]>", lt + 9)
                    if end < 0:
                        _bail("malformed", "unterminated CDATA section")
                    pos = end + 3
                else:
                    _bail("doctype", "markup declaration inside element")
                continue
            if nxt == 63:  # '?'
                end = d.find(b"?>", lt + 2)
                if end < 0:
                    _bail("malformed", "unterminated processing instruction")
                pos = end + 2
                continue
            if nxt == 47:  # '/': an end tag
                end = d.find(b">", lt + 2)
                if end < 0:
                    _bail("malformed", "unterminated end tag")
                depth -= 1
                pos = end + 1
                if depth == 0:
                    return pos, children, first_child
                if depth < 0:
                    _bail("malformed", "unbalanced end tag")
                continue
            end, self_closing = self.tag_end(lt)
            if depth == 1:
                children += 1
                if first_child is None:
                    first_child = lt
            if not self_closing:
                depth += 1
            elif depth == 0:
                # the spanned element itself was self-closing
                return end, 0, None
            pos = end


def scan_envelope(data: bytes | bytearray | memoryview) -> EnvelopeScan:
    """Scan a serialized SOAP envelope, parsing only its Header.

    Raises :class:`~repro.errors.FastPathUnsupported` whenever the document
    cannot be *proven* safe for byte-splice rewriting; that is not a verdict
    of invalidity — the caller falls back to the full parse, which decides.
    """
    if not isinstance(data, bytes):
        data = bytes(data)
    s = _Scan(data)
    s.skip_prolog()
    if not s.startswith(b"<"):
        _bail("malformed", "expected the document element")
    root = s.scan_start_tag()
    if root.self_closing:
        _bail("structure", "document element is empty")
    scope: dict[str | None, str | None] = {None: None, "xml": XML_NS}
    scope.update(root.decls)
    root_name = s.expand(root.raw_name, scope)
    if root_name.local != "Envelope":
        _bail("not_envelope", f"document element is {root_name.clark()}")

    header_el: Element | None = None
    splice_start = -1
    tail_start = -1
    body_children = 0
    body_first_child: QName | None = None

    while True:
        s.skip_misc()
        if s.pos >= s.n:
            _bail("malformed", "unterminated envelope")
        if s.startswith(b"<!["):
            _bail("structure", "CDATA section between envelope children")
        if s.startswith(b"</"):
            _bail("structure", "envelope has no Body")
        if not s.startswith(b"<"):
            _bail("structure", "text content between envelope children")
        child_off = s.pos
        tag = s.scan_start_tag()
        child_scope = scope
        if tag.decls:
            child_scope = {**scope, **tag.decls}
        child_name = s.expand(tag.raw_name, child_scope)
        if child_name.local == "Header" and child_name.ns == root_name.ns:
            if header_el is not None:
                _bail("structure", "duplicate Header")
            if tag.self_closing:
                span_end = tag.end
            else:
                span_end, _children, _first = s.element_span(child_off)
            try:
                text = data[child_off:span_end].decode("utf-8")
            except UnicodeDecodeError:
                _bail("encoding", "Header is not valid UTF-8")
            try:
                # the outer scope, not child_scope: the fragment includes
                # the Header start tag, which re-declares its own xmlns
                header_el = parse_fragment(text, scope)
            except XmlError as exc:
                _bail("malformed", f"Header did not parse: {exc}")
            splice_start = child_off
            tail_start = span_end
            s.pos = span_end
            continue
        if child_name.local == "Body" and child_name.ns == root_name.ns:
            body_start = child_off
            if tag.self_closing:
                body_end = tag.end
            else:
                body_end, body_children, first_off = s.element_span(child_off)
                if first_off is not None:
                    saved = s.pos
                    s.pos = first_off
                    ftag = s.scan_start_tag()
                    fscope = child_scope
                    if ftag.decls:
                        fscope = {**child_scope, **ftag.decls}
                    body_first_child = s.expand(ftag.raw_name, fscope)
                    s.pos = saved
            s.pos = body_end
            break
        exc = FastPathUnsupported(
            "structure", f"unexpected envelope child {child_name.clark()}"
        )
        exc.child_name = child_name  # lets the SOAP layer spot 1.1/1.2 mixes
        raise exc

    # the root end tag, then at most trailing comments/PIs/whitespace
    s.skip_misc()
    if not s.startswith(b"</"):
        _bail("trailing_content", "content after Body")
    name_start = s.pos + 2
    name_end = name_start
    while name_end < s.n and data[name_end] not in b" \t\r\n>":
        name_end += 1
    if data[name_start:name_end] != root.raw_name:
        _bail("structure", "mismatched document end tag")
    s.pos = name_end
    s.skip_ws()
    if not s.startswith(b">"):
        _bail("malformed", "malformed document end tag")
    s.pos += 1
    s.skip_misc()
    if s.pos != s.n:
        _bail("trailing_content", "content after the document element")

    if splice_start < 0:
        splice_start = tail_start = body_start
    return EnvelopeScan(
        data=data,
        root_name=root_name,
        scope=scope,
        header=header_el,
        splice_start=splice_start,
        tail_start=tail_start,
        body_start=body_start,
        body_end=body_end,
        body_children=body_children,
        body_first_child=body_first_child,
    )

"""Minimal XML infoset: qualified names, element trees, writer, parser.

SOAP and WS-Addressing only need a well-formed subset of XML 1.0 with
namespaces: elements, attributes, character data, comments, and processing
instructions (skipped).  We implement that subset from scratch — parser,
namespace resolution, and canonical-ish writer — so the SOAP stack has no
dependency beyond the standard library and its behaviour under malformed
input is fully specified by our own tests.

Public entry points:

>>> from repro.xmlmini import Element, QName, parse, serialize
>>> e = parse('<a xmlns="urn:x"><b>hi</b></a>')
>>> e.name
QName('urn:x', 'a')
>>> serialize(Element(QName(None, 'r'), text='ok'))
'<r>ok</r>'
"""

from repro.xmlmini.names import QName, split_prefixed
from repro.xmlmini.node import Element
from repro.xmlmini.writer import serialize, write_document
from repro.xmlmini.parser import parse, parse_fragment
from repro.xmlmini.scan import EnvelopeScan, scan_envelope

__all__ = [
    "QName",
    "split_prefixed",
    "Element",
    "serialize",
    "write_document",
    "parse",
    "parse_fragment",
    "EnvelopeScan",
    "scan_envelope",
]

"""HTTP status reason phrases (the subset this stack emits or relays)."""

from __future__ import annotations

_REASONS = {
    100: "Continue",
    200: "OK",
    202: "Accepted",
    204: "No Content",
    301: "Moved Permanently",
    302: "Found",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
    505: "HTTP Version Not Supported",
}


def reason_phrase(status: int) -> str:
    """Reason phrase for a status code; generic class phrase if unknown."""
    if status in _REASONS:
        return _REASONS[status]
    return {1: "Informational", 2: "Success", 3: "Redirection",
            4: "Client Error", 5: "Server Error"}.get(status // 100, "Unknown")

"""HTTP message model: case-insensitive headers, requests, responses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import HttpError


class Headers:
    """Ordered, case-insensitive multi-map of HTTP header fields.

    Field names are stored with the casing of first insertion; lookups are
    case-insensitive.  Multiple fields with the same name are preserved in
    order (needed for e.g. Via chains a forwarding proxy appends to).
    """

    __slots__ = ("_items",)

    def __init__(self, items: list[tuple[str, str]] | None = None) -> None:
        self._items: list[tuple[str, str]] = []
        for name, value in items or []:
            self.add(name, value)

    @staticmethod
    def _check(name: str, value: str) -> None:
        if not name or any(c in name for c in " \t\r\n:"):
            raise HttpError(f"invalid header name {name!r}")
        if "\r" in value or "\n" in value:
            raise HttpError("header value may not contain CR/LF")

    def add(self, name: str, value: str) -> None:
        self._check(name, value)
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all fields called ``name`` with a single one."""
        self._check(name, value)
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._items.append((name, value))

    def get(self, name: str, default: str | None = None) -> str | None:
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def remove(self, name: str) -> None:
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        return Headers(list(self._items))

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


def _token_in_list(header_value: str, token: str) -> bool:
    return token in [part.strip().lower() for part in header_value.split(",")]


@dataclass
class HttpRequest:
    """An HTTP request with a fully-buffered body."""

    method: str
    target: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def __post_init__(self) -> None:
        if not self.method or not self.method.isupper():
            raise HttpError(f"invalid method {self.method!r}")
        if not self.target or " " in self.target:
            raise HttpError(f"invalid request target {self.target!r}")

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("Connection")
        if self.version == "HTTP/1.0":
            return conn is not None and _token_in_list(conn, "keep-alive")
        return conn is None or not _token_in_list(conn, "close")

    def content_type(self) -> str | None:
        return self.headers.get("Content-Type")


@dataclass
class HttpResponse:
    """An HTTP response with a fully-buffered body."""

    status: int
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"
    reason: str | None = None

    def __post_init__(self) -> None:
        if not 100 <= self.status <= 599:
            raise HttpError(f"invalid status code {self.status}")

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("Connection")
        if self.version == "HTTP/1.0":
            return conn is not None and _token_in_list(conn, "keep-alive")
        return conn is None or not _token_in_list(conn, "close")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

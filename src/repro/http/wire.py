"""Incremental (sans-io) HTTP/1.1 parser and serializer.

The parsers are push-style state machines: feed bytes with
:meth:`~MessageParser.feed`, poll :meth:`~MessageParser.next_message`.
They never touch sockets, so the threaded runtime and the discrete-event
simulator share them byte-for-byte.  Supported framing: Content-Length,
chunked transfer coding, and (responses only) read-until-close.

Limits: header block ≤ :data:`MAX_HEADER_BYTES`, body ≤ ``max_body``
(default 16 MiB); exceeding either raises :class:`HttpParseError` — a
forwarding intermediary must bound memory per connection.
"""

from __future__ import annotations

from repro.errors import HttpParseError
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.status import reason_phrase

MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY = 16 * 1024 * 1024

_CRLF = b"\r\n"


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _serialize_headers(headers: Headers, out: list[bytes]) -> None:
    for name, value in headers:
        out.append(f"{name}: {value}\r\n".encode("latin-1"))
    out.append(_CRLF)


def serialize_request(req: HttpRequest) -> bytes:
    """Wire bytes for a request; adds Content-Length if no framing given."""
    headers = req.headers.copy()
    if req.body and "Content-Length" not in headers and "Transfer-Encoding" not in headers:
        headers.set("Content-Length", str(len(req.body)))
    elif not req.body and req.method in ("POST", "PUT") and "Content-Length" not in headers:
        headers.set("Content-Length", "0")
    out = [f"{req.method} {req.target} {req.version}\r\n".encode("latin-1")]
    _serialize_headers(headers, out)
    out.append(req.body)
    return b"".join(out)


def serialize_request_burst(requests) -> bytes:
    """Wire bytes for several requests back-to-back (HTTP/1.1 pipelining).

    The burst is what a WsThread writes in one send on a leased
    connection: N serialized requests with no interleaved reads.  The
    responses come back in order; :class:`ResponseParser` already handles
    several messages in one buffer, so no new parse mode is needed.
    """
    return b"".join(serialize_request(r) for r in requests)


def serialize_response(resp: HttpResponse) -> bytes:
    """Wire bytes for a response; always emits explicit Content-Length."""
    headers = resp.headers.copy()
    if "Content-Length" not in headers and "Transfer-Encoding" not in headers:
        headers.set("Content-Length", str(len(resp.body)))
    reason = resp.reason if resp.reason is not None else reason_phrase(resp.status)
    out = [f"{resp.version} {resp.status} {reason}\r\n".encode("latin-1")]
    _serialize_headers(headers, out)
    out.append(resp.body)
    return b"".join(out)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

class MessageParser:
    """Shared incremental parser machinery for requests and responses."""

    #: subclass hook: True for responses (enables read-until-close framing)
    is_response = False

    def __init__(self, max_body: int = DEFAULT_MAX_BODY) -> None:
        # Receive buffer with a consumed-bytes offset: consuming a line or
        # a body slice advances _pos instead of deleting the buffer head
        # (`del buf[:n]` shifts the whole tail — O(n) per line turns a
        # large pipelined burst into quadratic work).  The consumed prefix
        # is trimmed off at amortized O(1) in _compact().
        self._buf = bytearray()
        self._pos = 0
        self._max_body = max_body
        self._state = "start-line"
        self._eof = False
        # per-message scratch
        self._start: tuple[str, str, str] | None = None
        self._headers: Headers | None = None
        self._body = bytearray()
        self._remaining = 0
        self._chunk_trailer = False
        self._ready: list[object] = []
        #: set per-message by the server loop for HEAD / 204 handling
        self.expect_no_body = False

    # -- public API -----------------------------------------------------
    def feed(self, data: bytes) -> None:
        """Feed wire bytes; raises HttpParseError on protocol violations."""
        if self._eof:
            raise HttpParseError("feed after EOF")
        self._buf.extend(data)
        self._advance()
        self._compact()

    def feed_eof(self) -> None:
        """Signal connection close; may complete a read-until-close body."""
        self._eof = True
        self._advance()
        if self._state == "body-until-close":
            self._finish_message()
        elif self._state != "start-line" or self._pos < len(self._buf):
            raise HttpParseError("connection closed mid-message")

    def next_message(self):
        """Pop one completed message, or None."""
        if self._ready:
            return self._ready.pop(0)
        return None

    @property
    def idle(self) -> bool:
        """True when no partial message is buffered (safe keep-alive point)."""
        return (
            self._state == "start-line"
            and self._pos >= len(self._buf)
            and not self._ready
        )

    def _compact(self) -> None:
        """Trim the consumed prefix once it dominates the buffer.

        Deferred until the consumed span is both large and the majority of
        the buffer, so the O(n) shift happens at most once per O(n)
        consumed bytes — amortized constant time."""
        if self._pos > 4096 and self._pos * 2 > len(self._buf):
            del self._buf[: self._pos]
            self._pos = 0

    # -- state machine -----------------------------------------------------
    def _advance(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._state == "start-line":
                progress = self._parse_start_line()
            elif self._state == "headers":
                progress = self._parse_headers()
            elif self._state == "body-length":
                progress = self._parse_body_length()
            elif self._state == "chunk-size":
                progress = self._parse_chunk_size()
            elif self._state == "chunk-data":
                progress = self._parse_chunk_data()
            elif self._state == "body-until-close":
                progress = self._parse_until_close()

    def _take_line(self) -> bytes | None:
        idx = self._buf.find(_CRLF, self._pos)
        if idx < 0:
            if len(self._buf) - self._pos > MAX_HEADER_BYTES:
                raise HttpParseError("header line exceeds limit")
            return None
        line = bytes(self._buf[self._pos : idx])
        self._pos = idx + 2
        return line

    def _parse_start_line(self) -> bool:
        line = self._take_line()
        if line is None:
            return False
        if not line:
            return True  # tolerate leading blank line (robustness, RFC 7230 3.5)
        try:
            text = line.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise HttpParseError("undecodable start line") from None
        parts = text.split(" ", 2)
        if len(parts) < 3:
            raise HttpParseError(f"malformed start line {text!r}")
        self._start = (parts[0], parts[1], parts[2])
        self._headers = Headers()
        self._body = bytearray()
        self._state = "headers"
        return True

    def _parse_headers(self) -> bool:
        assert self._headers is not None
        header_bytes = 0
        while True:
            line = self._take_line()
            if line is None:
                return False
            if not line:
                self._begin_body()
                return True
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise HttpParseError("header block exceeds limit")
            if line[0:1] in (b" ", b"\t"):
                raise HttpParseError("obsolete header folding not supported")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep or not name or name != name.strip():
                raise HttpParseError(f"malformed header line {line!r}")
            self._headers.add(name, value.strip())

    def _begin_body(self) -> None:
        assert self._headers is not None
        te = self._headers.get("Transfer-Encoding")
        cl = self._headers.get("Content-Length")
        if self.expect_no_body:
            self._finish_message()
            return
        if te is not None:
            if te.strip().lower() != "chunked":
                raise HttpParseError(f"unsupported Transfer-Encoding {te!r}")
            if cl is not None:
                raise HttpParseError("both Content-Length and Transfer-Encoding")
            self._state = "chunk-size"
            return
        if cl is not None:
            values = self._headers.get_all("Content-Length")
            if len(set(values)) != 1:
                raise HttpParseError("conflicting Content-Length values")
            try:
                self._remaining = int(cl)
            except ValueError:
                raise HttpParseError(f"bad Content-Length {cl!r}") from None
            if self._remaining < 0:
                raise HttpParseError("negative Content-Length")
            if self._remaining > self._max_body:
                raise HttpParseError("declared body exceeds limit")
            if self._remaining == 0:
                self._finish_message()
            else:
                self._state = "body-length"
            return
        if self.is_response:
            try:
                status = int(self._start[1]) if self._start else 0
            except ValueError:
                raise HttpParseError(
                    f"bad status code {self._start[1]!r}"
                ) from None
            if status in (204, 304) or 100 <= status < 200:
                self._finish_message()
            else:
                self._state = "body-until-close"
            return
        # request without framing info has no body
        self._finish_message()

    def _parse_body_length(self) -> bool:
        available = len(self._buf) - self._pos
        if available <= 0:
            return False
        take = min(self._remaining, available)
        self._body.extend(self._buf[self._pos : self._pos + take])
        self._pos += take
        self._remaining -= take
        if self._remaining == 0:
            self._finish_message()
            return True
        return False

    def _parse_chunk_size(self) -> bool:
        line = self._take_line()
        if line is None:
            return False
        if self._chunk_trailer:
            # trailers: skip lines until the blank terminator
            if line:
                return True
            self._chunk_trailer = False
            self._finish_message()
            return True
        size_text = line.split(b";", 1)[0].strip()
        try:
            size = int(size_text, 16)
        except ValueError:
            raise HttpParseError(f"bad chunk size {size_text!r}") from None
        if size < 0:
            raise HttpParseError("negative chunk size")
        if len(self._body) + size > self._max_body:
            raise HttpParseError("chunked body exceeds limit")
        if size == 0:
            self._chunk_trailer = True
            return True
        self._remaining = size
        self._state = "chunk-data"
        return True

    def _parse_chunk_data(self) -> bool:
        needed = self._remaining + 2  # data + CRLF
        if len(self._buf) - self._pos < needed:
            return False
        data_end = self._pos + self._remaining
        self._body.extend(self._buf[self._pos : data_end])
        if self._buf[data_end : data_end + 2] != _CRLF:
            raise HttpParseError("chunk data not followed by CRLF")
        self._pos += needed
        self._remaining = 0
        self._state = "chunk-size"
        return True

    def _parse_until_close(self) -> bool:
        if len(self._body) + len(self._buf) - self._pos > self._max_body:
            raise HttpParseError("body exceeds limit")
        self._body.extend(self._buf[self._pos :])
        self._buf.clear()
        self._pos = 0
        return False

    def _finish_message(self) -> None:
        assert self._start is not None and self._headers is not None
        self._ready.append(self._build(self._start, self._headers, bytes(self._body)))
        self._start = None
        self._headers = None
        self._body = bytearray()
        self._remaining = 0
        self._state = "start-line"
        self.expect_no_body = False

    def _build(self, start: tuple[str, str, str], headers: Headers, body: bytes):
        raise NotImplementedError


class RequestParser(MessageParser):
    """Incremental parser yielding :class:`HttpRequest` objects."""

    is_response = False

    def _build(self, start, headers, body):
        method, target, version = start
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise HttpParseError(f"unsupported version {version!r}")
        if not method.isupper():
            raise HttpParseError(f"invalid method {method!r}")
        return HttpRequest(
            method=method, target=target, headers=headers, body=body, version=version
        )


class ResponseParser(MessageParser):
    """Incremental parser yielding :class:`HttpResponse` objects."""

    is_response = True

    def _build(self, start, headers, body):
        version, status_text, reason = start
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise HttpParseError(f"unsupported version {version!r}")
        try:
            status = int(status_text)
        except ValueError:
            raise HttpParseError(f"bad status code {status_text!r}") from None
        return HttpResponse(
            status=status, headers=headers, body=body, version=version, reason=reason
        )

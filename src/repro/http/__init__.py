"""HTTP/1.1 subset: message model + incremental sans-io wire codec.

The same codec drives the threaded runtime (real sockets) and the network
simulator, so both see identical framing behaviour: Content-Length and
chunked bodies, keep-alive vs close, header size limits.
"""

from repro.http.message import HttpRequest, HttpResponse, Headers
from repro.http.status import reason_phrase
from repro.http.wire import (
    MAX_HEADER_BYTES,
    RequestParser,
    ResponseParser,
    serialize_request,
    serialize_response,
)

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "Headers",
    "reason_phrase",
    "RequestParser",
    "ResponseParser",
    "serialize_request",
    "serialize_response",
    "MAX_HEADER_BYTES",
]

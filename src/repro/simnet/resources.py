"""Simulation resources: FIFO stores and capacity-limited resources.

Both support *cancelable* pending requests so processes can race a request
against a timeout (``sim.any_of([store.get(), sim.timeout(1)])``) and then
``cancel()`` the loser without leaking a queued claim.

The same rule applies to interrupts: a process interrupted while waiting
on a ``get()``/``request()`` must ``cancel()`` the event it was waiting
on, otherwise the stale claim stays queued and will silently consume the
next item/slot (see ``tests/simnet/test_kernel_interrupts.py``).
"""

from __future__ import annotations

import collections
from typing import Any

from repro.errors import SimulationError
from repro.simnet.kernel import Event, Simulator


class StoreGet(Event):
    """Pending take from a :class:`Store`."""

    __slots__ = ("_store", "_cancelled")

    def __init__(self, store: "Store") -> None:
        super().__init__(store.sim)
        self._store = store
        self._cancelled = False

    def cancel(self) -> None:
        """Withdraw the request if it has not been fulfilled yet."""
        if not self._triggered:
            self._cancelled = True


class StorePut(Event):
    """Pending insert into a bounded :class:`Store`."""

    __slots__ = ("_store", "_cancelled", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self._store = store
        self._cancelled = False
        self.item = item

    def cancel(self) -> None:
        if not self._triggered:
            self._cancelled = True


class Store:
    """FIFO item store with optional capacity.

    ``put`` returns an event that fires when the item is accepted;
    ``get`` an event that fires with the oldest item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: collections.deque[Any] = collections.deque()
        self._getters: collections.deque[StoreGet] = collections.deque()
        self._putters: collections.deque[StorePut] = collections.deque()

    def put(self, item: Any) -> StorePut:
        evt = StorePut(self, item)
        self._putters.append(evt)
        self._settle()
        return evt

    def get(self) -> StoreGet:
        evt = StoreGet(self)
        self._getters.append(evt)
        self._settle()
        return evt

    def try_put(self, item: Any) -> bool:
        """Immediate put; False when the store is full."""
        if len(self.items) >= self.capacity and not self._getters:
            return False
        self.put(item)
        return True

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and self._putters[0]._cancelled:
                self._putters.popleft()
            while self._getters and self._getters[0]._cancelled:
                self._getters.popleft()
            if self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            if self._getters and self.items:
                get = self._getters.popleft()
                get.succeed(self.items.popleft())
                progress = True

    def __len__(self) -> int:
        return len(self.items)


class ResourceRequest(Event):
    """Pending claim on a :class:`Resource` slot."""

    __slots__ = ("_resource", "_cancelled", "_held")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self._resource = resource
        self._cancelled = False
        self._held = False

    def cancel(self) -> None:
        if not self._triggered:
            self._cancelled = True
        elif self._held:
            self.release()

    def release(self) -> None:
        if self._held:
            self._held = False
            self._resource._release()

    def _grant(self) -> None:
        self._held = True
        self.succeed(self)


class Resource:
    """Capacity-limited resource with FIFO granting."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: collections.deque[ResourceRequest] = collections.deque()

    def request(self) -> ResourceRequest:
        req = ResourceRequest(self)
        self._waiters.append(req)
        self._settle()
        return req

    def _release(self) -> None:
        self.in_use -= 1
        if self.in_use < 0:
            raise SimulationError("resource released more than acquired")
        self._settle()

    def _settle(self) -> None:
        while self._waiters:
            head = self._waiters[0]
            if head._cancelled:
                self._waiters.popleft()
                continue
            if self.in_use >= self.capacity:
                return
            self._waiters.popleft()
            self.in_use += 1
            head._grant()

    @property
    def queued(self) -> int:
        return sum(1 for w in self._waiters if not w._cancelled)

"""Stateful firewall / NAT model (connection granularity).

The paper's problem statement: hosts "behind firewall that allows only
outgoing connections".  We enforce the policy at connection-establishment
time — an inbound SYN to a protected host is silently dropped (the
connecting peer sees a connect *timeout*, not a refusal, exactly like a
default-drop firewall), while traffic on a connection the protected host
itself opened flows freely in both directions (stateful reply tracking).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FirewallPolicy:
    """Inbound admission policy of one host.

    ``inbound_open``      — accept any inbound connection (public host).
    ``open_ports``        — inbound allowed on these ports even if closed.
    ``allowed_sources``   — inbound allowed from these host names.
    """

    inbound_open: bool = True
    open_ports: frozenset[int] = field(default_factory=frozenset)
    allowed_sources: frozenset[str] = field(default_factory=frozenset)
    #: count of dropped inbound connection attempts
    dropped: int = 0

    @classmethod
    def open(cls) -> "FirewallPolicy":
        """No filtering — a publicly reachable host."""
        return cls(inbound_open=True)

    @classmethod
    def outbound_only(
        cls,
        open_ports: tuple[int, ...] = (),
        allowed_sources: tuple[str, ...] = (),
    ) -> "FirewallPolicy":
        """Institutional/NAT posture: outgoing connections only."""
        return cls(
            inbound_open=False,
            open_ports=frozenset(open_ports),
            allowed_sources=frozenset(allowed_sources),
        )

    def admits_inbound(self, src_host: str, port: int) -> bool:
        """Would an inbound SYN from ``src_host`` to ``port`` pass?"""
        if self.inbound_open:
            return True
        if port in self.open_ports:
            return True
        if src_host in self.allowed_sources:
            return True
        self.dropped += 1
        return False

"""Discrete-event network simulator.

The paper's evaluation ran on physical infrastructure — trans-Atlantic
links, an asymmetric cable modem, institutional firewalls, 2005-era hosts.
This package recreates those conditions as an explicit, deterministic
model: a coroutine-based event kernel (:mod:`~repro.simnet.kernel`,
SimPy-style), hosts and access links with bandwidth/latency
(:mod:`~repro.simnet.topology`), a connection-level TCP model with
handshakes, timeouts, and connection-table limits
(:mod:`~repro.simnet.tcpsim`), stateful outbound-only firewalls
(:mod:`~repro.simnet.firewall`), HTTP over the simulated transport reusing
the production sans-io codec (:mod:`~repro.simnet.httpsim`), and scenario
builders with the paper's measured numbers
(:mod:`~repro.simnet.scenarios`).
"""

from repro.simnet.kernel import Simulator, Process, Timeout, Event, AllOf, AnyOf
from repro.simnet.resources import Store, Resource
from repro.simnet.topology import Host, AccessLink, Network
from repro.simnet.firewall import FirewallPolicy
from repro.simnet.metrics import MetricsSampler
from repro.simnet.tcpsim import SimTcpConnection, TcpParams
from repro.simnet.httpsim import SimHttpServer, SimHttpClientPool, sim_http_request
from repro.simnet.scenarios import (
    SiteSpec,
    make_network,
    CABLE_MODEM_US,
    BACKBONE_IU,
    INRIA,
)

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Event",
    "AllOf",
    "AnyOf",
    "Store",
    "Resource",
    "Host",
    "AccessLink",
    "Network",
    "FirewallPolicy",
    "MetricsSampler",
    "SimTcpConnection",
    "TcpParams",
    "SimHttpServer",
    "SimHttpClientPool",
    "sim_http_request",
    "SiteSpec",
    "make_network",
    "CABLE_MODEM_US",
    "BACKBONE_IU",
    "INRIA",
]

"""Connection-level TCP model: handshake, transfer, timeouts, limits.

Granularity: connections carry discrete byte segments (each ``send`` is
one application write delivered whole).  What is modelled, because the
paper's results hinge on it:

- **Handshake** — one full RTT of propagation plus serialization of a
  64-byte SYN and SYN-ACK through the shared access-link pipes, bounded by
  a connect timeout (a 2005 BSD-ish stack gives up after ~21 s of SYN
  retries).  Under uplink congestion the SYN queues behind data, so
  connect times degrade exactly when the paper loses packets.
- **Firewalls** — an inbound SYN to a protected host is silently dropped;
  the connector burns the whole connect timeout (Figure 6's "response
  blocked" case).
- **Connection tables** — per-host caps on concurrent connections; the
  connector gets an immediate local failure when its own table is full,
  and a drop (→ timeout) when the server's is.
- **Data transfer** — serialization through sender-up and receiver-down
  pipes plus propagation, sharing bandwidth with every other flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    ConnectionClosed,
    ConnectionLimitExceeded,
    ConnectionRefused,
    ConnectionTimeout,
)
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Store
from repro.simnet.topology import Host, Network

_SYN_BYTES = 64
_EOF = object()


@dataclass
class TcpParams:
    """Connection behaviour knobs."""

    connect_timeout: float = 21.0
    #: overhead bytes added to each segment (TCP/IP headers)
    segment_overhead: int = 40
    #: listener accept-queue depth
    backlog: int = 128


class SimListener:
    """A listening port on a host."""

    def __init__(self, sim: Simulator, host: Host, port: int, backlog: int) -> None:
        self.sim = sim
        self.host = host
        self.port = port
        self.backlog_store: Store = Store(sim, capacity=backlog)
        self.closed = False
        host.listeners[port] = self

    def accept(self):
        """Event yielding the next established server-side connection."""
        return self.backlog_store.get()

    def close(self) -> None:
        self.closed = True
        self.host.listeners.pop(self.port, None)


class SimTcpConnection:
    """One endpoint of an established connection."""

    def __init__(
        self,
        net: Network,
        local: Host,
        remote: Host,
        params: TcpParams,
        counts_on_local: bool = True,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.local = local
        self.remote = remote
        self.params = params
        self.inbox: Store = Store(self.sim)
        self.peer: "SimTcpConnection | None" = None
        self.closed = False
        self._counts_on_local = counts_on_local
        self.bytes_sent = 0
        # A reboot loses TCP state: connections pin the host epochs they
        # were established under and are dead once either host crashes,
        # even after it recovers.
        self._local_epoch = local.epoch
        self._remote_epoch = remote.epoch

    def _stale(self) -> bool:
        return (
            self.local.epoch != self._local_epoch
            or self.remote.epoch != self._remote_epoch
        )

    @property
    def broken(self) -> bool:
        """Connection unusable: closed, or a host crashed since setup."""
        return (
            self.closed
            or self._stale()
            or self.local.failed
            or self.remote.failed
        )

    # -- data path -----------------------------------------------------------
    def send(self, data: bytes):
        """Process step: deliver ``data`` into the peer's inbox.

        Usage: ``yield from conn.send(payload)``.  Completion means the
        last byte reached the peer (sender-paced model; no separate ACK
        clocking).  Raises ConnectionClosed if either side closed first
        or if either host has crashed.
        """
        if self.closed or self.peer is None:
            raise ConnectionClosed("send on closed connection")
        if self.local.failed or self.remote.failed or self._stale():
            raise ConnectionClosed(
                f"connection {self.local.name}->{self.remote.name} broken "
                "(host down)"
            )
        size = len(data) + self.params.segment_overhead
        yield self.net.transfer(self.local, self.remote, size)
        if self.closed or self.peer is None or self.peer.closed:
            raise ConnectionClosed("peer closed during send")
        if self.remote.failed or self._stale():
            raise ConnectionClosed(f"{self.remote.name} went down during send")
        self.bytes_sent += len(data)
        self.peer.inbox.put(data)

    def recv(self, timeout: float | None = None):
        """Process step: next segment, b"" on EOF.

        Usage: ``data = yield from conn.recv(timeout)``.  Raises
        ConnectionTimeout when ``timeout`` elapses first.
        """
        if self._stale() and not self.remote.failed:
            # The peer rebooted: its fresh stack knows nothing of this
            # connection and RSTs our next segment.  While it is still
            # down there is no RST — the reader just waits out its
            # timeout, exactly like the real silent-crash case.
            raise ConnectionClosed(
                f"{self.remote.name} restarted; connection lost"
            )
        get = self.inbox.get()
        if timeout is None:
            item = yield get
        else:
            idx, value = yield self.sim.any_of([get, self.sim.timeout(timeout)])
            if idx == 1:
                get.cancel()
                raise ConnectionTimeout(
                    f"recv timed out after {timeout}s on {self.local.name}"
                )
            item = value
        if item is _EOF:
            self.inbox.put(_EOF)  # keep EOF visible for subsequent reads
            return b""
        return item

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._counts_on_local:
            self.local.release_connection()
        peer = self.peer
        if peer is not None and not peer.closed:
            peer.inbox.put(_EOF)


def listen(sim: Simulator, host: Host, port: int, params: TcpParams | None = None) -> SimListener:
    """Open a listening port on a host."""
    params = params or TcpParams()
    return SimListener(sim, host, port, params.backlog)


def connect(
    net: Network,
    client: Host,
    server_name: str,
    port: int,
    params: TcpParams | None = None,
):
    """Process step establishing a connection; yields the client endpoint.

    Usage: ``conn = yield from connect(net, client, "server", 80)``.

    Raises ConnectionLimitExceeded / ConnectionRefused / ConnectionTimeout
    per the failure taxonomy in the module docstring.
    """
    sim = net.sim
    params = params or TcpParams()
    server = net.host(server_name)

    if not client.try_acquire_connection():
        raise ConnectionLimitExceeded(
            f"{client.name}: local connection table full "
            f"({client.max_connections})"
        )
    client_owns_slot = True
    server_owns_slot = False
    try:
        # SYN travels to the server through the shared pipes.
        deadline = sim.now + params.connect_timeout
        yield net.transfer(client, server, _SYN_BYTES)

        if server.failed:
            # a dead host answers nothing: the connector times out
            yield sim.timeout(max(0.0, deadline - sim.now))
            raise ConnectionTimeout(
                f"connect {client.name}->{server.name}:{port} timed out "
                "(host down)"
            )
        if not server.firewall.admits_inbound(client.name, port):
            # silent drop: connector waits out the rest of its timeout
            yield sim.timeout(max(0.0, deadline - sim.now))
            raise ConnectionTimeout(
                f"connect {client.name}->{server.name}:{port} timed out "
                "(firewall drop)"
            )

        listener = server.listeners.get(port)
        if listener is None or getattr(listener, "closed", False):
            # active refusal: RST comes back one propagation later
            yield sim.timeout(net.propagation(server, client))
            raise ConnectionRefused(f"nothing listening at {server.name}:{port}")

        if not server.try_acquire_connection():
            # server table full: SYN dropped, connector times out
            yield sim.timeout(max(0.0, deadline - sim.now))
            raise ConnectionTimeout(
                f"connect {client.name}->{server.name}:{port} timed out "
                "(server connection table full)"
            )
        server_owns_slot = True

        # SYN-ACK back through the pipes; if it arrives past the budget
        # the client has already given up.
        yield net.transfer(server, client, _SYN_BYTES)
        if sim.now > deadline:
            raise ConnectionTimeout(
                f"connect {client.name}->{server.name}:{port} timed out "
                "(SYN-ACK too slow)"
            )

        client_side = SimTcpConnection(net, client, server, params)
        server_side = SimTcpConnection(net, server, client, params)
        client_side.peer = server_side
        server_side.peer = client_side

        if not listener.backlog_store.try_put(server_side):
            raise ConnectionTimeout(f"{server.name}:{port} backlog overflow")

        # the connection objects now own the table slots (released on close)
        client_owns_slot = False
        server_owns_slot = False
        return client_side
    finally:
        if server_owns_slot:
            server.release_connection()
        if client_owns_slot:
            client.release_connection()

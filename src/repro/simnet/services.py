"""Simulated service implementations used by the experiments.

The RPC echo service reuses the production pure handler
(:class:`repro.workload.echo.EchoService` via
:class:`~repro.rt.service.SoapHttpApp`); the asynchronous echo below needs
its own sim hosting because replying means *network I/O* in simulated
time, with the reply-sender capacity limits the paper's Figure 6 hinges
on.
"""

from __future__ import annotations

from repro.errors import ReproError, SoapError, TransportError, XmlError
from repro.http import HttpRequest, HttpResponse
from repro.obs.trace import TraceStore, default_trace_store, extract_trace, propagate_trace
from repro.rt.service import soap_fault_response
from repro.simnet.httpsim import SimHttpClientPool
from repro.simnet.resources import Resource
from repro.simnet.topology import Host, Network
from repro.soap import (
    Envelope,
    Fault,
    RpcResponse,
    build_rpc_response,
    parse_rpc_request,
)
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.transport.base import parse_http_url
from repro.util.ids import IdGenerator
from repro.util.stats import Counter
from repro.wsa import AddressingHeaders, make_reply_headers


class SimAsyncEchoService:
    """Messaging echo on a simulated host.

    Accepts one-way requests (HTTP 202) and sends the echo response as a
    new one-way message to the request's ``wsa:ReplyTo``.  Reply sending
    runs on a bounded pool of sender processes (``reply_senders``); when
    all senders are stuck — e.g. each burning a connect timeout against a
    firewalled client — the handler *blocks waiting for a sender slot*,
    which throttles acceptance exactly as the paper observed ("the Web
    Service tried to send back response but the connection was discarded
    which led to fewer messages accepted by the Web Service").
    """

    def __init__(
        self,
        net: Network,
        host: Host,
        reply_senders: int = 16,
        connect_timeout: float = 21.0,
        response_timeout: float = 30.0,
        response_delay: float = 0.0,
        traces: TraceStore | None = None,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.host = host
        self.response_delay = response_delay
        self.traces = traces if traces is not None else default_trace_store()
        self.pool = SimHttpClientPool(
            net,
            host,
            connect_timeout=connect_timeout,
            response_timeout=response_timeout,
        )
        self.senders = Resource(self.sim, capacity=reply_senders)
        self.ids = IdGenerator("sim-echo", seed=7)
        self.counters = Counter()

    def handler(self, request: HttpRequest):
        """Generator handler: accept, then hand the reply to a sender slot."""
        if request.method != "POST":
            return HttpResponse(status=405)
        try:
            envelope = Envelope.from_bytes(request.body)
            call = parse_rpc_request(envelope)
            headers = AddressingHeaders.from_envelope(envelope)
        except (XmlError, SoapError, ReproError) as exc:
            return soap_fault_response(Fault("Client", str(exc)), status=400)
        t_recv = self.sim.now
        self.counters.inc("received")
        if headers.reply_to is None or headers.reply_to.is_anonymous:
            return HttpResponse(status=202)

        reply = build_rpc_response(
            RpcResponse(
                call.interface_ns,
                call.operation,
                [("return", call.param("text") or "")],
            ),
            version=envelope.version,
        )
        reply_headers = make_reply_headers(headers, self.ids.next())
        reply_headers.attach(reply)
        # A reply is a *new* envelope: forwarding won't copy the request's
        # trace header onto it, so continue the context explicitly.  The
        # service span id is pre-allocated so the reply can reference it
        # before the span (which includes the think time) is recorded.
        trace = extract_trace(envelope)
        svc_sid = None
        if trace is not None:
            svc_sid = self.traces.new_span_id()
            propagate_trace(envelope, reply, parent_span_id=svc_sid)
        target = reply_headers.to or ""

        # Acquire a sender slot *before* acknowledging: a service whose
        # senders are all wedged stops accepting further work.
        slot = self.senders.request()
        yield slot
        self.sim.process(
            self._send_reply(slot, target, reply.to_bytes(), trace, svc_sid, t_recv)
        )
        return HttpResponse(status=202)

    def _send_reply(
        self, slot, target_url: str, body: bytes,
        trace=None, svc_sid=None, t_recv=0.0,
    ):
        if self.response_delay > 0:
            # the service takes its time producing the answer — harmless
            # here because no transport is waiting (Table 1 quadrant 4)
            yield self.sim.timeout(self.response_delay * self.host.cpu_factor)
        if svc_sid is not None:
            self.traces.record(
                trace.trace_id, "service", "echo",
                t_recv, self.sim.now,
                span_id=svc_sid, parent_id=trace.parent_span_id,
            )
        try:
            endpoint, path = parse_http_url(target_url)
        except ReproError:
            self.counters.inc("replies_unroutable")
            slot.release()
            return
        try:
            from repro.http import Headers

            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            req = HttpRequest("POST", path, headers=headers, body=body)
            response = yield from self.pool.exchange(endpoint.host, endpoint.port, req)
            if response.status >= 400:
                raise TransportError(f"HTTP {response.status}")
            self.counters.inc("replies_sent")
        except (TransportError, ReproError):
            self.counters.inc("replies_blocked")
        finally:
            slot.release()

    @property
    def stats(self) -> dict[str, int]:
        return self.counters.as_dict()

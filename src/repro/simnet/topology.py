"""Hosts, access links, and the network fabric.

Model: every host reaches the Internet backbone through one duplex
**access link** with its own upload/download rates and one-way propagation
latency — the paper's bottlenecks are exactly these (cable modem
288 kbps *up*, institutional links ~1.3 Mbps).  The backbone itself is
assumed uncongested, so the end-to-end path between two hosts is

    sender.up pipe → sender.latency + receiver.latency → receiver.down pipe

Each pipe direction is a FIFO serialization queue at the link rate, so
concurrent flows share bandwidth by queueing behind each other — the
mechanism that melts the cable-modem uplink in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simnet.kernel import Event, Simulator, Timeout
from repro.simnet.firewall import FirewallPolicy


class Pipe:
    """FIFO serialization queue at a fixed bit rate.

    O(1) per transfer: the pipe tracks when it next becomes free; a
    transfer of ``nbytes`` completes at ``max(now, free_at) + nbytes*8/rate``.
    """

    def __init__(self, sim: Simulator, rate_bps: float, name: str = "pipe") -> None:
        if rate_bps <= 0:
            raise SimulationError(f"{name}: rate must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.name = name
        self._free_at = 0.0
        self.bytes_carried = 0
        self.transfers = 0

    def transmit(self, nbytes: int) -> Timeout:
        """Event firing when the last bit of ``nbytes`` leaves the pipe."""
        if nbytes < 0:
            raise SimulationError("cannot transmit negative bytes")
        now = self.sim.now
        start = max(now, self._free_at)
        duration = nbytes * 8.0 / self.rate_bps
        self._free_at = start + duration
        self.bytes_carried += nbytes
        self.transfers += 1
        return self.sim.timeout(self._free_at - now)

    @property
    def backlog_seconds(self) -> float:
        """How far behind real time the pipe currently is."""
        return max(0.0, self._free_at - self.sim.now)

    @property
    def utilization_bytes(self) -> int:
        return self.bytes_carried


@dataclass
class AccessLink:
    """A host's duplex connection to the backbone.

    ``loss`` is a per-transfer drop probability on this link (either
    direction) — lossy residential last miles.  Losses are drawn from the
    *network's* seeded RNG so runs stay deterministic.
    """

    down_kbps: float
    up_kbps: float
    latency: float  # one-way propagation to the backbone core, seconds
    loss: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise SimulationError(f"loss must be in [0, 1), got {self.loss}")

    def build(self, sim: Simulator, host_name: str) -> "BuiltLink":
        return BuiltLink(
            up=Pipe(sim, self.up_kbps * 1000.0, name=f"{host_name}.up"),
            down=Pipe(sim, self.down_kbps * 1000.0, name=f"{host_name}.down"),
            latency=self.latency,
            loss=self.loss,
        )


@dataclass
class BuiltLink:
    up: Pipe
    down: Pipe
    latency: float
    loss: float = 0.0
    dropped_transfers: int = 0
    #: fault injection: the link carries nothing until this sim-time —
    #: transfers stall (TCP keeps retrying) and complete after recovery,
    #: or the caller's own deadline (connect/read timeout) fires first
    down_until: float = 0.0
    #: fault injection: extra one-way delay added to every transfer
    extra_latency: float = 0.0
    #: fault injection: uniform random extra delay in [0, jitter) per
    #: transfer, drawn from the network's seeded RNG
    jitter: float = 0.0
    stalled_transfers: int = 0


class Host:
    """A simulated machine: link, firewall, connection table, CPU speed.

    ``cpu_factor`` scales service times (1.0 = the paper's "fast" host;
    larger = slower — inriaSlow/iuLow get ~3-4x).  ``max_connections``
    models the OS connection table / per-process descriptor limit that
    caps concurrent TCP connections on 2005-era stacks.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        link: AccessLink,
        firewall: FirewallPolicy | None = None,
        max_connections: int = 1024,
        cpu_factor: float = 1.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.link = link.build(sim, name)
        self.firewall = firewall or FirewallPolicy.open()
        self.max_connections = max_connections
        self.cpu_factor = cpu_factor
        self.active_connections = 0
        self.refused_connections = 0
        self.listeners: dict[int, object] = {}  # port -> SimListener
        #: True while the machine is down (crash injection): inbound SYNs
        #: are dropped, established connections break on next use
        self.failed = False
        #: bumped on every crash — connections pinned to an older epoch
        #: are dead even after the host recovers (a reboot loses TCP state)
        self.epoch = 0

    def fail(self) -> None:
        """Crash the host: no RSTs, no FINs — it just goes dark."""
        self.failed = True
        self.epoch += 1

    def recover(self) -> None:
        """Bring the host back (listeners and state survive the restart,
        established connections do not — the crash lost their TCP state)."""
        self.failed = False

    # -- connection accounting ---------------------------------------------
    def try_acquire_connection(self) -> bool:
        if self.active_connections >= self.max_connections:
            self.refused_connections += 1
            return False
        self.active_connections += 1
        return True

    def release_connection(self) -> None:
        self.active_connections -= 1
        if self.active_connections < 0:
            raise SimulationError(f"{self.name}: connection count underflow")

    # -- CPU -----------------------------------------------------------------
    def compute(self, seconds: float) -> Timeout:
        """Event firing after ``seconds`` of work scaled by host speed."""
        return self.sim.timeout(seconds * self.cpu_factor)

    def __repr__(self) -> str:
        return f"Host({self.name!r}, conns={self.active_connections})"


class Network:
    """Name → host registry plus path characteristics."""

    def __init__(self, sim: Simulator, loss_seed: int = 0) -> None:
        import random

        self.sim = sim
        self._hosts: dict[str, Host] = {}
        self._loss_rng = random.Random(loss_seed)
        #: TCP retransmission timeout charged per lost transfer
        self.rto = 1.0

    def add_host(
        self,
        name: str,
        link: AccessLink,
        firewall: FirewallPolicy | None = None,
        max_connections: int = 1024,
        cpu_factor: float = 1.0,
    ) -> Host:
        if name in self._hosts:
            raise SimulationError(f"duplicate host {name!r}")
        host = Host(
            self.sim,
            name,
            link,
            firewall=firewall,
            max_connections=max_connections,
            cpu_factor=cpu_factor,
        )
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def propagation(self, a: Host, b: Host) -> float:
        """One-way propagation delay between two hosts."""
        if a is b:
            return 0.0001  # loopback
        return a.link.latency + b.link.latency

    def transfer(self, src: Host, dst: Host, nbytes: int) -> Event:
        """Composite event: ``nbytes`` fully delivered from src to dst.

        Serialization up the sender's link, propagation, then serialization
        down the receiver's link (store-and-forward at the core).  A
        transfer from a host to itself (co-located services) bypasses the
        access link entirely — loopback is not metered.
        """
        sim = self.sim
        done = sim.event()

        if src is dst:
            return sim.timeout(0.0001, value=nbytes)

        def _links_up():
            # Fault injection: a downed link carries nothing.  TCP keeps
            # retransmitting, so the transfer waits out the outage rather
            # than failing — the caller's own connect/read deadline is
            # what turns a long outage into an error.
            stalled = False
            while True:
                until = max(src.link.down_until, dst.link.down_until)
                if until <= sim.now:
                    return
                if not stalled:
                    stalled = True
                    for link in (src.link, dst.link):
                        if link.down_until > sim.now:
                            link.stalled_transfers += 1
                yield sim.timeout(until - sim.now)

        def _run():
            yield from _links_up()
            yield src.link.up.transmit(nbytes)
            # Loss on either access link: TCP retransmits after an RTO, so
            # the transfer still completes — just late (and the resend
            # loads the pipes again).  Counted per link for diagnostics.
            loss = max(src.link.loss, dst.link.loss)
            while loss > 0.0 and self._loss_rng.random() < loss:
                lossy = src.link if src.link.loss >= dst.link.loss else dst.link
                lossy.dropped_transfers += 1
                yield sim.timeout(self.rto)
                yield from _links_up()
                yield src.link.up.transmit(nbytes)
            delay = self.propagation(src, dst)
            delay += src.link.extra_latency + dst.link.extra_latency
            spread = src.link.jitter + dst.link.jitter
            if spread > 0.0:
                delay += self._loss_rng.random() * spread
            yield sim.timeout(delay)
            yield dst.link.down.transmit(nbytes)
            done.succeed(nbytes)

        sim.process(_run(), name=f"xfer-{src.name}->{dst.name}")
        return done

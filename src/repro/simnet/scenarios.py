"""Scenario builders with the paper's measured site characteristics.

Paper §4.3 bandwidth measurements:

- Cable Modem, US (iuLow): download 2333 kbps, upload 288 kbps
- Backbone Internet (IU), US (iuHigh): download 3655 kbps, upload 2739 kbps
- INRIA, France: download 1335 kbps, upload 1262 kbps — "inside
  institutional network and behind firewall"

Hosts: inriaFast (P4 3.4 GHz), inriaSlow (P3 1 GHz), IU SunFire 280R
(2x1200 MHz), iuLow (P3 850 MHz).  We express host speed as ``cpu_factor``
relative to the fast machines (~1.0); the slow ones get ~3.5-4.0.
Trans-Atlantic one-way latency ≈ 55 ms per side to the core (RTT INRIA↔IU
≈ 110-120 ms, typical for 2005).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simnet.firewall import FirewallPolicy
from repro.simnet.kernel import Simulator
from repro.simnet.topology import AccessLink, Host, Network


@dataclass(frozen=True)
class SiteSpec:
    """Reusable description of a site's connectivity and host speed."""

    name: str
    down_kbps: float
    up_kbps: float
    latency: float
    cpu_factor: float = 1.0
    behind_firewall: bool = False
    max_connections: int = 1024


#: The paper's three measured sites (§4.3) plus host speeds.
CABLE_MODEM_US = SiteSpec(
    name="iuLow",
    down_kbps=2333.0,
    up_kbps=288.0,
    latency=0.030,  # residential last mile + regional transit
    cpu_factor=4.0,  # P3 @ 850 MHz
    behind_firewall=True,  # home router / NAT
    max_connections=256,  # consumer-grade stack of the era
)

BACKBONE_IU = SiteSpec(
    name="iuHigh",
    down_kbps=3655.0,
    up_kbps=2739.0,
    latency=0.010,
    cpu_factor=1.0,  # SunFire 280R
    behind_firewall=False,
    max_connections=1024,
)

INRIA = SiteSpec(
    name="inria",
    down_kbps=1335.0,
    up_kbps=1262.0,
    latency=0.055,  # trans-Atlantic share of the path
    cpu_factor=1.0,  # inriaFast, P4 3.4 GHz
    behind_firewall=True,  # "inside institutional network and behind firewall"
    max_connections=1024,
)

#: The slow INRIA machine used in the "bad conditions" experiment.
INRIA_SLOW = replace(INRIA, name="inriaSlow", cpu_factor=3.5)


def add_site(
    net: Network,
    spec: SiteSpec,
    name: str | None = None,
    open_ports: tuple[int, ...] = (),
) -> Host:
    """Instantiate a site spec as a host (optionally renamed)."""
    firewall = (
        FirewallPolicy.outbound_only(open_ports=open_ports)
        if spec.behind_firewall
        else FirewallPolicy.open()
    )
    return net.add_host(
        name or spec.name,
        AccessLink(spec.down_kbps, spec.up_kbps, spec.latency),
        firewall=firewall,
        max_connections=spec.max_connections,
        cpu_factor=spec.cpu_factor,
    )


def make_network(*specs: SiteSpec) -> tuple[Simulator, Network, dict[str, Host]]:
    """Build a fresh simulator + network with the given sites."""
    sim = Simulator()
    net = Network(sim)
    hosts = {spec.name: add_site(net, spec) for spec in specs}
    return sim, net, hosts

"""HTTP over the simulated transport, reusing the production wire codec.

Handlers may be plain functions (``HttpRequest -> HttpResponse``) or
generator functions that yield simulation events and return the response
— which is how the simulated dispatchers perform their own forwarding I/O
while serving a request.
"""

from __future__ import annotations

import types
from typing import Callable

from repro.errors import (
    ConnectionClosed,
    ConnectionTimeout,
    HttpParseError,
    ReproError,
    TransportError,
)
from repro.http import HttpRequest, HttpResponse
from repro.http.wire import (
    RequestParser,
    ResponseParser,
    serialize_request,
    serialize_request_burst,
    serialize_response,
)
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource
from repro.simnet.tcpsim import SimTcpConnection, TcpParams, connect, listen
from repro.simnet.topology import Host, Network

Handler = Callable[[HttpRequest], "HttpResponse | types.GeneratorType"]


class SimHttpServer:
    """HTTP server hosted on a simulated machine.

    ``workers`` bounds concurrent request *processing* (the servlet thread
    pool); accepted connections beyond that queue for a worker.
    ``service_time`` is the CPU cost per request on a speed-1.0 host (the
    host's ``cpu_factor`` scales it) — this is what makes inriaSlow slow.
    """

    def __init__(
        self,
        net: Network,
        host: Host,
        port: int,
        handler: Handler,
        workers: int = 32,
        keep_alive_timeout: float = 15.0,
        service_time: float = 0.0005,
        params: TcpParams | None = None,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.host = host
        self.port = port
        self.handler = handler
        self.keep_alive_timeout = keep_alive_timeout
        self.service_time = service_time
        self.params = params or TcpParams()
        self.workers = Resource(self.sim, capacity=workers)
        self.listener = listen(self.sim, host, port, self.params)
        self.requests_served = 0
        self.connections_accepted = 0
        self._running = True
        self.paused = False
        self.sim.process(self._accept_loop(), name=f"http-accept-{host.name}:{port}")

    def stop(self) -> None:
        self._running = False
        self.listener.close()

    # -- fault injection: service-level stop/start -------------------------
    def pause(self) -> None:
        """Stop the service while the host stays up: the listener closes,
        so new connects get ConnectionRefused (not a silent timeout)."""
        if self.paused:
            return
        self.paused = True
        self.listener.close()

    def resume(self) -> None:
        """Reopen the listener and resume accepting connections."""
        if not self.paused:
            return
        self.paused = False
        self.listener = listen(self.sim, self.host, self.port, self.params)
        self.sim.process(
            self._accept_loop(),
            name=f"http-accept-{self.host.name}:{self.port}",
        )

    # -- processes ----------------------------------------------------------
    def _accept_loop(self):
        while self._running:
            try:
                conn = yield self.listener.accept()
            except Exception:
                return
            self.connections_accepted += 1
            self.sim.process(
                self._serve(conn), name=f"http-conn-{self.host.name}:{self.port}"
            )

    def _serve(self, conn: SimTcpConnection):
        parser = RequestParser()
        try:
            while self._running and not self.paused:
                request = None
                while request is None:
                    request = parser.next_message()
                    if request is not None:
                        break
                    try:
                        data = yield from conn.recv(timeout=self.keep_alive_timeout)
                    except ConnectionTimeout:
                        return
                    if not data:
                        return
                    parser.feed(data)

                # A pipelined client may have several requests already
                # buffered; process them all and coalesce the responses
                # into one write, the way a real server's socket buffer
                # streams back-to-back responses (one propagation delay
                # for the whole burst, not one per response).  A serial
                # client never has more than one request buffered, so its
                # timing is unchanged.
                pending = [request]
                while True:
                    more = parser.next_message()
                    if more is None:
                        break
                    pending.append(more)
                responses = []
                close_after = False
                for req in pending:
                    req_slot = self.workers.request()
                    yield req_slot
                    try:
                        if self.service_time > 0:
                            yield self.host.compute(self.service_time)
                        response = self._invoke(req)
                        if isinstance(response, types.GeneratorType):
                            response = yield from response
                    finally:
                        req_slot.release()
                    if not req.keep_alive:
                        response.headers.set("Connection", "close")
                    responses.append(response)
                    if not req.keep_alive or not response.keep_alive:
                        close_after = True
                        break
                yield from conn.send(
                    b"".join(serialize_response(r) for r in responses)
                )
                self.requests_served += len(responses)
                if close_after:
                    return
        except (TransportError, HttpParseError):
            return
        finally:
            conn.close()

    def _invoke(self, request: HttpRequest):
        return self.handler(request)


def sim_http_exchange(
    conn: SimTcpConnection,
    request: HttpRequest,
    response_timeout: float,
):
    """Process step: send a request on an open connection, read the reply.

    Usage: ``response = yield from sim_http_exchange(conn, req, 30.0)``.
    """
    yield from conn.send(serialize_request(request))
    parser = ResponseParser()
    if request.method == "HEAD":
        parser.expect_no_body = True
    while True:
        message = parser.next_message()
        if message is not None:
            return message
        data = yield from conn.recv(timeout=response_timeout)
        if not data:
            parser.feed_eof()
            tail = parser.next_message()
            if tail is not None:
                return tail
            raise ConnectionClosed("server closed before full response")
        parser.feed(data)


def sim_http_request(
    net: Network,
    client: Host,
    server_name: str,
    port: int,
    request: HttpRequest,
    connect_timeout: float = 21.0,
    response_timeout: float = 30.0,
    params: TcpParams | None = None,
):
    """Process step: one-shot request (fresh connection, closed after).

    Usage: ``response = yield from sim_http_request(...)``.
    """
    params = params or TcpParams()
    params.connect_timeout = connect_timeout
    conn = yield from connect(net, client, server_name, port, params)
    try:
        response = yield from sim_http_exchange(conn, request, response_timeout)
        return response
    finally:
        conn.close()


class SimHttpClientPool:
    """Per-destination persistent connections for a simulated client host.

    The WsThread model: ``exchange`` reuses an idle connection to the
    destination when one exists and it is still usable, otherwise opens a
    fresh one; connections return to the pool after a clean exchange.
    """

    def __init__(
        self,
        net: Network,
        host: Host,
        connect_timeout: float = 21.0,
        response_timeout: float = 30.0,
        pool_per_destination: int = 2,
    ) -> None:
        self.net = net
        self.host = host
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.pool_per_destination = pool_per_destination
        self._idle: dict[tuple[str, int], list[SimTcpConnection]] = {}
        self.reuses = 0
        self.fresh_connects = 0
        self.pipelined_bursts = 0
        self.pipeline_replays = 0

    def _checkout_idle(self, key: tuple[str, int]) -> SimTcpConnection | None:
        """Pop a still-usable idle connection to ``key``, or None."""
        pool = self._idle.get(key)
        while pool:
            candidate = pool.pop()
            if (
                not candidate.broken
                and candidate.peer
                and not candidate.peer.closed
            ):
                return candidate
        return None

    def _checkin_idle(self, key: tuple[str, int], conn: SimTcpConnection) -> None:
        bucket = self._idle.setdefault(key, [])
        if len(bucket) < self.pool_per_destination:
            bucket.append(conn)
        else:
            conn.close()

    def exchange(self, server_name: str, port: int, request: HttpRequest):
        """Process step: request/response with connection reuse."""
        key = (server_name, port)
        conn = self._checkout_idle(key)
        reused = conn is not None
        if conn is None:
            params = TcpParams(connect_timeout=self.connect_timeout)
            conn = yield from connect(self.net, self.host, server_name, port, params)
            self.fresh_connects += 1
        else:
            self.reuses += 1
        try:
            response = yield from sim_http_exchange(
                conn, request, self.response_timeout
            )
        except (TransportError, HttpParseError):
            conn.close()
            if reused:
                # retry once on a fresh connection (the pooled one was stale)
                params = TcpParams(connect_timeout=self.connect_timeout)
                conn = yield from connect(
                    self.net, self.host, server_name, port, params
                )
                self.fresh_connects += 1
                try:
                    response = yield from sim_http_exchange(
                        conn, request, self.response_timeout
                    )
                except BaseException:
                    conn.close()
                    raise
            else:
                raise
        if response.keep_alive:
            self._checkin_idle(key, conn)
        else:
            conn.close()
        return response

    # -- pipelined bursts (the WsThread drain path) ------------------------
    def pipeline(self, server_name: str, port: int, requests):
        """Process step: send ``requests`` as one write burst; read responses.

        The simulated twin of
        :meth:`repro.rt.client.ConnectionLease.pipeline`: one send models
        the whole burst, the N responses are read back in order, and a
        cut-short burst (server close, ``Connection: close``) replays the
        undelivered tail serially via :meth:`exchange` — each tail request
        exactly once.  A response timeout poisons the tail instead (the
        server may still process those requests).  Returns a list aligned
        with ``requests`` of :class:`HttpResponse` or the exception.
        """
        requests = list(requests)
        if not requests:
            return []
        key = (server_name, port)
        conn = self._checkout_idle(key)
        if conn is None:
            params = TcpParams(connect_timeout=self.connect_timeout)
            try:
                conn = yield from connect(
                    self.net, self.host, server_name, port, params
                )
            except (TransportError, ReproError) as exc:
                return [exc] * len(requests)
            self.fresh_connects += 1
        else:
            self.reuses += 1
        self.pipelined_bursts += 1
        results: list = [None] * len(requests)
        try:
            yield from conn.send(serialize_request_burst(requests))
        except (TransportError, HttpParseError):
            conn.close()
            out = yield from self._replay_tail(server_name, port, requests, results, 0)
            return out
        parser = ResponseParser()
        done = 0
        while done < len(requests):
            message = parser.next_message()
            if message is not None:
                results[done] = message
                done += 1
                if not message.keep_alive:
                    # server demotes the burst to serial
                    conn.close()
                    out = yield from self._replay_tail(
                        server_name, port, requests, results, done
                    )
                    return out
                continue
            try:
                data = yield from conn.recv(timeout=self.response_timeout)
            except ConnectionTimeout as exc:
                conn.close()
                for i in range(done, len(requests)):
                    results[i] = exc
                return results
            except (TransportError, HttpParseError):
                conn.close()
                out = yield from self._replay_tail(
                    server_name, port, requests, results, done
                )
                return out
            if not data:
                try:
                    parser.feed_eof()
                    tail = parser.next_message()
                except HttpParseError:
                    tail = None
                if tail is not None and done < len(requests):
                    results[done] = tail
                    done += 1
                conn.close()
                out = yield from self._replay_tail(
                    server_name, port, requests, results, done
                )
                return out
            try:
                parser.feed(data)
            except HttpParseError:
                conn.close()
                out = yield from self._replay_tail(
                    server_name, port, requests, results, done
                )
                return out
        self._checkin_idle(key, conn)
        return results

    def _replay_tail(self, server_name: str, port: int, requests, results, start):
        """Serial fallback for a cut-short burst's undelivered tail."""
        if start < len(requests):
            self.pipeline_replays += len(requests) - start
        for i in range(start, len(requests)):
            try:
                results[i] = yield from self.exchange(
                    server_name, port, requests[i]
                )
            except (TransportError, ReproError) as exc:
                results[i] = exc
        return results

    def close_all(self) -> None:
        for pool in self._idle.values():
            for conn in pool:
                conn.close()
        self._idle.clear()

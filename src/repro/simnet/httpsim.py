"""HTTP over the simulated transport, reusing the production wire codec.

Handlers may be plain functions (``HttpRequest -> HttpResponse``) or
generator functions that yield simulation events and return the response
— which is how the simulated dispatchers perform their own forwarding I/O
while serving a request.
"""

from __future__ import annotations

import types
from typing import Callable

from repro.errors import (
    ConnectionClosed,
    ConnectionTimeout,
    HttpParseError,
    TransportError,
)
from repro.http import HttpRequest, HttpResponse
from repro.http.wire import RequestParser, ResponseParser, serialize_request, serialize_response
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource
from repro.simnet.tcpsim import SimTcpConnection, TcpParams, connect, listen
from repro.simnet.topology import Host, Network

Handler = Callable[[HttpRequest], "HttpResponse | types.GeneratorType"]


class SimHttpServer:
    """HTTP server hosted on a simulated machine.

    ``workers`` bounds concurrent request *processing* (the servlet thread
    pool); accepted connections beyond that queue for a worker.
    ``service_time`` is the CPU cost per request on a speed-1.0 host (the
    host's ``cpu_factor`` scales it) — this is what makes inriaSlow slow.
    """

    def __init__(
        self,
        net: Network,
        host: Host,
        port: int,
        handler: Handler,
        workers: int = 32,
        keep_alive_timeout: float = 15.0,
        service_time: float = 0.0005,
        params: TcpParams | None = None,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.host = host
        self.port = port
        self.handler = handler
        self.keep_alive_timeout = keep_alive_timeout
        self.service_time = service_time
        self.params = params or TcpParams()
        self.workers = Resource(self.sim, capacity=workers)
        self.listener = listen(self.sim, host, port, self.params)
        self.requests_served = 0
        self.connections_accepted = 0
        self._running = True
        self.sim.process(self._accept_loop(), name=f"http-accept-{host.name}:{port}")

    def stop(self) -> None:
        self._running = False
        self.listener.close()

    # -- processes ----------------------------------------------------------
    def _accept_loop(self):
        while self._running:
            try:
                conn = yield self.listener.accept()
            except Exception:
                return
            self.connections_accepted += 1
            self.sim.process(
                self._serve(conn), name=f"http-conn-{self.host.name}:{self.port}"
            )

    def _serve(self, conn: SimTcpConnection):
        parser = RequestParser()
        try:
            while self._running:
                request = None
                while request is None:
                    request = parser.next_message()
                    if request is not None:
                        break
                    try:
                        data = yield from conn.recv(timeout=self.keep_alive_timeout)
                    except ConnectionTimeout:
                        return
                    if not data:
                        return
                    parser.feed(data)

                req_slot = self.workers.request()
                yield req_slot
                try:
                    if self.service_time > 0:
                        yield self.host.compute(self.service_time)
                    response = self._invoke(request)
                    if isinstance(response, types.GeneratorType):
                        response = yield from response
                finally:
                    req_slot.release()
                if not request.keep_alive:
                    response.headers.set("Connection", "close")
                yield from conn.send(serialize_response(response))
                self.requests_served += 1
                if not request.keep_alive or not response.keep_alive:
                    return
        except (TransportError, HttpParseError):
            return
        finally:
            conn.close()

    def _invoke(self, request: HttpRequest):
        return self.handler(request)


def sim_http_exchange(
    conn: SimTcpConnection,
    request: HttpRequest,
    response_timeout: float,
):
    """Process step: send a request on an open connection, read the reply.

    Usage: ``response = yield from sim_http_exchange(conn, req, 30.0)``.
    """
    yield from conn.send(serialize_request(request))
    parser = ResponseParser()
    if request.method == "HEAD":
        parser.expect_no_body = True
    while True:
        message = parser.next_message()
        if message is not None:
            return message
        data = yield from conn.recv(timeout=response_timeout)
        if not data:
            parser.feed_eof()
            tail = parser.next_message()
            if tail is not None:
                return tail
            raise ConnectionClosed("server closed before full response")
        parser.feed(data)


def sim_http_request(
    net: Network,
    client: Host,
    server_name: str,
    port: int,
    request: HttpRequest,
    connect_timeout: float = 21.0,
    response_timeout: float = 30.0,
    params: TcpParams | None = None,
):
    """Process step: one-shot request (fresh connection, closed after).

    Usage: ``response = yield from sim_http_request(...)``.
    """
    params = params or TcpParams()
    params.connect_timeout = connect_timeout
    conn = yield from connect(net, client, server_name, port, params)
    try:
        response = yield from sim_http_exchange(conn, request, response_timeout)
        return response
    finally:
        conn.close()


class SimHttpClientPool:
    """Per-destination persistent connections for a simulated client host.

    The WsThread model: ``exchange`` reuses an idle connection to the
    destination when one exists and it is still usable, otherwise opens a
    fresh one; connections return to the pool after a clean exchange.
    """

    def __init__(
        self,
        net: Network,
        host: Host,
        connect_timeout: float = 21.0,
        response_timeout: float = 30.0,
        pool_per_destination: int = 2,
    ) -> None:
        self.net = net
        self.host = host
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self.pool_per_destination = pool_per_destination
        self._idle: dict[tuple[str, int], list[SimTcpConnection]] = {}
        self.reuses = 0
        self.fresh_connects = 0

    def exchange(self, server_name: str, port: int, request: HttpRequest):
        """Process step: request/response with connection reuse."""
        key = (server_name, port)
        conn: SimTcpConnection | None = None
        pool = self._idle.get(key)
        while pool:
            candidate = pool.pop()
            if not candidate.closed and candidate.peer and not candidate.peer.closed:
                conn = candidate
                break
        reused = conn is not None
        if conn is None:
            params = TcpParams(connect_timeout=self.connect_timeout)
            conn = yield from connect(self.net, self.host, server_name, port, params)
            self.fresh_connects += 1
        else:
            self.reuses += 1
        try:
            response = yield from sim_http_exchange(
                conn, request, self.response_timeout
            )
        except (TransportError, HttpParseError):
            conn.close()
            if reused:
                # retry once on a fresh connection (the pooled one was stale)
                params = TcpParams(connect_timeout=self.connect_timeout)
                conn = yield from connect(
                    self.net, self.host, server_name, port, params
                )
                self.fresh_connects += 1
                try:
                    response = yield from sim_http_exchange(
                        conn, request, self.response_timeout
                    )
                except BaseException:
                    conn.close()
                    raise
            else:
                raise
        if response.keep_alive:
            bucket = self._idle.setdefault(key, [])
            if len(bucket) < self.pool_per_destination:
                bucket.append(conn)
            else:
                conn.close()
        else:
            conn.close()
        return response

    def close_all(self) -> None:
        for pool in self._idle.values():
            for conn in pool:
                conn.close()
        self._idle.clear()

"""Coroutine-based discrete-event simulation kernel (SimPy-style).

Processes are generator functions that ``yield`` events; the kernel
resumes a process when the yielded event fires, sending the event's value
back into the generator (or throwing its exception).  Everything is
single-threaded and deterministic: ties in time are broken by scheduling
order, and all randomness lives in explicitly-seeded RNGs owned by the
models.

Example:

>>> sim = Simulator()
>>> def worker(sim):
...     yield sim.timeout(1.0)
...     return "done"
>>> p = sim.process(worker(sim))
>>> sim.run()
>>> (sim.now, p.value)
(1.0, 'done')
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimInterrupt, SimulationError

ProcessGen = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence processes can wait on.

    States: pending → triggered (scheduled to fire) → processed.
    ``succeed``/``fail`` trigger it; callbacks run when the kernel
    processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(delay, self)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._triggered = True
        self._exc = exc
        self.sim._schedule(delay, self)
        return self

    # kernel hook
    def _process_callbacks(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._schedule(delay, self)


class Process(Event):
    """A running coroutine; itself an event that fires on completion."""

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "proc") -> None:
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Event | None = None
        self.name = name
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`~repro.errors.SimInterrupt` into the process."""
        if self._triggered:
            return  # completed; nothing to interrupt
        target = self._waiting_on
        if target is not None and self in [
            getattr(cb, "__self__", None) for cb in target.callbacks
        ]:
            target.callbacks = [
                cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self
            ]
        # deliver the interrupt as an immediate failed event
        evt = Event(self.sim)
        evt.callbacks.append(self._resume)
        evt.fail(SimInterrupt(cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._exc is not None:
                next_event = self._gen.throw(event._exc)
            else:
                next_event = self._gen.send(event._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except SimInterrupt:
            # interrupt escaped the generator: treat as silent termination
            if not self._triggered:
                self.succeed(None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            if not self._triggered:
                self.fail(exc)
            return
        if not isinstance(next_event, Event):
            self._gen.throw(
                SimulationError(f"process yielded non-event {next_event!r}")
            )
            return
        if next_event.sim is not self.sim:
            self._gen.throw(SimulationError("event belongs to another simulator"))
            return
        self._waiting_on = next_event
        if next_event._processed:
            # already fired: resume on the next kernel step
            immediate = Event(self.sim)
            immediate.callbacks.append(self._resume)
            if next_event._exc is not None:
                immediate.fail(next_event._exc)
            else:
                immediate.succeed(next_event._value)
        else:
            next_event.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite waits."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._pending = len(self._events)
        if not self._events:
            self.succeed([])
            return
        for evt in self._events:
            if evt._processed:
                self._on_child(evt)
            else:
                evt.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child fired; value = list of child values."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(_Condition):
    """Fires when the first child fires; value = (index, child value)."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed((self._events.index(event), event._value))


class _SimClock:
    """Read-only Clock adapter over a simulator (for shared components)."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim

    def now(self) -> float:
        return self._sim.now

    def sleep(self, seconds: float) -> None:  # pragma: no cover - misuse guard
        raise SimulationError(
            "components inside a simulation must yield sim.timeout(), not sleep()"
        )


class Simulator:
    """The event loop: a time-ordered queue of triggered events."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.events_processed = 0
        self.clock = _SimClock(self)

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "proc") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    # -- execution -----------------------------------------------------------
    def step(self) -> bool:
        """Process one event; False when the queue is empty."""
        if not self._queue:
            return False
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        self.events_processed += 1
        event._process_callbacks()
        return True

    def run(self, until: float | Event | None = None) -> Any:
        """Run to quiescence, to time ``until``, or until an event fires.

        Running until an event returns (or raises) that event's value.
        """
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self.step():
                    if not target._triggered:
                        raise SimulationError(
                            "queue exhausted before target event fired"
                        )
            return target.value
        if until is None:
            while self.step():
                pass
            return None
        if until < self.now:
            raise SimulationError(f"cannot run to the past ({until} < {self.now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self.now = until
        return None

    @property
    def queue_size(self) -> int:
        return len(self._queue)

"""Time-series sampling inside a simulation.

Figures tell you *what* happened; the sampler tells you *why*: it records
periodic snapshots of any gauges you register (link backlog, host
connection counts, queue depths, dispatcher counters) so an experiment's
dynamics — the queue filling, the connection table saturating — are
visible over simulated time.

>>> sampler = MetricsSampler(sim, interval=1.0)
>>> sampler.gauge("uplink-backlog", lambda: host.link.up.backlog_seconds)
>>> sampler.start()
>>> ... run ...
>>> print(sampler.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Host


@dataclass
class SeriesData:
    """One sampled gauge: aligned (time, value) lists."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def at(self, time: float) -> float:
        """Last sampled value at or before ``time`` (0.0 before first)."""
        best = 0.0
        for t, v in zip(self.times, self.values):
            if t > time:
                break
            best = v
        return best

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0


class MetricsSampler:
    """Samples registered gauges on a fixed simulated-time cadence."""

    def __init__(self, sim: Simulator, interval: float = 1.0) -> None:
        if interval <= 0:
            raise SimulationError("sampling interval must be positive")
        self.sim = sim
        self.interval = interval
        self._gauges: dict[str, Callable[[], float]] = {}
        self.series: dict[str, SeriesData] = {}
        self._started = False

    # -- registration -------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        if name in self._gauges:
            raise SimulationError(f"gauge {name!r} already registered")
        self._gauges[name] = fn
        self.series[name] = SeriesData(name)

    def watch_host(self, host: Host, prefix: str | None = None) -> None:
        """Register the standard gauges for one host."""
        p = prefix or host.name
        self.gauge(f"{p}.connections", lambda h=host: float(h.active_connections))
        self.gauge(f"{p}.up_backlog_s", lambda h=host: h.link.up.backlog_seconds)
        self.gauge(f"{p}.down_backlog_s", lambda h=host: h.link.down.backlog_seconds)

    # -- sampling -------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise SimulationError("sampler already started")
        self._started = True
        self.sim.process(self._run(), name="metrics-sampler")

    def _run(self):
        while True:
            self._sample()
            yield self.sim.timeout(self.interval)

    def _sample(self) -> None:
        now = self.sim.now
        for name, fn in self._gauges.items():
            try:
                value = float(fn())
            except Exception:  # noqa: BLE001 - a dead gauge records NaN-ish 0
                value = 0.0
            data = self.series[name]
            data.times.append(now)
            data.values.append(value)

    # -- unified-registry bridge -------------------------------------------
    def export_to(self, registry, name: str = "sim_gauge") -> None:
        """Expose every registered gauge through a
        :class:`~repro.obs.metrics.MetricsRegistry` as live children of one
        labeled gauge family (``{series="..."}``), so ``GET /metrics`` on a
        simulated deployment shows the same values the sampler records.
        """
        family = registry.gauge(
            name, "live simnet sampler gauges, by series"
        )
        for series_name, fn in self._gauges.items():
            family.labels(series=series_name).set_function(fn)

    # -- reporting ---------------------------------------------------------
    def render(self, names: list[str] | None = None, width: int = 40) -> str:
        """Compact sparkline-style table: min/mean/peak plus a trend bar."""
        blocks = " ▁▂▃▄▅▆▇█"
        lines = []
        for name in names or sorted(self.series):
            data = self.series[name]
            if not data.values:
                lines.append(f"{name}: (no samples)")
                continue
            peak = data.peak or 1.0
            # downsample to `width` buckets for the trend bar
            n = len(data.values)
            bar = []
            for i in range(min(width, n)):
                lo = i * n // min(width, n)
                hi = max(lo + 1, (i + 1) * n // min(width, n))
                chunk = max(data.values[lo:hi])
                bar.append(blocks[min(8, int(8 * chunk / peak))])
            lines.append(
                f"{name}: mean={data.mean:.3g} peak={data.peak:.3g} |{''.join(bar)}|"
            )
        return "\n".join(lines)

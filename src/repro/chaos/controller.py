"""Apply a :class:`~repro.chaos.plan.FaultPlan` to a simulated network.

The controller turns each fault into one simulation process that flips
the corresponding knob at the scheduled time and restores it afterwards:
link ``down_until`` stamps, link ``loss`` rates, ``extra_latency`` /
``jitter``, host ``fail()``/``recover()``, ``cpu_factor`` scaling,
registry availability, and service listener pause/resume.  Processes are
spawned in plan order, so two runs of the same (scenario, plan, seed)
replay identically event for event.
"""

from __future__ import annotations

import logging

from repro.chaos.plan import (
    AddedLatency,
    FaultPlan,
    LinkDown,
    LinkFlap,
    PacketLoss,
    RegistryOutage,
    ServiceCrash,
    ServiceStop,
    SlowResponder,
)
from repro.errors import SimulationError
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.simnet.topology import Network


class ChaosController:
    """Drives a fault plan against a simnet :class:`Network`.

    ``registry`` (a :class:`~repro.core.registry.ServiceRegistry`) is only
    needed when the plan contains whole-registry :class:`RegistryOutage`
    faults, and ``servers`` (:class:`~repro.simnet.httpsim.SimHttpServer`
    instances) only for :class:`ServiceStop` faults.  ``replicas`` maps
    replica name → handle (anything with ``set_available``, e.g.
    :class:`~repro.registry.replica.RegistryReplica`) and is needed for
    replica-targeted outages; a :class:`ServiceCrash` whose host name
    matches a replica also flips that replica's availability, so killing
    a registry host kills the registry process on it.

    Metrics: ``chaos_faults_injected_total{kind}`` counts fault windows
    as they begin; ``chaos_faults_active`` gauges how many are currently
    in effect.
    """

    def __init__(
        self,
        net: Network,
        plan: FaultPlan,
        registry=None,
        servers=(),
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
        replicas=None,
    ) -> None:
        self.net = net
        self.sim = net.sim
        self.plan = plan
        self.registry = registry
        self._replicas = dict(replicas) if replicas else {}
        self._servers = {(s.host.name, s.port): s for s in servers}
        self.metrics = metrics if metrics is not None else default_registry()
        self.flight = flight if flight is not None else default_flight_recorder()
        self._log = component_logger("chaos")
        self._m_injected = self.metrics.counter(
            "chaos_faults_injected_total", "fault windows begun, by kind"
        )
        self._active = 0
        self._m_active = self.metrics.gauge(
            "chaos_faults_active", "fault windows currently in effect"
        )
        self._m_active.set_function(lambda: self._active)
        self.injected = 0
        self._started = False

    def start(self) -> None:
        """Schedule every fault in the plan (idempotent)."""
        if self._started:
            return
        self._started = True
        for fault in self.plan.faults:
            if isinstance(fault, RegistryOutage):
                if fault.replica is None and self.registry is None:
                    raise SimulationError(
                        "plan has a RegistryOutage but no registry was given"
                    )
                if fault.replica is not None and fault.replica not in self._replicas:
                    raise SimulationError(
                        f"plan targets unknown registry replica {fault.replica!r}"
                    )
            if isinstance(fault, ServiceStop):
                if (fault.host, fault.port) not in self._servers:
                    raise SimulationError(
                        f"plan stops unknown server {fault.host}:{fault.port}"
                    )
            self.sim.process(self._drive(fault), name=f"chaos-{type(fault).__name__}")

    # -- per-fault processes ------------------------------------------------
    def _begin(self, fault, **fields) -> None:
        kind = type(fault).__name__
        self.injected += 1
        self._active += 1
        self._m_injected.labels(kind=kind).inc()
        log_event(
            self._log, logging.WARNING, "inject",
            kind=kind, host=getattr(fault, "host", "-"), t=round(self.sim.now, 6),
            **fields,
        )
        self.flight.record(
            "fault-inject", "chaos", t=self.sim.now,
            fault=kind, host=getattr(fault, "host", None), **fields,
        )

    def _end(self, fault) -> None:
        self._active -= 1
        log_event(
            self._log, logging.INFO, "restore",
            kind=type(fault).__name__, host=getattr(fault, "host", "-"),
            t=round(self.sim.now, 6),
        )
        self.flight.record(
            "fault-restore", "chaos", t=self.sim.now,
            fault=type(fault).__name__, host=getattr(fault, "host", None),
        )

    def _drive(self, fault):
        yield self.sim.timeout(fault.at)
        if isinstance(fault, LinkDown):
            yield from self._down_window(fault, fault.duration)
        elif isinstance(fault, LinkFlap):
            while self.sim.now < fault.until:
                cycle_start = self.sim.now
                yield from self._down_window(fault, fault.down_for)
                remainder = fault.period - (self.sim.now - cycle_start)
                if remainder > 0:
                    yield self.sim.timeout(remainder)
        elif isinstance(fault, PacketLoss):
            link = self.net.host(fault.host).link
            prev, link.loss = link.loss, fault.rate
            self._begin(fault, rate=fault.rate)
            yield self.sim.timeout(fault.duration)
            link.loss = prev
            self._end(fault)
        elif isinstance(fault, AddedLatency):
            link = self.net.host(fault.host).link
            link.extra_latency += fault.extra
            link.jitter += fault.jitter
            self._begin(fault, extra=fault.extra, jitter=fault.jitter)
            yield self.sim.timeout(fault.duration)
            link.extra_latency -= fault.extra
            link.jitter -= fault.jitter
            self._end(fault)
        elif isinstance(fault, ServiceCrash):
            host = self.net.host(fault.host)
            replica = self._replicas.get(fault.host)
            host.fail()
            if replica is not None:
                replica.set_available(False)
            self._begin(fault, restart_after=fault.restart_after)
            if fault.restart_after is None:
                return
            yield self.sim.timeout(fault.restart_after)
            host.recover()
            if replica is not None:
                replica.set_available(True)
            self._end(fault)
        elif isinstance(fault, ServiceStop):
            server = self._servers[(fault.host, fault.port)]
            server.pause()
            self._begin(fault, port=fault.port)
            yield self.sim.timeout(fault.duration)
            server.resume()
            self._end(fault)
        elif isinstance(fault, SlowResponder):
            host = self.net.host(fault.host)
            host.cpu_factor *= fault.factor
            self._begin(fault, factor=fault.factor)
            yield self.sim.timeout(fault.duration)
            host.cpu_factor /= fault.factor
            self._end(fault)
        elif isinstance(fault, RegistryOutage):
            target = (
                self.registry
                if fault.replica is None
                else self._replicas[fault.replica]
            )
            target.set_available(False)
            self._begin(fault, replica=fault.replica)
            yield self.sim.timeout(fault.duration)
            target.set_available(True)
            self._end(fault)
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise SimulationError(f"unknown fault type {fault!r}")

    def _down_window(self, fault, duration: float):
        link = self.net.host(fault.host).link
        until = self.sim.now + duration
        link.down_until = max(link.down_until, until)
        self._begin(fault, duration=duration)
        yield self.sim.timeout(duration)
        self._end(fault)

"""Fault plans: declarative, seeded schedules of network/service faults.

A plan is pure data.  Every fault names the host it applies to and a
start time (seconds from the start of the run), and the plan can answer
point-in-time queries (`is_link_down(host, t)`, `loss_rate(host, t)`, …)
— which is how the real-mode shim evaluates it.  The simulation driver
(:class:`~repro.chaos.controller.ChaosController`) instead walks the
same windows as scheduled processes, so both runtimes see one schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass(frozen=True)
class LinkDown:
    """The host's access link carries nothing for ``duration`` seconds."""

    host: str
    at: float
    duration: float


@dataclass(frozen=True)
class LinkFlap:
    """Periodic outages: down for ``down_for`` every ``period`` seconds,
    starting at ``at`` and stopping after ``until``."""

    host: str
    at: float
    period: float
    down_for: float
    until: float

    def windows(self) -> list[tuple[float, float]]:
        out = []
        start = self.at
        while start < self.until:
            out.append((start, start + self.down_for))
            start += self.period
        return out


@dataclass(frozen=True)
class PacketLoss:
    """Per-transfer drop probability on the host's link for a window."""

    host: str
    at: float
    duration: float
    rate: float


@dataclass(frozen=True)
class AddedLatency:
    """Extra one-way delay (plus uniform jitter) on the host's link."""

    host: str
    at: float
    duration: float
    extra: float
    jitter: float = 0.0


@dataclass(frozen=True)
class ServiceCrash:
    """The whole host goes dark at ``at``; with ``restart_after`` set it
    comes back that many seconds later (established connections stay
    dead — the reboot lost their TCP state)."""

    host: str
    at: float
    restart_after: float | None = None


@dataclass(frozen=True)
class ServiceStop:
    """One service stops while its host stays up: the listener closes, so
    connects are actively refused rather than timing out."""

    host: str
    port: int
    at: float
    duration: float


@dataclass(frozen=True)
class SlowResponder:
    """The host's CPU slows by ``factor`` (service times stretch)."""

    host: str
    at: float
    duration: float
    factor: float


@dataclass(frozen=True)
class RegistryOutage:
    """Registry lookups/resolves fail for the window.

    With ``replica`` unset the whole registry goes dark (the single-
    process registry, or every replica at once); naming a replica takes
    down just that peer — the fault a replicated registry must shrug off
    with client failover."""

    at: float
    duration: float
    replica: str | None = None


Fault = (
    LinkDown
    | LinkFlap
    | PacketLoss
    | AddedLatency
    | ServiceCrash
    | ServiceStop
    | SlowResponder
    | RegistryOutage
)


def _validate(fault: Fault) -> None:
    if fault.at < 0:
        raise SimulationError(f"fault starts before t=0: {fault}")
    duration = getattr(fault, "duration", None)
    if duration is not None and duration <= 0:
        raise SimulationError(f"fault needs a positive duration: {fault}")
    if isinstance(fault, PacketLoss) and not 0.0 <= fault.rate < 1.0:
        raise SimulationError(f"loss rate must be in [0, 1): {fault}")
    if isinstance(fault, SlowResponder) and fault.factor < 1.0:
        raise SimulationError(f"slowdown factor must be >= 1: {fault}")
    if isinstance(fault, LinkFlap):
        if fault.period <= 0 or fault.down_for <= 0 or fault.down_for > fault.period:
            raise SimulationError(
                f"flap needs 0 < down_for <= period: {fault}"
            )
        if fault.until <= fault.at:
            raise SimulationError(f"flap ends before it starts: {fault}")
    if isinstance(fault, ServiceCrash) and fault.restart_after is not None:
        if fault.restart_after <= 0:
            raise SimulationError(f"restart_after must be positive: {fault}")
    if isinstance(fault, AddedLatency) and (fault.extra < 0 or fault.jitter < 0):
        raise SimulationError(f"latency amounts must be >= 0: {fault}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults plus the seed that makes every
    probabilistic draw (packet loss, jitter) reproducible."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            _validate(fault)

    def _of(self, kind) -> list:
        return [f for f in self.faults if isinstance(f, kind)]

    # -- point-in-time queries (the real-mode shim's evaluation API) -------
    def link_down_windows(self, host: str) -> list[tuple[float, float]]:
        windows = [
            (f.at, f.at + f.duration)
            for f in self._of(LinkDown)
            if f.host == host
        ]
        for flap in self._of(LinkFlap):
            if flap.host == host:
                windows.extend(flap.windows())
        return sorted(windows)

    def is_link_down(self, host: str, t: float) -> bool:
        return any(a <= t < b for a, b in self.link_down_windows(host))

    def loss_rate(self, host: str, t: float) -> float:
        rates = [
            f.rate
            for f in self._of(PacketLoss)
            if f.host == host and f.at <= t < f.at + f.duration
        ]
        return max(rates, default=0.0)

    def extra_latency(self, host: str, t: float) -> tuple[float, float]:
        """(extra, jitter) in effect on the host's link at ``t``."""
        extra = jitter = 0.0
        for f in self._of(AddedLatency):
            if f.host == host and f.at <= t < f.at + f.duration:
                extra += f.extra
                jitter += f.jitter
        return extra, jitter

    def is_crashed(self, host: str, t: float) -> bool:
        for f in self._of(ServiceCrash):
            if f.host != host or t < f.at:
                continue
            if f.restart_after is None or t < f.at + f.restart_after:
                return True
        return False

    def is_stopped(self, host: str, port: int, t: float) -> bool:
        return any(
            f.host == host and f.port == port and f.at <= t < f.at + f.duration
            for f in self._of(ServiceStop)
        )

    def slow_factor(self, host: str, t: float) -> float:
        factor = 1.0
        for f in self._of(SlowResponder):
            if f.host == host and f.at <= t < f.at + f.duration:
                factor *= f.factor
        return factor

    def registry_down(self, t: float, replica: str | None = None) -> bool:
        """Is the registry (or, when ``replica`` is given, that one
        replica) down at ``t``?  Replica-targeted outages do not count as
        whole-registry outages and vice versa — a targeted fault is
        exactly what the other replicas are expected to absorb."""
        return any(
            f.at <= t < f.at + f.duration and f.replica == replica
            for f in self._of(RegistryOutage)
        )

    def horizon(self) -> float:
        """Time by which every fault has fully played out."""
        end = 0.0
        for f in self.faults:
            if isinstance(f, LinkFlap):
                end = max(end, f.until + f.down_for)
            elif isinstance(f, ServiceCrash):
                if f.restart_after is not None:
                    end = max(end, f.at + f.restart_after)
                else:
                    end = max(end, f.at)
            else:
                end = max(end, f.at + getattr(f, "duration", 0.0))
        return end

"""Deterministic fault injection for the dispatcher stack.

The mediated-peer world the paper targets treats hostile networks as the
normal case: links flap, residential last miles drop packets, services
crash and restart, and the registry itself can vanish.  This package
turns those conditions into data — a :class:`FaultPlan` of timed faults —
and two drivers that apply the same plan to either runtime:

- :class:`ChaosController` schedules the plan onto a simulated
  :class:`~repro.simnet.topology.Network` (link state, loss rates, host
  crashes, CPU slowdowns, registry availability), so simnet scenarios
  replay bit-identically under a seed.
- :class:`FaultyHttpClient` wraps the threaded runtime's
  :class:`~repro.rt.client.HttpClient` and injects the same plan at the
  call boundary, so the threaded ``MsgDispatcher`` is testable against
  identical fault schedules without a simulated network.
"""

from repro.chaos.plan import (
    AddedLatency,
    FaultPlan,
    LinkDown,
    LinkFlap,
    PacketLoss,
    RegistryOutage,
    ServiceCrash,
    ServiceStop,
    SlowResponder,
)
from repro.chaos.controller import ChaosController
from repro.chaos.shim import FaultyHttpClient

__all__ = [
    "AddedLatency",
    "ChaosController",
    "FaultPlan",
    "FaultyHttpClient",
    "LinkDown",
    "LinkFlap",
    "PacketLoss",
    "RegistryOutage",
    "ServiceCrash",
    "ServiceStop",
    "SlowResponder",
]

"""Real-mode fault injection: a FaultPlan-aware HTTP client wrapper.

The threaded :class:`~repro.core.msg_dispatcher.MsgDispatcher` talks to
the world through an :class:`~repro.rt.client.HttpClient`; wrapping that
client is the thinnest seam where a :class:`~repro.chaos.plan.FaultPlan`
can be applied without a simulated network.  The shim evaluates the plan
against elapsed clock time and either injects the fault (an exception or
added latency) or delegates to the inner client.  All probabilistic
draws come from the plan's seed, so a threaded test replays the same
fault decisions run after run (modulo thread scheduling).
"""

from __future__ import annotations

import random
import threading

from repro.chaos.plan import FaultPlan
from repro.errors import ConnectionRefused, ConnectionTimeout, TransportError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.transport.base import parse_http_url
from repro.util.clock import Clock, MonotonicClock


class FaultyHttpClient:
    """Wraps an :class:`HttpClient`; injects plan faults per request.

    - crashed host / downed link → :class:`ConnectionTimeout`
    - stopped service → :class:`ConnectionRefused`
    - packet loss → seeded coin flip per request; a loss raises
      :class:`TransportError` (the retry layer's problem, as in simnet)
    - added latency/jitter → the calling thread sleeps before delegating

    Plan time starts at construction (or pass ``start`` to pin it).
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        clock: Clock | None = None,
        start: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock or MonotonicClock()
        self._t0 = self.clock.now() if start is None else start
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_injected = self.metrics.counter(
            "chaos_faults_injected_total", "fault windows begun, by kind"
        )
        self.injected = 0

    # -- plan evaluation ---------------------------------------------------
    def _elapsed(self) -> float:
        return self.clock.now() - self._t0

    def _inject(self, kind: str) -> None:
        with self._lock:
            self.injected += 1
        self._m_injected.labels(kind=kind).inc()

    def _check(self, url: str) -> None:
        """Raise (or delay) according to the plan; returns on no fault."""
        endpoint, _path = parse_http_url(url)
        host = endpoint.host
        t = self._elapsed()
        if self.plan.is_crashed(host, t):
            self._inject("ServiceCrash")
            raise ConnectionTimeout(f"chaos: {host} is down")
        if self.plan.is_link_down(host, t):
            self._inject("LinkDown")
            raise ConnectionTimeout(f"chaos: link to {host} is down")
        if self.plan.is_stopped(host, endpoint.port, t):
            self._inject("ServiceStop")
            raise ConnectionRefused(
                f"chaos: nothing listening at {host}:{endpoint.port}"
            )
        rate = self.plan.loss_rate(host, t)
        if rate > 0.0:
            with self._lock:
                lost = self._rng.random() < rate
            if lost:
                self._inject("PacketLoss")
                raise TransportError(f"chaos: request to {host} lost")
        extra, jitter = self.plan.extra_latency(host, t)
        if extra > 0.0 or jitter > 0.0:
            with self._lock:
                delay = extra + self._rng.random() * jitter
            self._inject("AddedLatency")
            self.clock.sleep(delay)

    # -- HttpClient surface ------------------------------------------------
    def prepare(self, url: str, request):
        return self.inner.prepare(url, request)

    def request(self, url: str, request):
        self._check(url)
        return self.inner.request(url, request)

    def lease(self, url: str):
        self._check(url)
        return self.inner.lease(url)

    def pipeline(self, url: str, requests):
        self._check(url)
        return self.inner.pipeline(url, requests)

    def post_envelope(self, url: str, envelope):
        self._check(url)
        return self.inner.post_envelope(url, envelope)

    def call_soap(self, url: str, envelope):
        self._check(url)
        return self.inner.call_soap(url, envelope)

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "FaultyHttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

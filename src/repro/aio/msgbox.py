"""WS-MsgBox on the event loop: long polls that park, not block.

The stock :class:`~repro.msgbox.service.MsgBoxService` serves a
``take(waitSeconds=N)`` long poll by blocking the calling thread in
:meth:`MailboxStore.wait_for_message` — one held thread per firewalled
client, which is the paper's scalability wall.  This subclass keeps every
operation byte-identical on the wire but turns the wait into a parked
coroutine: ``handle`` returns an awaitable for long-poll takes (the
:class:`~repro.rt.service.SoapHttpApp` escape hatch), registers a
one-shot arrival waiter on the store, and resumes when a deposit —
possibly from another thread entirely — fires it.  Ten thousand waiting
pollers cost ten thousand suspended coroutines, not ten thousand stacks.
"""

from __future__ import annotations

import asyncio

from repro.errors import SoapError
from repro.msgbox.service import MSGBOX_NS, MsgBoxService
from repro.rt.service import RequestContext
from repro.soap import Envelope, parse_rpc_request


class AioMsgBoxService(MsgBoxService):
    """MsgBoxService whose long polls await instead of blocking.

    Mount it on an :class:`~repro.aio.server.AioHttpServer`; every
    non-long-poll operation (create/peek/destroy, deposits, immediate
    takes) runs the inherited synchronous code unchanged.
    """

    def handle(self, envelope: Envelope, ctx: RequestContext):
        pending = self._longpoll_of(envelope)
        if pending is not None:
            return self._handle_longpoll(envelope, ctx, *pending)
        return super().handle(envelope, ctx)

    def _wait_for_message(self, mailbox_id: str, timeout: float) -> bool:
        # The async path has already waited (or chose not to); the
        # inherited take must never block the loop thread.
        return True

    def _longpoll_of(self, envelope: Envelope):
        """(mailbox_id, owner_token, wait_s) when this is a long-poll
        take; None routes everything else to the sync path."""
        body = envelope.body
        if body is None or body.name.ns != MSGBOX_NS:
            return None
        try:
            call = parse_rpc_request(envelope)
        except SoapError:
            return None  # let the sync path raise its usual fault
        if call.operation != "take":
            return None
        try:
            wait_s = float(call.param("waitSeconds", "0") or "0")
        except ValueError:
            return None
        if wait_s <= 0:
            return None
        mailbox_id = call.param("mailboxId")
        if not mailbox_id:
            return None
        return mailbox_id, call.param("ownerToken"), min(wait_s, self.max_wait_seconds)

    async def _handle_longpoll(
        self,
        envelope: Envelope,
        ctx: RequestContext,
        mailbox_id: str,
        owner_token: str | None,
        wait_s: float,
    ):
        self._check_alive()
        if self.security is not None:
            # authenticate before occupying a parked slot
            self.security.check(mailbox_id, owner_token)
        await self._await_arrival(mailbox_id, wait_s)
        # _wait_for_message is a no-op here, so this take never blocks;
        # an empty result after a racing taker is the same answer the
        # threaded service gives in that race.
        return super().handle(envelope, ctx)

    async def _await_arrival(self, mailbox_id: str, timeout: float) -> bool:
        """Park until the mailbox has a message; False on timeout.

        Raises :class:`~repro.errors.MailboxNotFound` (via
        ``peek_count``) when the mailbox does not exist or is destroyed
        during the wait — destroy fires the waiters precisely so parked
        pollers observe it promptly.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            if self.store.peek_count(mailbox_id) > 0:
                return True
            remaining = deadline - loop.time()
            if remaining <= 0:
                return False
            event = asyncio.Event()

            def _fire(ev: asyncio.Event = event) -> None:
                try:
                    loop.call_soon_threadsafe(ev.set)
                except RuntimeError:
                    pass  # loop shut down mid-wait

            handle = self.store.add_arrival_waiter(mailbox_id, _fire)
            try:
                # re-check: a deposit may have landed between peek and
                # registration, in which case no waiter will ever fire
                if self.store.peek_count(mailbox_id) > 0:
                    return True
                await asyncio.wait_for(event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
            finally:
                self.store.remove_arrival_waiter(handle)

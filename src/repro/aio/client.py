"""Pooling HTTP client for the asyncio runtime.

Semantically a sibling of :class:`repro.rt.client.HttpClient`: the same
per-endpoint connection pool, the same single stale-retry on reused
connections (and deliberately *no* retry after a response timeout — the
server may still be processing, and a replay risks double delivery), the
same 503 ``Retry-After`` sleep-out, and the same
:meth:`AioConnectionLease.pipeline` burst contract with its serial
replay-tail and timeout-poisoning rules.  Only the I/O primitive differs:
coroutines over ``asyncio`` streams instead of blocking socket calls, so
the dispatcher's writer tasks share one loop thread instead of one
thread each.

The wire bytes come from the identical sans-io serializer/parser
(:mod:`repro.http.wire`) — a packet capture cannot tell the two clients
apart.
"""

from __future__ import annotations

import asyncio
import socket
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import (
    ConnectionClosed,
    ConnectionRefused,
    ConnectionTimeout,
    HttpParseError,
    ReproError,
    TransportError,
)
from repro.http import HttpRequest, HttpResponse
from repro.http.wire import ResponseParser, serialize_request, serialize_request_burst
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.transport.base import Endpoint, parse_http_url

_RECV_CHUNK = 64 * 1024


@dataclass
class _AioConn:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 - closing a dead transport is fine
            pass


class AioHttpClient:
    """Asyncio HTTP client with per-endpoint connection reuse."""

    def __init__(
        self,
        connect_timeout: float = 5.0,
        response_timeout: float = 30.0,
        pool_per_endpoint: int = 4,
        user_agent: str = "repro-aio-client/1.0",
        metrics: MetricsRegistry | None = None,
        overload_retries: int = 0,
        retry_after_cap: float = 30.0,
        nodelay: bool = True,
    ) -> None:
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self._pool_per_endpoint = pool_per_endpoint
        self._user_agent = user_agent
        self.overload_retries = overload_retries
        self.retry_after_cap = retry_after_cap
        self._nodelay = nodelay
        # No lock: every pool access happens on the loop thread, and no
        # await point sits inside a check-out/check-in sequence.
        self._pools: dict[Endpoint, list[_AioConn]] = {}
        self._closed = False
        registry = metrics if metrics is not None else default_registry()
        self._m_requests = registry.counter(
            "aio_client_requests_total",
            "HTTP exchanges completed by the asyncio client",
        )
        self._m_request_time = registry.histogram(
            "aio_client_request_seconds",
            "wall time of one asyncio client HTTP exchange",
            bucket_width=0.001,
        )
        reuse = registry.counter(
            "aio_client_conn_reuse_total", "connection checkouts, by outcome"
        )
        self._m_reuse_reused = reuse.labels(outcome="reused")
        self._m_reuse_fresh = reuse.labels(outcome="fresh")
        self._m_reuse_stale = reuse.labels(outcome="stale_retry")
        self._m_pipeline_bursts = registry.counter(
            "aio_client_pipeline_bursts_total",
            "pipelined write bursts issued on leased connections",
        )
        self._m_pipeline_replayed = registry.counter(
            "aio_client_pipeline_replayed_total",
            "pipelined requests replayed serially after a cut-short burst",
        )
        self._m_overload_waits = registry.counter(
            "aio_client_overload_waits_total",
            "503 responses the client slept out per the server's Retry-After",
        )

    # -- connection pool -------------------------------------------------
    async def _connect(self, endpoint: Endpoint) -> _AioConn:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(endpoint.host, endpoint.port),
                self.connect_timeout,
            )
        except asyncio.TimeoutError:
            raise ConnectionTimeout(f"connect to {endpoint} timed out") from None
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(f"connect to {endpoint}: {exc}") from None
        except OSError as exc:
            raise TransportError(f"connect to {endpoint}: {exc}") from None
        sock = writer.get_extra_info("socket")
        if self._nodelay and sock is not None and sock.family != socket.AF_UNIX:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        return _AioConn(reader, writer)

    async def _checkout(self, endpoint: Endpoint) -> tuple[_AioConn, bool]:
        pool = self._pools.get(endpoint)
        if pool:
            self._m_reuse_reused.inc()
            return pool.pop(), True
        self._m_reuse_fresh.inc()
        return await self._connect(endpoint), False

    def _checkin(self, endpoint: Endpoint, conn: _AioConn) -> None:
        if self._closed or conn.writer.is_closing():
            conn.close()
            return
        pool = self._pools.setdefault(endpoint, [])
        if len(pool) < self._pool_per_endpoint:
            pool.append(conn)
            return
        conn.close()

    def close(self) -> None:
        self._closed = True
        conns = [c for pool in self._pools.values() for c in pool]
        self._pools.clear()
        for c in conns:
            c.close()

    # -- request execution -------------------------------------------------
    def prepare(self, url: str, request: HttpRequest) -> Endpoint:
        """Point ``request`` at ``url``: target, Host, User-Agent."""
        endpoint, path = parse_http_url(url)
        request.target = path
        request.headers.set("Host", str(endpoint))
        if "User-Agent" not in request.headers:
            request.headers.set("User-Agent", self._user_agent)
        return endpoint

    async def request(self, url: str, request: HttpRequest) -> HttpResponse:
        """One exchange; single stale retry; optional 503 sleep-out."""
        endpoint = self.prepare(url, request)
        response = await self._request_prepared(endpoint, request)
        for _ in range(self.overload_retries):
            if response.status != 503:
                break
            delay = self._retry_after_of(response)
            if delay is None:
                break
            self._m_overload_waits.inc()
            await asyncio.sleep(min(delay, self.retry_after_cap))
            response = await self._request_prepared(endpoint, request)
        return response

    @staticmethod
    def _retry_after_of(response: HttpResponse) -> float | None:
        raw = response.headers.get("Retry-After")
        if raw is None:
            return None
        try:
            delay = float(raw.strip())
        except ValueError:
            return None
        return delay if delay >= 0 else None

    async def _request_prepared(
        self, endpoint: Endpoint, request: HttpRequest
    ) -> HttpResponse:
        loop = asyncio.get_running_loop()
        t_start = loop.time()
        conn, reused = await self._checkout(endpoint)
        try:
            response = await self._exchange(endpoint, conn, request)
            self._m_requests.inc()
            self._m_request_time.observe(loop.time() - t_start)
            return response
        except ConnectionTimeout:
            # Not retried, even on a reused connection: the server may
            # still be processing the request (double-delivery risk).
            conn.close()
            raise
        except (ConnectionClosed, HttpParseError, TransportError):
            conn.close()
            if not reused:
                raise
        # stale pooled connection: one retry on a fresh one
        self._m_reuse_stale.inc()
        conn = await self._connect(endpoint)
        try:
            response = await self._exchange(endpoint, conn, request)
            self._m_requests.inc()
            self._m_request_time.observe(loop.time() - t_start)
            return response
        except BaseException:
            conn.close()
            raise

    async def _recv(self, conn: _AioConn) -> bytes:
        try:
            return await asyncio.wait_for(
                conn.reader.read(_RECV_CHUNK), self.response_timeout
            )
        except asyncio.TimeoutError:
            raise ConnectionTimeout(
                f"no response within {self.response_timeout}s"
            ) from None
        except OSError as exc:
            raise ConnectionClosed(str(exc)) from None

    async def _send(self, conn: _AioConn, data: bytes) -> None:
        try:
            conn.writer.write(data)
            await conn.writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ConnectionClosed(str(exc)) from None

    async def _exchange(
        self, endpoint: Endpoint, conn: _AioConn, request: HttpRequest
    ) -> HttpResponse:
        await self._send(conn, serialize_request(request))
        parser = ResponseParser()
        if request.method == "HEAD":
            parser.expect_no_body = True
        while True:
            message = parser.next_message()
            if message is not None:
                response: HttpResponse = message  # type: ignore[assignment]
                if response.keep_alive and parser.idle:
                    self._checkin(endpoint, conn)
                else:
                    conn.close()
                return response
            data = await self._recv(conn)
            if not data:
                parser.feed_eof()
                tail = parser.next_message()
                if tail is not None:
                    conn.close()
                    return tail  # type: ignore[return-value]
                raise ConnectionClosed("server closed before full response")
            parser.feed(data)

    # -- connection leases & pipelining ------------------------------------
    async def lease(self, url: str) -> "AioConnectionLease":
        """Check a connection to ``url``'s endpoint out for exclusive use."""
        endpoint, _path = parse_http_url(url)
        conn, reused = await self._checkout(endpoint)
        return AioConnectionLease(self, endpoint, conn, reused)

    async def pipeline(
        self, url: str, requests: Sequence[HttpRequest]
    ) -> "list[HttpResponse | ReproError]":
        """Send ``requests`` to ``url`` as one pipelined burst."""
        prepared = list(requests)
        for req in prepared:
            self.prepare(url, req)
        lease = await self.lease(url)
        try:
            return await lease.pipeline(prepared)
        finally:
            lease.release()


class AioConnectionLease:
    """Exclusive checkout of one asyncio connection to an endpoint.

    Same burst contract as :class:`repro.rt.client.ConnectionLease`:
    one write burst, responses read in order; a cut-short burst replays
    its undelivered tail serially (once each); a response timeout poisons
    the tail instead of replaying it.
    """

    def __init__(
        self,
        client: AioHttpClient,
        endpoint: Endpoint,
        conn: _AioConn,
        reused: bool,
    ) -> None:
        self._client = client
        self.endpoint = endpoint
        self._conn: _AioConn | None = conn
        self.reused = reused
        self._healthy = True
        self._released = False

    # -- lifecycle ---------------------------------------------------------
    def release(self) -> None:
        if self._released:
            return
        self._released = True
        conn, self._conn = self._conn, None
        if conn is None:
            return
        if self._healthy:
            self._client._checkin(self.endpoint, conn)
        else:
            conn.close()

    def _demote(self) -> None:
        self._healthy = False
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    # -- pipelined burst ---------------------------------------------------
    async def pipeline(
        self, requests: "Iterable[HttpRequest]"
    ) -> "list[HttpResponse | ReproError]":
        if self._released:
            raise ReproError("pipeline on a released lease")
        batch = list(requests)
        if not batch:
            return []
        results: "list[HttpResponse | ReproError | None]" = [None] * len(batch)
        self._client._m_pipeline_bursts.inc()
        try:
            await self._client._send(self._conn, serialize_request_burst(batch))
        except (ConnectionClosed, TransportError):
            # nothing read back yet: the whole burst is the tail
            self._demote()
            return await self._replay_tail(batch, results, 0)
        parser = ResponseParser()
        done = 0
        while done < len(batch):
            message = parser.next_message()
            if message is not None:
                results[done] = message
                done += 1
                self._client._m_requests.inc()
                if not message.keep_alive:
                    # server demotes us to serial: no more responses will
                    # arrive on this connection
                    self._demote()
                    return await self._replay_tail(batch, results, done)
                continue
            try:
                data = await self._client._recv(self._conn)
            except ConnectionTimeout as exc:
                # the tail may still be processed: poison, don't replay
                self._demote()
                for i in range(done, len(batch)):
                    results[i] = exc
                return results  # type: ignore[return-value]
            except (ConnectionClosed, TransportError):
                self._demote()
                return await self._replay_tail(batch, results, done)
            if not data:
                tail = self._finish_on_eof(parser)
                if tail is not None and done < len(batch):
                    results[done] = tail
                    done += 1
                    self._client._m_requests.inc()
                self._demote()
                return await self._replay_tail(batch, results, done)
            try:
                parser.feed(data)
            except HttpParseError:
                self._demote()
                return await self._replay_tail(batch, results, done)
        if not parser.idle:
            # trailing bytes past the last response: not a clean boundary
            self._demote()
        return results  # type: ignore[return-value]

    @staticmethod
    def _finish_on_eof(parser: ResponseParser) -> HttpResponse | None:
        try:
            parser.feed_eof()
        except HttpParseError:
            return None
        return parser.next_message()  # type: ignore[return-value]

    async def _replay_tail(
        self,
        batch: "list[HttpRequest]",
        results: "list[HttpResponse | ReproError | None]",
        start: int,
    ) -> "list[HttpResponse | ReproError]":
        """Serial fallback for the undelivered tail, one attempt each."""
        if start < len(batch):
            self._client._m_pipeline_replayed.inc(len(batch) - start)
        for i in range(start, len(batch)):
            try:
                results[i] = await self._client._request_prepared(
                    self.endpoint, batch[i]
                )
            except ReproError as exc:
                results[i] = exc
        return results  # type: ignore[return-value]

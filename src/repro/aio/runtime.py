"""Loop-thread embedding: run the asyncio runtime inside a sync program.

The threaded runtime, the test suite, and the benchmarks are synchronous
programs; :class:`AioLoopThread` gives them one dedicated thread running
an event loop, plus a blocking ``run()`` bridge for coroutines.  This is
how a deployment hosts the single-threaded aio server next to threaded
components — and how the rt/aio-parameterized tests drive both backends
through the same synchronous assertions.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Awaitable, TypeVar

T = TypeVar("T")


class AioLoopThread:
    """A daemon thread owning one asyncio event loop.

    ``run(coro)`` submits a coroutine to the loop and blocks the calling
    thread for its result — never call it *from* the loop thread (that
    would be a deadlock by construction; await the coroutine instead).
    """

    def __init__(self, name: str = "aio-loop") -> None:
        self._name = name
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "AioLoopThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._main, name=self._name, daemon=True
        )
        self._thread.start()
        self._started.wait()
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._started.set()
        try:
            loop.run_forever()
        finally:
            # drain cancellations so transports close cleanly
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, timeout: float = 5.0) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:
            pass  # already stopped
        thread.join(timeout)
        self._loop = None
        self._thread = None
        self._started.clear()

    def __enter__(self) -> "AioLoopThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- the bridge ---------------------------------------------------------
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("loop thread is not running")
        return self._loop

    def run(self, coro: "Awaitable[T]", timeout: float | None = 30.0) -> T:
        """Run a coroutine on the loop; block this thread for the result."""
        if self._loop is None:
            raise RuntimeError("loop thread is not running")
        if threading.current_thread() is self._thread:
            raise RuntimeError("run() called from the loop thread")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TimeoutError(
                f"coroutine did not finish within {timeout}s"
            ) from None

    def call_soon(self, callback, *args) -> None:
        """Schedule a plain callable on the loop from any thread."""
        self.loop.call_soon_threadsafe(callback, *args)

"""The asyncio runtime backend: C10k on one core.

Third runtime over the shared sans-io wire protocol (after the threaded
``repro.rt`` and the discrete-event ``repro.simnet``): a single-threaded
event loop multiplexes every connection, so the thread-per-connection
ceiling the paper hit — WsThreads/CxThreads stacks exhausting the heap
under firewalled long-poll clients — disappears.  The SOAP application
layer (:class:`~repro.rt.service.SoapHttpApp`), the envelope fast path,
the journal, and the whole observability plane run on the loop verbatim;
only the I/O substrate changes.

- :class:`AioHttpServer` — accept loop + per-connection tasks.
- :class:`AioHttpClient` / :class:`AioConnectionLease` — pooled,
  pipelining client (semantic twin of the rt client).
- :class:`AioMsgDispatcher` — the MSG-Dispatcher on loop tasks.
- :class:`AioMsgBoxService` — WS-MsgBox whose long polls park coroutines.
- :class:`AioLoopThread` — embed the loop in a synchronous program.
"""

from repro.aio.client import AioConnectionLease, AioHttpClient
from repro.aio.dispatcher import AioMsgDispatcher
from repro.aio.msgbox import AioMsgBoxService
from repro.aio.runtime import AioLoopThread
from repro.aio.server import AioHttpServer

__all__ = [
    "AioConnectionLease",
    "AioHttpClient",
    "AioHttpServer",
    "AioLoopThread",
    "AioMsgBoxService",
    "AioMsgDispatcher",
]

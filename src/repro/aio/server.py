"""Event-loop HTTP/1.1 server: one task per connection, no thread per
connection.

This is the C10k half of the asyncio runtime.  The threaded
:class:`~repro.rt.server.HttpServer` binds each accepted connection to a
pooled worker thread for its whole lifetime — exactly the
thread-per-connection model whose stacks OOM'd the paper's WS-MsgBox
once enough firewalled clients held long-poll connections open.  Here an
accepted connection costs one coroutine (~KB, not a thread stack), so
ten thousand idle long-pollers multiplex onto a single loop thread.

The wire protocol is the same sans-io parser/serializer the threaded and
simulated runtimes use (:mod:`repro.http.wire`), and the handler contract
is :meth:`repro.rt.service.SoapHttpApp.handle_request` unchanged — with
one extension: a handler may return an *awaitable* response (the
long-poll escape hatch), which this server awaits on the loop instead of
blocking.
"""

from __future__ import annotations

import asyncio
import inspect
import socket
from typing import Callable

from repro.errors import HttpParseError
from repro.http import HttpResponse
from repro.http.wire import RequestParser, serialize_response
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.transport.base import Endpoint

_RECV_CHUNK = 64 * 1024


class AioHttpServer:
    """Serve HTTP on an asyncio event loop (connection-multiplexing).

    Requests on one connection are served strictly serially, so a
    pipelining client reads its responses in request order — the same
    ordering contract the threaded server's per-connection worker
    provides, required by the dispatcher's pipelined drain bursts.
    """

    def __init__(
        self,
        handler: Callable,
        host: str = "127.0.0.1",
        port: int = 0,
        keep_alive_timeout: float = 15.0,
        name: str = "aio-http",
        metrics: MetricsRegistry | None = None,
        nodelay: bool = True,
        backlog: int = 512,
        reuse_port: bool = False,
        sock: socket.socket | None = None,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = port
        self._keep_alive_timeout = keep_alive_timeout
        self._nodelay = nodelay
        self._backlog = backlog
        self._reuse_port = reuse_port
        self._sock = sock
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._running = False
        # Single-writer counters: every increment happens on the loop
        # thread, so plain ints are exact (no GIL-race caveat here).
        self._connections_served = 0
        self._requests_served = 0
        self._open_connections = 0
        registry = metrics if metrics is not None else default_registry()
        registry.gauge(
            "aio_http_connections_served", "connections accepted, by server"
        ).labels(server=name).set_function(lambda: self._connections_served)
        registry.gauge(
            "aio_http_requests_served", "requests answered, by server"
        ).labels(server=name).set_function(lambda: self._requests_served)
        registry.gauge(
            "aio_http_open_connections",
            "connections currently multiplexed on the loop, by server",
        ).labels(server=name).set_function(lambda: self._open_connections)

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "AioHttpServer":
        if self._sock is not None:
            # pre-bound socket handed in by a supervisor (fd inheritance)
            self._server = await asyncio.start_server(
                self._serve_connection, sock=self._sock,
                backlog=self._backlog,
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, self._host, self._port,
                backlog=self._backlog, reuse_port=self._reuse_port or None,
            )
        self._running = True
        return self

    async def stop(self) -> None:
        self._running = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    async def __aenter__(self) -> "AioHttpServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def endpoint(self) -> Endpoint:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return Endpoint(host, port)

    @property
    def url(self) -> str:
        return f"http://{self.endpoint}"

    # -- metrics ----------------------------------------------------------
    @property
    def connections_served(self) -> int:
        return self._connections_served

    @property
    def requests_served(self) -> int:
        return self._requests_served

    @property
    def open_connections(self) -> int:
        return self._open_connections

    # -- internals ----------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._connections_served += 1
        self._open_connections += 1
        sock = writer.get_extra_info("socket")
        if self._nodelay and sock is not None and sock.family != socket.AF_UNIX:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        peer = writer.get_extra_info("peername")
        peer_str = f"{peer[0]}:{peer[1]}" if peer else None
        parser = RequestParser()
        try:
            while self._running:
                request = await self._read_request(reader, parser)
                if request is None or not self._running:
                    return  # idle expiry, client EOF, or server stopped
                response = self._handler(request, peer_str)
                if inspect.isawaitable(response):
                    # long-poll escape hatch: the handler parked itself on
                    # the loop instead of blocking a thread
                    response = await response
                assert isinstance(response, HttpResponse)
                if not request.keep_alive:
                    response.headers.set("Connection", "close")
                writer.write(serialize_response(response))
                await writer.drain()
                self._requests_served += 1
                if not request.keep_alive or not response.keep_alive:
                    return
        except (
            HttpParseError,
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            return  # drop the connection; client sees reset/EOF
        except asyncio.CancelledError:
            # server shutdown cancelling a parked connection; exiting
            # normally keeps asyncio.streams' done-callback from logging
            # a spurious traceback per connection
            return
        finally:
            self._open_connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, parser: RequestParser
    ):
        while True:
            message = parser.next_message()
            if message is not None:
                return message
            try:
                data = await asyncio.wait_for(
                    reader.read(_RECV_CHUNK), self._keep_alive_timeout
                )
            except asyncio.TimeoutError:
                return None  # idle keep-alive expiry
            if not data:
                if parser.idle:
                    return None
                raise HttpParseError("connection closed mid-request")
            parser.feed(data)

"""MSG-Dispatcher on an event loop: tasks where the paper had thread pools.

:class:`AioMsgDispatcher` subclasses :class:`~repro.core.MsgDispatcher`
and replaces only the *execution* substrate:

- the CxThread pool becomes one routing task draining the (unchanged,
  thread-safe) accept queue, woken by the queue's listener hook instead
  of blocking in ``get()``;
- each WsThread becomes a per-destination writer task, created and
  retired under the same ``ws_threads`` slot budget and the same
  ``destination_idle_ttl``;
- the hold pump becomes a task driving the store's split-phase claim API
  (:meth:`take_due` / :meth:`complete` / :meth:`reschedule`);
- delivery awaits an :class:`~repro.aio.client.AioHttpClient` instead of
  blocking on the threaded one.

Everything semantic is inherited verbatim: admission shedding and the
journal-before-ack protocol (``_admit``), routing/rewriting/correlation
(``_route_one``), the breaker gate, the batch settle bookkeeping, hold
parking, dead-letter taxonomy, metrics, spans, and flight-recorder
events.  Because admission runs synchronous, thread-safe code, ``handle``
can be called from *any* thread — the HTTP edge may live on the loop
(:class:`~repro.aio.server.AioHttpServer`) or on threads, and recovery /
``drain()`` / ``stop()`` work from the outside exactly as they do for
the threaded dispatcher.

Construct it on the loop (inside a coroutine): the worker tasks bind to
``asyncio.get_running_loop()``.
"""

from __future__ import annotations

import asyncio

from repro.core.msg_dispatcher import MsgDispatcher, _Destination, _make_post
from repro.core.routing import is_hold_resolve_target, split_hold_resolve_target
from repro.errors import ReproError, TransportError
from repro.obs.trace import extract_trace
from repro.soap import parse_envelope
from repro.reliable.breaker import BreakerOpenError
from repro.util.concurrency import QueueClosed


class AioMsgDispatcher(MsgDispatcher):
    """The asynchronous dispatcher, multiplexed on one event loop."""

    def _start_workers(self, hold_pump_interval: float) -> None:
        self._loop = asyncio.get_running_loop()
        self._tasks: set[asyncio.Task] = set()
        self._dest_events: dict[str, asyncio.Event] = {}
        self._accept_event = asyncio.Event()
        self._accept_queue.add_listener(self._wake(self._accept_event))
        self._spawn(self._acx_loop(), name="aio-cx")
        if self.hold_store is not None:
            self._spawn(
                self._ahold_pump_loop(hold_pump_interval), name="aio-hold-pump"
            )

    # -- plumbing ----------------------------------------------------------
    def _wake(self, event: asyncio.Event):
        """A listener callback that sets ``event`` from any thread."""
        loop = self._loop

        def _set() -> None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed during shutdown

        return _set

    def _spawn(self, coro, name: str) -> asyncio.Task:
        task = self._loop.create_task(coro, name=name)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def stop(self, drain: bool = False, timeout: float = 10.0) -> bool:
        """Same contract as the base; additionally cancels loop tasks.

        Call from *off* the loop thread (queue closing wakes the tasks;
        the drain poll would deadlock the loop it is waiting on).
        """
        drained = super().stop(drain=drain, timeout=timeout)
        loop = getattr(self, "_loop", None)
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._cancel_tasks)
            except RuntimeError:
                pass
        return drained

    def _cancel_tasks(self) -> None:
        for task in list(self._tasks):
            task.cancel()

    # -- routing task (the CxThread pool) ----------------------------------
    async def _acx_loop(self) -> None:
        while True:
            try:
                work = self._accept_queue.get(timeout=0)
            except TimeoutError:
                await self._accept_event.wait()
                self._accept_event.clear()
                continue
            except QueueClosed:
                return
            # _route_one → _enqueue → _ensure_worker spawns writer tasks
            self._process_accepted(work)
            # one queue entry per scheduler turn: a routing storm must not
            # starve the writer tasks (or 10k pollers) sharing the loop
            await asyncio.sleep(0)

    # -- writer tasks (the WsThread pool) -----------------------------------
    def _ensure_worker(self, dest: _Destination) -> None:
        # runs on the loop thread only (_enqueue is called from the
        # routing task); the base thread variant is fully overridden
        if dest.thread is not None and not dest.thread.done():
            return
        if not self._ws_slots.acquire(blocking=False):
            # all writer slots busy; an exiting task adopts this
            # destination via _adopt_orphan
            return
        event = self._dest_events.get(dest.endpoint_key)
        if event is None:
            event = asyncio.Event()
            self._dest_events[dest.endpoint_key] = event
            dest.queue.add_listener(self._wake(event))
        event.set()  # there is work now; don't park before checking
        dest.thread = self._spawn(
            self._aws_loop(dest, event), name=f"aio-ws-{dest.endpoint_key}"
        )

    def _adopt_orphan(self) -> None:
        candidates = [
            d
            for d in self._destinations.values()
            if len(d.queue) and (d.thread is None or d.thread.done())
        ]
        for d in candidates:
            self._ensure_worker(d)

    async def _aws_loop(self, dest: _Destination, event: asyncio.Event) -> None:
        try:
            while self._running:
                try:
                    batch = dest.queue.get_batch(self.config.batch_size, timeout=0)
                except TimeoutError:
                    event.clear()
                    if len(dest.queue):
                        continue  # raced a put; don't park on a set flag
                    try:
                        await asyncio.wait_for(
                            event.wait(), self.config.destination_idle_ttl
                        )
                    except asyncio.TimeoutError:
                        return  # idle: release the slot
                    continue
                except QueueClosed:
                    return
                if self.config.pipeline_batches and len(batch) > 1:
                    await self._adeliver_batch(batch)
                else:
                    for item in batch:
                        await self._adeliver(item)
        finally:
            dest.thread = None
            self._ws_slots.release()
            self._adopt_orphan()

    # -- delivery (await the wire, reuse every bookkeeping hook) ------------
    async def _adeliver(self, item) -> None:
        if self.breakers is not None and not self.breakers.allow(
            self._endpoint_key(item.target_url)
        ):
            self._breaker_block(item)
            return
        self._note_dequeued(item)
        item.attempts += 1
        t_send = self.clock.now()
        try:
            response = await self.client.request(
                item.target_url, _make_post(item.envelope_bytes)
            )
            if response.status >= 400:
                raise TransportError(
                    f"HTTP {response.status} from {item.target_url}"
                )
        except (TransportError, ReproError):
            self._record_outcome(item.target_url, False)
            await self._ahandle_delivery_failure(item)
            return
        self._record_outcome(item.target_url, True)
        self._finish_delivery(
            item, response, t_send, self.clock.now(),
            parent_span_id=item.parent_span_id,
        )

    async def _adeliver_batch(self, batch: list) -> None:
        if not self._batch_admitted(batch):
            return
        requests = self._prepare_batch(batch)
        t_burst = self.clock.now()
        try:
            lease = await self.client.lease(batch[0].target_url)
        except (TransportError, ReproError):
            # no connection at all: every item takes its own failure path
            self._record_outcome(batch[0].target_url, False)
            for item in batch:
                await self._ahandle_delivery_failure(item)
            return
        try:
            outcomes = await lease.pipeline(requests)
        finally:
            lease.release()
        t_done = self.clock.now()
        for item in self._settle_batch(batch, outcomes, t_burst, t_done):
            await self._ahandle_delivery_failure(item)

    async def _ahandle_delivery_failure(self, item) -> None:
        """Non-blocking twin of ``_handle_delivery_failure``: the backoff
        sleep yields the loop instead of occupying it."""
        retry = self.config.retry
        if retry is not None and retry.should_retry(item.attempts):
            await asyncio.sleep(retry.delay_before(item.attempts + 1))
            self._requeue_retry(item)
        else:
            self._fail_no_retry(item)

    # -- hold pump task ------------------------------------------------------
    async def _ahold_pump_loop(self, interval: float) -> None:
        while self._running:
            try:
                await self._apump_hold()
            except Exception:  # noqa: BLE001 - keep the maintenance task up
                self.counters.inc("internal_errors")
            await asyncio.sleep(interval)

    async def _apump_hold(self) -> None:
        """One redelivery sweep via the store's split-phase claim API
        (same protocol :meth:`HoldRetryStore.pump` drives, awaited)."""
        now = self.clock.now()
        for msg in self.hold_store.take_due(now):
            try:
                await self._adeliver_held(msg)
            except (ReproError, BreakerOpenError):
                self.hold_store.reschedule(msg.message_id, now)
                continue
            self.hold_store.complete(msg.message_id)

    async def _adeliver_held(self, msg) -> None:
        """Awaitable twin of :meth:`MsgDispatcher.deliver_held`."""
        if is_hold_resolve_target(msg.target_url):
            # parked pre-resolution (registry was unavailable): run the
            # routing pass again; RegistryUnavailable propagates and the
            # store reschedules (routing itself is non-blocking, so the
            # inherited synchronous _route_one is safe on the loop)
            envelope = parse_envelope(
                msg.envelope_bytes, counter=self._m_fastpath,
                fast=self.config.fast_path,
            )
            self._route_one(
                envelope, split_hold_resolve_target(msg.target_url),
                trace=extract_trace(envelope), from_hold=True,
            )
            self.counters.inc("held_redelivered")
            return
        key = self._endpoint_key(msg.target_url)
        if self.breakers is not None and not self.breakers.allow(key):
            raise BreakerOpenError(f"breaker open for {key}")
        try:
            response = await self.client.request(
                msg.target_url, _make_post(msg.envelope_bytes)
            )
            if response.status >= 400:
                raise TransportError(
                    f"HTTP {response.status} from {msg.target_url}"
                )
        except (TransportError, ReproError):
            if self.breakers is not None:
                self.breakers.record(key, False)
            raise
        if self.breakers is not None:
            self.breakers.record(key, True)
        self.counters.inc("held_redelivered")

    # -- introspection -------------------------------------------------------
    def active_destinations(self) -> int:
        with self._lock:
            return sum(
                1
                for d in self._destinations.values()
                if d.thread is not None and not d.thread.done()
            )

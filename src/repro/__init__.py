"""repro — a full reproduction of *Asynchronous Peer-to-Peer Web Services
and Firewalls* (Caromel, di Costanzo, Gannon, Slominski — IPDPS 2005).

The package rebuilds the paper's entire system in Python:

- **WS-Dispatcher** — the intermediary that lets Web Service peers behind
  firewalls interact: :class:`~repro.core.rpc_dispatcher.RpcDispatcher`
  (SOAP-aware forwarding proxy) and
  :class:`~repro.core.msg_dispatcher.MsgDispatcher` (asynchronous
  WS-Addressing router with CxThread/WsThread pools).
- **WS-MsgBox** — the post-office mailbox for clients with no network
  endpoint (:mod:`repro.msgbox`), including the paper's §4.3.2
  thread-explosion bug as a reproducible mode.
- **Registry** — logical→physical service naming (:mod:`repro.core.registry`).
- **The whole substrate**, from scratch: XML (:mod:`repro.xmlmini`),
  SOAP 1.1/1.2 (:mod:`repro.soap`), WS-Addressing (:mod:`repro.wsa`),
  HTTP/1.1 wire protocol (:mod:`repro.http`), threaded runtime
  (:mod:`repro.rt`), and a deterministic discrete-event network simulator
  (:mod:`repro.simnet`) that recreates the paper's trans-Atlantic testbed.
- **Future work, implemented**: load balancing over dispatcher farms,
  single sign-on at the dispatcher, hold/retry reliable delivery, mailbox
  owner tokens (:mod:`repro.core.loadbalance`, :mod:`repro.core.sso`,
  :mod:`repro.reliable`, :mod:`repro.msgbox.security`).

Quick taste (see ``examples/quickstart.py`` for the full tour)::

    from repro.core import ServiceRegistry, RpcDispatcher
    from repro.rt import HttpClient, HttpServer, SoapHttpApp
    from repro.transport import InprocNetwork
    from repro.workload import EchoService, make_echo_request
    from repro.soap import parse_rpc_response

    net = InprocNetwork()
    app = SoapHttpApp(); app.mount("/echo", EchoService())
    HttpServer(net.listen("ws:9000"), app.handle_request).start()

    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    wsd = RpcDispatcher(registry, HttpClient(net))
    HttpServer(net.listen("wsd:8000"), wsd.handle_request).start()

    client = HttpClient(net)
    reply = client.call_soap("http://wsd:8000/rpc/echo", make_echo_request())
    print(parse_rpc_response(reply).result("return"))
"""

__version__ = "1.0.0"

from repro import errors
from repro.core import (
    MsgDispatcher,
    MsgDispatcherConfig,
    RpcDispatcher,
    ServiceRegistry,
)
from repro.msgbox import MailboxStore, MsgBoxClient, MsgBoxService
from repro.soap import Envelope
from repro.wsa import AddressingHeaders, EndpointReference

__all__ = [
    "__version__",
    "errors",
    "ServiceRegistry",
    "RpcDispatcher",
    "MsgDispatcher",
    "MsgDispatcherConfig",
    "MsgBoxService",
    "MsgBoxClient",
    "MailboxStore",
    "Envelope",
    "AddressingHeaders",
    "EndpointReference",
]

"""Result containers and plain-text rendering for experiment runs.

The benchmark harness prints the same rows/series the paper's figures
plot; :func:`render_table` and :func:`render_ascii_plot` keep the output
readable in a terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.stats import OnlineStats


@dataclass
class RunResult:
    """Statistics of one test-client run at a fixed client count."""

    clients: int
    duration: float
    transmitted: int = 0
    not_sent: int = 0
    errors: int = 0
    latency: OnlineStats = field(default_factory=OnlineStats)

    @property
    def attempted(self) -> int:
        return self.transmitted + self.not_sent

    @property
    def per_minute(self) -> float:
        """Messages per minute — the y-axis of Figures 5 and 6."""
        if self.duration <= 0:
            return 0.0
        return self.transmitted * 60.0 / self.duration

    @property
    def loss_ratio(self) -> float:
        total = self.attempted
        return self.not_sent / total if total else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "clients": self.clients,
            "transmitted": self.transmitted,
            "not_sent": self.not_sent,
            "errors": self.errors,
            "msgs_per_min": round(self.per_minute, 1),
            "mean_latency_ms": round(self.latency.mean * 1000, 2),
        }


@dataclass
class Series:
    """One labelled curve: client counts → run results."""

    label: str
    results: list[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.results.append(result)

    def xs(self) -> list[int]:
        return [r.clients for r in self.results]

    def per_minute(self) -> list[float]:
        return [r.per_minute for r in self.results]

    def transmitted(self) -> list[int]:
        return [r.transmitted for r in self.results]

    def not_sent(self) -> list[int]:
        return [r.not_sent for r in self.results]


def render_table(
    series_list: list[Series],
    value: str = "per_minute",
    title: str = "",
) -> str:
    """Tab-separated table: one row per client count, one column per series."""
    getter = {
        "per_minute": lambda r: f"{r.per_minute:.0f}",
        "transmitted": lambda r: str(r.transmitted),
        "not_sent": lambda r: str(r.not_sent),
        "loss_ratio": lambda r: f"{r.loss_ratio:.3f}",
    }[value]
    xs = sorted({x for s in series_list for x in s.xs()})
    lines = []
    if title:
        lines.append(f"# {title} [{value}]")
    lines.append("clients\t" + "\t".join(s.label for s in series_list))
    for x in xs:
        row = [str(x)]
        for s in series_list:
            hit = next((r for r in s.results if r.clients == x), None)
            row.append(getter(hit) if hit is not None else "-")
        lines.append("\t".join(row))
    return "\n".join(lines)


def render_ascii_plot(
    series_list: list[Series],
    value: str = "per_minute",
    width: int = 60,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Rough horizontal-bar plot, one block per series per x value."""
    getter = {
        "per_minute": lambda r: r.per_minute,
        "transmitted": lambda r: float(r.transmitted),
        "not_sent": lambda r: float(r.not_sent),
    }[value]
    rows: list[tuple[int, str, float]] = []
    for s in series_list:
        for r in s.results:
            rows.append((r.clients, s.label, getter(r)))
    if not rows:
        return "(no data)"
    values = [v for _, _, v in rows]
    top = max(values) or 1.0

    def scale(v: float) -> int:
        if log_y:
            if v <= 0:
                return 0
            return int(width * math.log10(1 + v) / math.log10(1 + top))
        return int(width * v / top)

    lines = [f"# {title} [{value}]{' (log)' if log_y else ''}"] if title else []
    label_w = max(len(lbl) for _, lbl, _ in rows)
    for clients, label, v in sorted(rows, key=lambda t: (t[0], t[1])):
        bar = "#" * scale(v)
        lines.append(f"{clients:>6} {label:<{label_w}} |{bar} {v:.0f}")
    return "\n".join(lines)

"""Threaded ramp-up test client (paper §4.3).

Runs N concurrent client threads, each sending echo requests as fast as
possible for a fixed duration, and aggregates "how many calls were made"
— transmitted vs not-sent — like the paper's test client.  This drives
the threaded runtime; the WAN-scale figure experiments use the simulated
twin (:mod:`repro.simnet`-based harness in :mod:`repro.experiments`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError, SoapFaultError, TransportError
from repro.rt.client import HttpClient
from repro.soap import Envelope
from repro.transport.base import Connector
from repro.util.stats import OnlineStats
from repro.workload.echo import make_echo_request
from repro.workload.results import RunResult


@dataclass
class RampConfig:
    """One run: client count, duration, and connection behaviour."""

    clients: int = 10
    duration: float = 1.0
    connect_timeout: float = 2.0
    response_timeout: float = 5.0
    #: optional per-request pacing (seconds between sends per client)
    think_time: float = 0.0


class RampTestClient:
    """Ramping echo load generator for the threaded runtime."""

    def __init__(
        self,
        connector: Connector,
        target_url: str,
        make_envelope: Callable[[], Envelope] | None = None,
    ) -> None:
        self.connector = connector
        self.target_url = target_url
        self.make_envelope = make_envelope or make_echo_request

    def run(self, config: RampConfig) -> RunResult:
        """Run one measurement at ``config.clients`` concurrent clients."""
        result = RunResult(clients=config.clients, duration=config.duration)
        lock = threading.Lock()
        start_barrier = threading.Barrier(config.clients + 1)
        stop_at = [0.0]

        def client_loop() -> None:
            http = HttpClient(
                self.connector,
                connect_timeout=config.connect_timeout,
                response_timeout=config.response_timeout,
                pool_per_endpoint=1,
            )
            local_tx = 0
            local_lost = 0
            local_err = 0
            local_latency = OnlineStats()
            try:
                start_barrier.wait(timeout=10)
            except threading.BrokenBarrierError:
                return
            while time.monotonic() < stop_at[0]:
                envelope = self.make_envelope()
                t0 = time.monotonic()
                try:
                    reply = http.call_soap(self.target_url, envelope)
                    if reply is not None and reply.is_fault():
                        local_err += 1
                    else:
                        local_tx += 1
                        local_latency.add(time.monotonic() - t0)
                except TransportError:
                    local_lost += 1
                except (SoapFaultError, ReproError):
                    local_err += 1
                if config.think_time > 0:
                    time.sleep(config.think_time)
            http.close()
            with lock:
                result.transmitted += local_tx
                result.not_sent += local_lost
                result.errors += local_err
                result.latency.merge(local_latency)

        threads = [
            threading.Thread(target=client_loop, name=f"ramp-{i}", daemon=True)
            for i in range(config.clients)
        ]
        for t in threads:
            t.start()
        stop_at[0] = time.monotonic() + config.duration
        start_barrier.wait(timeout=10)
        for t in threads:
            t.join(timeout=config.duration + 15)
        return result

    def sweep(self, client_counts: list[int], duration: float) -> list[RunResult]:
        """Ramp across client counts (one RunResult per count)."""
        return [
            self.run(RampConfig(clients=n, duration=duration))
            for n in client_counts
        ]

"""Echo web service — the paper's test workload.

"Essentially it is very similar to the ping command.  We estimate the
size of our test SOAP/HTTP message is about 220 bytes for HTTP header and
263 bytes for the XML message which makes a total of 483 bytes."

:func:`make_echo_request` produces an RPC echo whose XML body is padded to
exactly 263 bytes; :func:`make_echo_message` is the WS-Addressing variant
used in messaging mode (same body, addressing headers on top).
"""

from __future__ import annotations

import threading

from repro.obs.trace import TraceStore, default_trace_store, extract_trace, propagate_trace
from repro.rt.client import HttpClient
from repro.rt.service import RequestContext
from repro.util.clock import Clock, MonotonicClock
from repro.soap import (
    Envelope,
    RpcRequest,
    RpcResponse,
    build_rpc_request,
    build_rpc_response,
    parse_rpc_request,
)
from repro.util.ids import IdGenerator
from repro.wsa import AddressingHeaders, EndpointReference, make_reply_headers

ECHO_NS = "urn:repro:echo"

#: XML body size target from the paper (bytes, including XML declaration).
PAPER_XML_BYTES = 263
#: Total message estimate from the paper (HTTP header + XML body).
PAPER_TOTAL_BYTES = 483


def _padded_payload(target_bytes: int) -> str:
    """Payload text sizing the serialized RPC envelope to ``target_bytes``."""
    probe = build_rpc_request(RpcRequest(ECHO_NS, "echo", [("text", "")]))
    overhead = len(probe.to_bytes())
    pad = max(0, target_bytes - overhead)
    return "x" * pad


_PAYLOAD_CACHE: dict[int, str] = {}


def make_echo_request(target_bytes: int = PAPER_XML_BYTES) -> Envelope:
    """A plain SOAP-RPC echo request sized like the paper's test packet."""
    text = _PAYLOAD_CACHE.get(target_bytes)
    if text is None:
        text = _padded_payload(target_bytes)
        _PAYLOAD_CACHE[target_bytes] = text
    return build_rpc_request(RpcRequest(ECHO_NS, "echo", [("text", text)]))


def make_echo_message(
    to: str,
    message_id: str,
    reply_to: EndpointReference | None = None,
    target_bytes: int = PAPER_XML_BYTES,
) -> Envelope:
    """A one-way WS-Addressing echo message (messaging mode)."""
    envelope = make_echo_request(target_bytes)
    headers = AddressingHeaders(
        to=to,
        action=f"{ECHO_NS}/echo",
        message_id=message_id,
        reply_to=reply_to,
    )
    headers.attach(envelope)
    return envelope


class EchoService:
    """RPC echo: replies in-band with the received text.

    ``response_delay`` models a slow service (the Table 1 quadrant where
    "message reply comes too late" for an RPC transport).
    """

    def __init__(self, response_delay: float = 0.0, sleep=None) -> None:
        self.response_delay = response_delay
        self._sleep = sleep or (lambda s: threading.Event().wait(s))
        self._lock = threading.Lock()
        self.calls = 0

    def handle(self, envelope: Envelope, ctx: RequestContext) -> Envelope:
        call = parse_rpc_request(envelope)
        with self._lock:
            self.calls += 1
        if self.response_delay > 0:
            self._sleep(self.response_delay)
        response = build_rpc_response(
            RpcResponse(
                call.interface_ns, call.operation, [("return", call.param("text") or "")]
            ),
            version=envelope.version,
        )
        # in-band reply: continue the request's trace context, if any
        propagate_trace(envelope, response)
        return response


class AsyncEchoService:
    """Messaging echo: accepts one-way requests, sends the response as a
    new one-way message to the request's ``wsa:ReplyTo``.

    This is the paper's "messaging based service": no reply rides the
    inbound connection, so there is "no transport time limit on sending
    response".  Failures to reach the ReplyTo (e.g. a firewalled client
    addressed directly — Figure 6's worst case) are counted, not raised.
    """

    def __init__(
        self,
        http: HttpClient,
        ids: IdGenerator | None = None,
        clock: Clock | None = None,
        traces: TraceStore | None = None,
    ) -> None:
        self.http = http
        self.ids = ids or IdGenerator("echo-reply")
        self.clock = clock or MonotonicClock()
        self.traces = traces if traces is not None else default_trace_store()
        self._lock = threading.Lock()
        self.received = 0
        self.replies_sent = 0
        self.replies_blocked = 0

    def handle(self, envelope: Envelope, ctx: RequestContext) -> None:
        t_recv = self.clock.now()
        call = parse_rpc_request(envelope)
        request_headers = AddressingHeaders.from_envelope(envelope)
        with self._lock:
            self.received += 1
        if request_headers.reply_to is None or request_headers.reply_to.is_anonymous:
            return None  # nothing to reply to
        reply = build_rpc_response(
            RpcResponse(
                call.interface_ns, call.operation, [("return", call.param("text") or "")]
            ),
            version=envelope.version,
        )
        headers = make_reply_headers(request_headers, self.ids.next())
        headers.attach(reply)
        # The reply is a new envelope: continue the request's trace
        # context explicitly and record the service span it parents.
        trace = extract_trace(envelope)
        if trace is not None:
            svc_sid = self.traces.new_span_id()
            propagate_trace(envelope, reply, parent_span_id=svc_sid)
            self.traces.record(
                trace.trace_id, "service", "echo",
                t_recv, self.clock.now(),
                span_id=svc_sid, parent_id=trace.parent_span_id,
            )
        try:
            self.http.post_envelope(headers.to or "", reply)
        except Exception:  # noqa: BLE001 - blocked by firewall / unreachable
            with self._lock:
                self.replies_blocked += 1
            return None
        with self._lock:
            self.replies_sent += 1
        return None

"""Simulated twin of the ramp-up test client.

Runs N client processes on a simulated host for a fixed span of simulated
time — so the paper's full "one minute per point, up to 2000 clients" is
affordable and deterministic.  Each client loops echo calls over a
persistent connection (reconnecting when it breaks) and the harness
aggregates transmitted / not-sent counts exactly like the paper's tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import (
    ConnectionLimitExceeded,
    HttpParseError,
    ReproError,
    SimInterrupt,
    TransportError,
)
from repro.http import Headers, HttpRequest
from repro.simnet.httpsim import sim_http_exchange
from repro.simnet.kernel import Simulator
from repro.simnet.tcpsim import SimTcpConnection, TcpParams, connect
from repro.simnet.topology import Host, Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.stats import OnlineStats
from repro.workload.echo import make_echo_request
from repro.workload.results import RunResult


@dataclass
class SimRampConfig:
    """One simulated measurement point."""

    clients: int = 10
    duration: float = 60.0
    connect_timeout: float = 10.0
    response_timeout: float = 10.0
    #: pause between a failure and the next attempt (client-side backoff;
    #: also the floor cost of an instantly-failing local connect)
    retry_backoff: float = 0.050
    #: optional pacing between successful calls
    think_time: float = 0.0
    #: reuse the connection across calls (HTTP keep-alive)
    keep_alive: bool = True


def default_request_factory() -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    return HttpRequest(
        "POST", "/", headers=headers, body=make_echo_request().to_bytes()
    )


class SimRampTester:
    """Spawns client processes and aggregates their statistics."""

    def __init__(
        self,
        net: Network,
        client_host: Host,
        server_name: str,
        port: int,
        path: str,
        request_factory: Callable[[], HttpRequest] | None = None,
    ) -> None:
        self.net = net
        self.sim: Simulator = net.sim
        self.client_host = client_host
        self.server_name = server_name
        self.port = port
        self.path = path
        self.request_factory = request_factory or default_request_factory

    def _client_proc(self, config: SimRampConfig, result: RunResult, end_at: float):
        sim = self.sim
        conn: SimTcpConnection | None = None
        params = TcpParams(connect_timeout=config.connect_timeout)
        while sim.now < end_at:
            request = self.request_factory()
            request.target = self.path
            if not config.keep_alive:
                request.headers.set("Connection", "close")
            t0 = sim.now
            try:
                if conn is None or conn.closed or (conn.peer and conn.peer.closed):
                    conn = yield from connect(
                        self.net, self.client_host, self.server_name,
                        self.port, params,
                    )
                response = yield from sim_http_exchange(
                    conn, request, config.response_timeout
                )
                if not response.keep_alive or not config.keep_alive:
                    conn.close()
                    conn = None
                if response.status < 400:
                    result.transmitted += 1
                    result.latency.add(sim.now - t0)
                else:
                    result.errors += 1
                    yield sim.timeout(config.retry_backoff)
            except SimInterrupt:
                break  # measurement window closed mid-operation
            except ConnectionLimitExceeded:
                result.not_sent += 1
                yield sim.timeout(config.retry_backoff)
            except (TransportError, HttpParseError, ReproError):
                if sim.now >= end_at:
                    break  # failure caused by the window closing, not the SUT
                result.not_sent += 1
                if conn is not None:
                    conn.close()
                    conn = None
                yield sim.timeout(config.retry_backoff)
            if config.think_time > 0:
                yield sim.timeout(config.think_time)
        if conn is not None:
            conn.close()

    def run(self, config: SimRampConfig) -> RunResult:
        """Run one measurement point (advances the shared simulator)."""
        result = RunResult(clients=config.clients, duration=config.duration)
        result.latency = OnlineStats()
        end_at = self.sim.now + config.duration
        procs = [
            self.sim.process(
                self._client_proc(config, result, end_at), name=f"client-{i}"
            )
            for i in range(config.clients)
        ]
        self.sim.run(until=end_at)
        # let in-flight operations resolve so connection slots free up
        # before a subsequent measurement reuses the simulator
        for p in procs:
            if p.is_alive:
                p.interrupt("measurement over")
        self.sim.run(until=self.sim.now + 1e-6)
        return result

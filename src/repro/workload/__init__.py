"""Workloads and test clients reproducing the paper's evaluation rig.

"All experiments were conducted with a test client that can ramp up
number of connections and record statistical data.  The test client runs
with a specified number of connections (clients) and keeps sending echo
message (packets) for one minute."
"""

from repro.workload.echo import (
    ECHO_NS,
    EchoService,
    AsyncEchoService,
    make_echo_request,
    make_echo_message,
)
from repro.workload.results import RunResult, Series, render_table
from repro.workload.testclient import RampTestClient, RampConfig

__all__ = [
    "ECHO_NS",
    "EchoService",
    "AsyncEchoService",
    "make_echo_request",
    "make_echo_message",
    "RunResult",
    "Series",
    "render_table",
    "RampTestClient",
    "RampConfig",
]

"""Transport protocols: Stream, Listener, Connector.

Addressing convention: endpoints are ``host:port`` strings.  The threaded
runtime resolves service URLs (``http://host:port/path``) to endpoints
with :func:`parse_http_url`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import HttpError


@dataclass(frozen=True)
class Endpoint:
    """A transport address: host name and port."""

    host: str
    port: int

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        host, sep, port = text.rpartition(":")
        if not sep or not host:
            raise ValueError(f"endpoint must be host:port, got {text!r}")
        return cls(host, int(port))


def parse_http_url(url: str) -> tuple[Endpoint, str]:
    """Split ``http://host:port/path`` into (endpoint, path).

    Only the ``http`` scheme is supported (the paper's stack is SOAP over
    plain HTTP); the default port is 80 and the default path ``/``.
    """
    if not url.startswith("http://"):
        raise HttpError(f"only http:// URLs are supported, got {url!r}")
    rest = url[len("http://"):]
    authority, sep, path = rest.partition("/")
    path = "/" + path if sep else "/"
    if not authority:
        raise HttpError(f"URL has no host: {url!r}")
    if ":" in authority:
        host, _, port_text = authority.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise HttpError(f"bad port in URL {url!r}") from None
    else:
        host, port = authority, 80
    return Endpoint(host, port), path


@runtime_checkable
class Stream(Protocol):
    """A connected duplex byte stream."""

    def send(self, data: bytes) -> None:
        """Send all of ``data`` (blocking)."""
        ...

    def recv(self, max_bytes: int, timeout: float | None = None) -> bytes:
        """Receive up to ``max_bytes``; b"" on orderly EOF.

        Raises :class:`~repro.errors.ConnectionTimeout` when ``timeout``
        expires with no data.
        """
        ...

    def close(self) -> None:
        ...


@runtime_checkable
class Listener(Protocol):
    """A bound, listening endpoint producing accepted streams."""

    @property
    def endpoint(self) -> Endpoint:
        ...

    def accept(self, timeout: float | None = None) -> Stream:
        ...

    def close(self) -> None:
        ...


@runtime_checkable
class Connector(Protocol):
    """Factory for outbound connections."""

    def connect(self, endpoint: Endpoint, timeout: float | None = None) -> Stream:
        ...

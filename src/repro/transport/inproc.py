"""In-process transport: paired byte streams over thread-safe buffers.

An :class:`InprocNetwork` is a private namespace of listening endpoints.
``connect`` hands the listener one half of a stream pair.  Semantics match
TCP closely enough for the HTTP layer: stream-oriented (no message
boundaries preserved), half-close on ``close`` (the peer's ``recv`` drains
buffered data then returns b""), connect to a missing endpoint raises
:class:`~repro.errors.ConnectionRefused`, and an accept backlog bound
raises :class:`~repro.errors.ConnectionLimitExceeded`.
"""

from __future__ import annotations

import collections
import threading

from repro.errors import (
    ConnectionLimitExceeded,
    ConnectionRefused,
    ConnectionTimeout,
    TransportError,
)
from repro.transport.base import Endpoint


class _Buffer:
    """One direction of a stream pair: bounded byte FIFO with close flag."""

    def __init__(self, limit: int = 4 * 1024 * 1024) -> None:
        self._chunks: collections.deque[bytes] = collections.deque()
        self._size = 0
        self._limit = limit
        self._closed = False
        self._cond = threading.Condition()

    def write(self, data: bytes) -> None:
        if not data:
            return
        with self._cond:
            if self._closed:
                raise TransportError("write to closed stream")
            # Block (backpressure) while the peer's buffer is full.
            while self._size >= self._limit and not self._closed:
                self._cond.wait(0.05)
            if self._closed:
                raise TransportError("write to closed stream")
            self._chunks.append(data)
            self._size += len(data)
            self._cond.notify_all()

    def read(self, max_bytes: int, timeout: float | None) -> bytes:
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._chunks or self._closed, timeout
            ):
                raise ConnectionTimeout("inproc recv timed out")
            if not self._chunks:
                return b""  # closed and drained
            chunk = self._chunks.popleft()
            if len(chunk) > max_bytes:
                self._chunks.appendleft(chunk[max_bytes:])
                chunk = chunk[:max_bytes]
            self._size -= len(chunk)
            self._cond.notify_all()
            return chunk

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class InprocStream:
    """One endpoint of an in-process stream pair."""

    def __init__(self, rx: _Buffer, tx: _Buffer) -> None:
        self._rx = rx
        self._tx = tx

    def send(self, data: bytes) -> None:
        self._tx.write(data)

    def recv(self, max_bytes: int, timeout: float | None = None) -> bytes:
        return self._rx.read(max_bytes, timeout)

    def close(self) -> None:
        # Close both directions: our outbound (peer sees EOF) and our
        # inbound (our own pending reads finish).
        self._tx.close()
        self._rx.close()


def stream_pair() -> tuple[InprocStream, InprocStream]:
    """A connected pair of in-process streams."""
    a_to_b = _Buffer()
    b_to_a = _Buffer()
    return InprocStream(b_to_a, a_to_b), InprocStream(a_to_b, b_to_a)


class InprocListener:
    """Accept side of an in-process endpoint."""

    def __init__(self, network: "InprocNetwork", endpoint: Endpoint, backlog: int) -> None:
        self._network = network
        self._endpoint = endpoint
        self._backlog = backlog
        self._pending: collections.deque[InprocStream] = collections.deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def _offer(self, stream: InprocStream) -> None:
        with self._cond:
            if self._closed:
                raise ConnectionRefused(f"{self._endpoint} is closed")
            if len(self._pending) >= self._backlog:
                raise ConnectionLimitExceeded(
                    f"{self._endpoint} backlog full ({self._backlog})"
                )
            self._pending.append(stream)
            self._cond.notify()

    def accept(self, timeout: float | None = None) -> InprocStream:
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._pending or self._closed, timeout
            ):
                raise ConnectionTimeout("accept timed out")
            if self._pending:
                return self._pending.popleft()
            raise TransportError("listener closed")

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._network._unbind(self._endpoint)


class InprocNetwork:
    """A namespace of in-process endpoints (one per test/example)."""

    def __init__(self) -> None:
        self._listeners: dict[Endpoint, InprocListener] = {}
        self._lock = threading.Lock()
        self._auto_port = 49152

    def listen(self, endpoint: Endpoint | str, backlog: int = 128) -> InprocListener:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        with self._lock:
            if endpoint.port == 0:
                while Endpoint(endpoint.host, self._auto_port) in self._listeners:
                    self._auto_port += 1
                endpoint = Endpoint(endpoint.host, self._auto_port)
                self._auto_port += 1
            if endpoint in self._listeners:
                raise TransportError(f"{endpoint} already bound")
            listener = InprocListener(self, endpoint, backlog)
            self._listeners[endpoint] = listener
            return listener

    def _unbind(self, endpoint: Endpoint) -> None:
        with self._lock:
            self._listeners.pop(endpoint, None)

    def connect(self, endpoint: Endpoint | str, timeout: float | None = None) -> InprocStream:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        with self._lock:
            listener = self._listeners.get(endpoint)
        if listener is None:
            raise ConnectionRefused(f"nothing listening at {endpoint}")
        client_side, server_side = stream_pair()
        listener._offer(server_side)
        return client_side

"""Real TCP transport over :mod:`socket` (loopback for examples/tests)."""

from __future__ import annotations

import socket

from repro.errors import (
    ConnectionClosed,
    ConnectionRefused,
    ConnectionTimeout,
    TransportError,
)
from repro.transport.base import Endpoint


def reuse_port_supported() -> bool:
    """Probe whether this platform can bind SO_REUSEPORT sockets.

    Linux ≥3.9 and the BSDs have it; some kernels expose the constant
    but refuse the setsockopt, so we try it on a throwaway socket.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


class TcpStream:
    """Stream adapter over a connected socket.

    ``nodelay`` disables Nagle's algorithm (default).  The protocol
    writes one fully serialized HTTP message (or a whole pipelined
    burst) per ``send``, so coalescing never helps — it only adds a
    delayed-ACK round trip to every small exchange.  The knob exists so
    the pipelined-drain benchmark can measure that penalty.
    """

    def __init__(self, sock: socket.socket, nodelay: bool = True) -> None:
        self._sock = sock
        if nodelay:
            try:
                self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not a TCP socket (e.g. AF_UNIX): nothing to disable

    def send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ConnectionClosed(str(exc)) from exc
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    def recv(self, max_bytes: int, timeout: float | None = None) -> bytes:
        try:
            self._sock.settimeout(timeout)
            return self._sock.recv(max_bytes)
        except socket.timeout:
            raise ConnectionTimeout("recv timed out") from None
        except ConnectionResetError:
            return b""  # treat reset as EOF; the HTTP layer detects truncation
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TcpListener:
    """Bound listening socket.

    ``reuse_port=True`` binds with SO_REUSEPORT so several processes can
    listen on one port and let the kernel spread accepted connections
    across them (the shard supervisor's data plane).  Platforms without
    SO_REUSEPORT raise :class:`TransportError` — callers probe first via
    :func:`reuse_port_supported` and fall back to accept-and-pass.
    """

    def __init__(
        self,
        endpoint: Endpoint | str,
        backlog: int = 128,
        nodelay: bool = True,
        reuse_port: bool = False,
    ) -> None:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        self._nodelay = nodelay
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                self._sock.close()
                raise TransportError(
                    "SO_REUSEPORT is not supported on this platform"
                )
            try:
                self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except OSError as exc:
                self._sock.close()
                raise TransportError(
                    f"SO_REUSEPORT refused by kernel: {exc}"
                ) from exc
        try:
            self._sock.bind((endpoint.host, endpoint.port))
            self._sock.listen(backlog)
        except OSError as exc:
            self._sock.close()
            raise TransportError(f"cannot bind {endpoint}: {exc}") from exc
        host, port = self._sock.getsockname()[:2]
        self._endpoint = Endpoint(endpoint.host or host, port)

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def accept(self, timeout: float | None = None) -> TcpStream:
        try:
            self._sock.settimeout(timeout)
            conn, _addr = self._sock.accept()
            return TcpStream(conn, nodelay=self._nodelay)
        except socket.timeout:
            raise ConnectionTimeout("accept timed out") from None
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TcpConnector:
    """Outbound TCP connection factory."""

    def __init__(self, nodelay: bool = True) -> None:
        self._nodelay = nodelay

    def connect(self, endpoint: Endpoint | str, timeout: float | None = None) -> TcpStream:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        try:
            sock = socket.create_connection(
                (endpoint.host, endpoint.port), timeout=timeout
            )
            sock.settimeout(None)
            return TcpStream(sock, nodelay=self._nodelay)
        except socket.timeout:
            raise ConnectionTimeout(f"connect to {endpoint} timed out") from None
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(f"connect to {endpoint}: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"connect to {endpoint}: {exc}") from exc

"""Real TCP transport over :mod:`socket` (loopback for examples/tests)."""

from __future__ import annotations

import socket

from repro.errors import (
    ConnectionClosed,
    ConnectionRefused,
    ConnectionTimeout,
    TransportError,
)
from repro.transport.base import Endpoint


class TcpStream:
    """Stream adapter over a connected socket.

    ``nodelay`` disables Nagle's algorithm (default).  The protocol
    writes one fully serialized HTTP message (or a whole pipelined
    burst) per ``send``, so coalescing never helps — it only adds a
    delayed-ACK round trip to every small exchange.  The knob exists so
    the pipelined-drain benchmark can measure that penalty.
    """

    def __init__(self, sock: socket.socket, nodelay: bool = True) -> None:
        self._sock = sock
        if nodelay:
            try:
                self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not a TCP socket (e.g. AF_UNIX): nothing to disable

    def send(self, data: bytes) -> None:
        try:
            self._sock.sendall(data)
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise ConnectionClosed(str(exc)) from exc
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    def recv(self, max_bytes: int, timeout: float | None = None) -> bytes:
        try:
            self._sock.settimeout(timeout)
            return self._sock.recv(max_bytes)
        except socket.timeout:
            raise ConnectionTimeout("recv timed out") from None
        except ConnectionResetError:
            return b""  # treat reset as EOF; the HTTP layer detects truncation
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TcpListener:
    """Bound listening socket."""

    def __init__(
        self,
        endpoint: Endpoint | str,
        backlog: int = 128,
        nodelay: bool = True,
    ) -> None:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        self._nodelay = nodelay
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((endpoint.host, endpoint.port))
            self._sock.listen(backlog)
        except OSError as exc:
            self._sock.close()
            raise TransportError(f"cannot bind {endpoint}: {exc}") from exc
        host, port = self._sock.getsockname()[:2]
        self._endpoint = Endpoint(endpoint.host or host, port)

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def accept(self, timeout: float | None = None) -> TcpStream:
        try:
            self._sock.settimeout(timeout)
            conn, _addr = self._sock.accept()
            return TcpStream(conn, nodelay=self._nodelay)
        except socket.timeout:
            raise ConnectionTimeout("accept timed out") from None
        except OSError as exc:
            raise TransportError(str(exc)) from exc

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


class TcpConnector:
    """Outbound TCP connection factory."""

    def __init__(self, nodelay: bool = True) -> None:
        self._nodelay = nodelay

    def connect(self, endpoint: Endpoint | str, timeout: float | None = None) -> TcpStream:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        try:
            sock = socket.create_connection(
                (endpoint.host, endpoint.port), timeout=timeout
            )
            sock.settimeout(None)
            return TcpStream(sock, nodelay=self._nodelay)
        except socket.timeout:
            raise ConnectionTimeout(f"connect to {endpoint} timed out") from None
        except ConnectionRefusedError as exc:
            raise ConnectionRefused(f"connect to {endpoint}: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"connect to {endpoint}: {exc}") from exc

"""Byte-stream transports for the threaded runtime.

A :class:`~repro.transport.base.Stream` is the minimal duplex byte pipe
the HTTP layer needs; implementations exist over real TCP sockets
(:mod:`repro.transport.tcp`) and over in-process queues
(:mod:`repro.transport.inproc`) so the full dispatcher stack can run in
one process without touching the network — handy for tests and for the
quickstart example on machines with no loopback access.
"""

from repro.transport.base import Stream, Listener, Connector, Endpoint
from repro.transport.inproc import InprocNetwork, InprocStream
from repro.transport.tcp import TcpConnector, TcpListener, TcpStream

__all__ = [
    "Stream",
    "Listener",
    "Connector",
    "Endpoint",
    "InprocNetwork",
    "InprocStream",
    "TcpConnector",
    "TcpListener",
    "TcpStream",
]

"""Simulated hostings of the RPC- and MSG-Dispatchers.

Same routing/rewrite logic as the threaded versions (shared pure modules
:mod:`repro.core.routing` and :mod:`repro.wsa.rules`); the execution
substrate is the event kernel instead of thread pools: CxThreads become
``cx_workers`` routing processes, WsThreads become per-destination
delivery processes bounded by a ``ws_workers`` resource, the FIFO queue is
a :class:`~repro.simnet.resources.Store`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.errors import (
    RegistryUnavailable,
    ReproError,
    RoutingError,
    SoapError,
    TransportError,
    UnknownServiceError,
    XmlError,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.slo import stage_histogram
from repro.obs.trace import (
    TraceContext,
    TraceStore,
    attach_trace,
    default_trace_store,
    extract_trace,
)
from repro.reliable.breaker import BreakerConfig, BreakerRegistry
from repro.reliable.holdretry import DuplicateFilter, HoldRetryStore
from repro.store.journal import ABSORBED, DEAD, DELIVERED, MessageJournal
from repro.rt.service import soap_fault_response
from repro.simnet.httpsim import SimHttpClientPool
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource, Store
from repro.simnet.topology import Host, Network
from repro.soap import Envelope, Fault, LazyEnvelope, fastpath_counter, parse_envelope
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.transport.base import parse_http_url
from repro.util.stats import Counter
from repro.wsa import AddressingHeaders, EndpointReference, rewrite_for_forwarding
from repro.core.registry import ServiceRegistry
from repro.core.routing import (
    extract_logical,
    hold_resolve_target,
    is_hold_resolve_target,
    split_hold_resolve_target,
)


#: reply-address scheme used by the sync-over-async bridge
_SYNC_SCHEME = "urn:wsd:sync:"


def _soap_post(path: str, body: bytes) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    return HttpRequest("POST", path, headers=headers, body=body)


class SimRpcDispatcher:
    """RPC forwarding proxy as a simulated HTTP handler.

    The handler is a generator: the worker slot serving the client
    connection stays occupied for the whole forwarded exchange — the
    blocking behaviour that gives RPC forwarding its Table 1 limits.
    """

    def __init__(
        self,
        net: Network,
        host: Host,
        registry: ServiceRegistry,
        mount_prefix: str = "/rpc",
        connect_timeout: float = 21.0,
        response_timeout: float = 30.0,
        balancer: object | None = None,
        metrics: MetricsRegistry | None = None,
        traces: TraceStore | None = None,
        fast_path: bool = True,
    ) -> None:
        """``balancer`` (a :class:`~repro.core.loadbalance.BalancerPolicy`)
        receives on_start/on_finish load feedback per forwarded call so
        least-pending selection can see in-flight work.

        ``fast_path`` mirrors the threaded RpcDispatcher: scan-validate
        and forward the request bytes verbatim instead of parse + copy."""
        self.net = net
        self.registry = registry
        self.mount_prefix = mount_prefix
        self.balancer = balancer
        self.pool = SimHttpClientPool(
            net,
            host,
            connect_timeout=connect_timeout,
            response_timeout=response_timeout,
        )
        self.counters = Counter()
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else default_trace_store()
        self._log = component_logger("rpcd")
        self._m_forwarded = self.metrics.counter(
            "rpcd_forwarded_total", "RPC exchanges proxied to a service"
        )
        self._m_rejected = self.metrics.counter(
            "rpcd_rejected_total", "RPC requests rejected, by reason"
        )
        self._m_failed = self.metrics.counter(
            "rpcd_failed_total", "RPC forwards that could not reach the service"
        )
        self._m_forward_time = self.metrics.histogram(
            "rpcd_forward_seconds",
            "blocking dispatcher-to-service exchange time",
        )
        self.fast_path = fast_path
        self._m_fastpath = fastpath_counter(self.metrics)

    def handler(self, request: HttpRequest):
        """Generator handler for :class:`~repro.simnet.httpsim.SimHttpServer`."""
        if request.method != "POST":
            return HttpResponse(status=405, body=b"RPC dispatcher accepts POST")
        try:
            logical = extract_logical(request.target, self.mount_prefix)
            envelope = parse_envelope(
                request.body, counter=self._m_fastpath, fast=self.fast_path
            )
        except (RoutingError, XmlError, SoapError) as exc:
            self.counters.inc("rejected")
            self._m_rejected.labels(reason="bad_request").inc()
            return soap_fault_response(Fault("Client", str(exc)), status=400)
        trace = extract_trace(envelope)
        try:
            physical = self.registry.resolve(logical)
        except UnknownServiceError as exc:
            self.counters.inc("rejected")
            self._m_rejected.labels(reason="unknown_service").inc()
            return soap_fault_response(Fault("Client", str(exc)), status=404)
        endpoint, path = parse_http_url(physical)
        if isinstance(envelope, LazyEnvelope):
            forward = _soap_post(path, request.body)  # verbatim, scan-validated
        else:
            forward = _soap_post(path, envelope.to_bytes())
        if self.balancer is not None:
            self.balancer.on_start(physical)
        t_send = self.net.sim.now
        try:
            response = yield from self.pool.exchange(
                endpoint.host, endpoint.port, forward
            )
        except (TransportError, ReproError) as exc:
            self.counters.inc("failed")
            self._m_failed.inc()
            return soap_fault_response(
                Fault("Server", f"cannot reach {logical}: {exc}"), status=502
            )
        finally:
            if self.balancer is not None:
                self.balancer.on_finish(physical)
        t_done = self.net.sim.now
        self.counters.inc("forwarded")
        self._m_forwarded.inc()
        self._m_forward_time.observe(t_done - t_send)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "forward", "rpcd",
                t_send, t_done,
                parent_id=trace.parent_span_id,
                logical=logical, dest=physical,
            )
        log_event(
            self._log, logging.DEBUG, "forward",
            trace=trace.trace_id if trace else None,
            logical=logical, dest=physical,
        )
        out = Headers()
        ct = response.headers.get("Content-Type")
        if ct:
            out.set("Content-Type", ct)
        return HttpResponse(status=response.status, headers=out, body=response.body)

    @property
    def stats(self) -> dict[str, int]:
        return self.counters.as_dict()


@dataclass
class SimMsgDispatcherConfig:
    """Knobs of the simulated MSG-Dispatcher (mirrors the threaded config)."""

    cx_workers: int = 4
    ws_workers: int = 8
    accept_queue: int = 1024
    destination_queue: int = 1024
    batch_size: int = 8
    #: drain a multi-message batch as one pipelined burst on the leased
    #: connection instead of serial request/response round-trips
    pipeline_batches: bool = True
    #: concurrent WsThreads (connections) a single busy destination may use
    parallel_per_destination: int = 1
    destination_idle_ttl: float = 10.0
    correlation_ttl: float = 120.0
    connect_timeout: float = 21.0
    response_timeout: float = 30.0
    #: False = paper-faithful (no admission control: a full accept queue
    #: blocks the HTTP worker); True = answer 503 when saturated
    shed_on_full: bool = False
    #: ReplyTo prefixes left unrewritten (the dispatcher's own co-located
    #: WS-MsgBox — services reply to it directly, paper section 4.3.2)
    passthrough_reply_prefixes: tuple = ()
    #: per-destination circuit breaking (None = no breakers, the
    #: paper-faithful behaviour: every delivery attempt hits the wire)
    breaker: BreakerConfig | None = None
    #: total dispatcher backlog (accept + destination queues) above which
    #: new messages are shed with 503 Retry-After (None = unbounded)
    max_inflight: int | None = None
    shed_retry_after: float = 1.0
    #: how often the hold/retry pump re-examines parked messages
    hold_pump_interval: float = 0.25
    #: zero-copy envelopes: scan-parse incoming messages (headers only)
    #: and forward by byte splicing; False = full DOM parse + re-serialize
    fast_path: bool = True
    #: sliding-window duplicate suppression on the inbound absorption path
    #: (sim seconds); None = forward duplicates untouched
    dedupe_window: float | None = None


@dataclass
class _SimCorrelation:
    reply_to: EndpointReference | None
    fault_to: EndpointReference | None
    expires_at: float


class SimMsgDispatcher:
    """MSG-Dispatcher as a family of simulation processes."""

    def __init__(
        self,
        net: Network,
        host: Host,
        registry: ServiceRegistry,
        own_address: str,
        mount_prefix: str = "/msg",
        config: SimMsgDispatcherConfig | None = None,
        metrics: MetricsRegistry | None = None,
        traces: TraceStore | None = None,
        hold_store: HoldRetryStore | None = None,
        durable: MessageJournal | None = None,
        recover: bool = True,
        flight: FlightRecorder | None = None,
    ) -> None:
        """``durable`` / ``recover`` mirror the threaded dispatcher: a
        :class:`~repro.store.MessageJournal` journals every admitted
        message before the 202 ack, and ``recover=True`` replays a
        previous incarnation's undelivered records at construction —
        the simulated twin of restarting after a
        :class:`~repro.chaos.ServiceCrash`.  Construct the journal with
        ``sync="lazy"`` (group commit would really sleep) and a
        ``now_fn`` bound to the simulation clock.

        ``flight`` receives the state-transition events (sheds,
        dead-letters, recoveries, crashes) on the simulation clock, so a
        seeded run dumps a bit-identical flight record."""
        self.net = net
        self.sim: Simulator = net.sim
        self.host = host
        self.registry = registry
        self.own_address = own_address
        self.mount_prefix = mount_prefix
        self.config = config or SimMsgDispatcherConfig()
        self.pool = SimHttpClientPool(
            net,
            host,
            connect_timeout=self.config.connect_timeout,
            response_timeout=self.config.response_timeout,
            pool_per_destination=max(2, self.config.parallel_per_destination),
        )
        self.counters = Counter()
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else default_trace_store()
        self.flight = flight if flight is not None else default_flight_recorder()
        self._log = component_logger("msgd")
        self._accept: Store = Store(self.sim, capacity=self.config.accept_queue)
        self._m_accepted = self.metrics.counter(
            "msgd_accepted_total", "messages admitted to the accept queue"
        )
        self._m_dropped = self.metrics.counter(
            "msgd_dropped_total", "messages dropped, by reason"
        )
        self._m_delivered = self.metrics.counter(
            "msgd_delivered_total", "messages delivered to their destination"
        )
        self._m_queue_wait = self.metrics.histogram(
            "msgd_queue_wait_seconds",
            "time spent waiting in dispatcher queues, by queue",
        )
        self._m_transmit = self.metrics.histogram(
            "msgd_transmit_seconds",
            "time spent transmitting to the destination",
        )
        self.metrics.gauge(
            "msgd_accept_queue_depth", "messages waiting for a CxThread"
        ).set_function(lambda: len(self._accept))
        self._m_dest_depth = self.metrics.gauge(
            "msgd_destination_queue_depth",
            "messages waiting for a WsThread, by destination",
        )
        self._m_shed = self.metrics.counter(
            "dispatcher_shed_total",
            "requests shed by admission control, by component",
        )
        self._m_fastpath = fastpath_counter(self.metrics)
        stage = stage_histogram(self.metrics)
        self._m_stage_admit = stage.labels(stage="admit")
        self._m_stage_journal = stage.labels(stage="journal")
        self._m_stage_queue_accept = stage.labels(stage="queue_accept")
        self._m_stage_queue_dest = stage.labels(stage="queue_destination")
        self._m_stage_deliver = stage.labels(stage="deliver")
        self._correlations: dict[str, _SimCorrelation] = {}
        self._waiters: dict[str, object] = {}  # sync-bridge events by URI
        self._destinations: dict[str, Store] = {}
        self._dest_workers: dict[str, int] = {}
        self._ws_slots = Resource(self.sim, capacity=self.config.ws_workers)
        self.breakers: BreakerRegistry | None = None
        if self.config.breaker is not None:
            self.breakers = BreakerRegistry(
                self.config.breaker, clock=self.sim.clock,
                metrics=self.metrics, flight=self.flight,
            )
        #: failed deliveries are parked here instead of dropped; a pump
        #: process re-queues them on the policy schedule.  Construct the
        #: store with ``clock=net.sim.clock`` so TTLs follow sim time.
        self.hold_store = hold_store
        self.durable = durable
        self._replayed_seqs: set[int] = set()
        self._dedupe: DuplicateFilter | None = None
        if self.config.dedupe_window is not None:
            self._dedupe = DuplicateFilter(
                window=self.config.dedupe_window, clock=self.sim.clock
            )
        self._m_duplicates = self.metrics.counter(
            "dispatcher_duplicates_total",
            "inbound messages suppressed as duplicates",
        )
        self._m_deadletter = self.metrics.counter(
            "dispatcher_deadletter_total",
            "Messages moved to the dead-letter queue, by reason",
        )
        self._hold_pump_active = False
        self._running = True
        for i in range(self.config.cx_workers):
            self.sim.process(self._cx_loop(), name=f"sim-cx-{i}")
        if self.durable is not None and recover:
            self.recover()

    def stop(self) -> None:
        self._running = False
        if self.durable is not None:
            self.durable.flush()
            self.durable.checkpoint()

    def crash(self) -> None:
        """Simulated SIGKILL: every process halts, buffered journal
        operations are lost, and this incarnation can no longer touch the
        journal or the hold store (a dead process writes nothing).  The
        journal *object* plays the disk that survives the crash — hand it
        to the next incarnation with ``recover=True``."""
        self._running = False
        now = self.sim.now
        self.flight.record(
            "crash", "msgd", t=now, backlog=self.backlog(),
        )
        self.flight.postmortem("crash", t=now, backlog=self.backlog())
        if self.durable is not None:
            self.durable.drop_unflushed()
        self.durable = None
        self.hold_store = None
        self._dedupe = None

    # -- crash recovery -----------------------------------------------------
    def recover(self) -> int:
        """Replay undelivered journal records into the accept queue
        (at-least-once; idempotent per seq within one incarnation)."""
        if self.durable is None:
            return 0
        replayed = 0
        for rec in self.durable.undelivered(kind="inbound"):
            if rec.seq in self._replayed_seqs:
                continue
            self._replayed_seqs.add(rec.seq)
            try:
                envelope = parse_envelope(
                    rec.body, counter=self._m_fastpath,
                    fast=self.config.fast_path,
                )
            except ReproError:
                self._dead_letter(rec.seq, "corrupt")
                continue
            trace = extract_trace(envelope)
            if not self._accept.try_put(
                (envelope, rec.target, trace, self.sim.now, rec.seq)
            ):
                break  # queue full; the rest stay journaled for later
            replayed += 1
        if self.hold_store is not None and getattr(
            self.hold_store, "durable", None
        ) is not None:
            restored = self.hold_store.restore()
            replayed += restored
            if restored:
                self._ensure_hold_pump()
        if replayed:
            self.counters.inc("recovered", replayed)
            log_event(self._log, logging.INFO, "recover", replayed=replayed)
            self.flight.record(
                "journal-recover", "msgd", t=self.sim.now, replayed=replayed
            )
        return replayed

    def _dead_letter(
        self,
        journal_seq: int | None,
        reason: str,
        trace_id: str | None = None,
        dest: str | None = None,
    ) -> None:
        if self.durable is None or journal_seq is None:
            return
        self.durable.mark(journal_seq, DEAD, reason=reason)
        self.counters.inc("dead_lettered")
        self._m_deadletter.labels(reason=reason).inc()
        now = self.sim.now
        log_event(
            self._log, logging.WARNING, "deadletter",
            trace=trace_id, reason=reason, seq=journal_seq, dest=dest,
        )
        self.flight.record(
            "deadletter", "msgd", t=now,
            trace=trace_id, reason=reason, seq=journal_seq, dest=dest,
        )
        self.flight.postmortem("deadletter", t=now, reason=reason)

    # -- HTTP handler (accepts one-way messages, answers 202) --------------
    def handler(self, request: HttpRequest):
        """Generator handler.

        When the accept queue is full the behaviour depends on
        ``config.shed_on_full``: the paper's stack had no admission
        control, so the default is to *block* the HTTP worker until a
        CxThread frees a slot — saturation then propagates to the TCP
        front door and clients slow down or time out.  With shedding on,
        the dispatcher answers 503 instead (the load-shedding redesign).
        """
        if request.method != "POST":
            return HttpResponse(status=405, body=b"MSG dispatcher accepts POST")
        try:
            envelope = parse_envelope(
                request.body,
                counter=self._m_fastpath,
                fast=self.config.fast_path,
            )
        except (XmlError, SoapError) as exc:
            self.counters.inc("rejected")
            self._m_dropped.labels(reason="invalid_soap").inc()
            return soap_fault_response(Fault("Client", str(exc)), status=400)
        t_arrival = self.sim.now
        trace = extract_trace(envelope)
        trace_id = trace.trace_id if trace else None
        if (
            self.config.max_inflight is not None
            and self.backlog() >= self.config.max_inflight
        ):
            self.counters.inc("shed_overload")
            self._m_shed.labels(component="sim_msgd").inc()
            log_event(
                self._log, logging.WARNING, "shed",
                trace=trace_id, backlog=self.backlog(),
                max_inflight=self.config.max_inflight,
            )
            self.flight.record(
                "shed", "msgd", t=t_arrival,
                trace=trace_id, path=request.target,
                backlog=self.backlog(),
                max_inflight=self.config.max_inflight,
            )
            return self._shed_response()
        jseq: int | None = None
        if self.durable is not None:
            # journal before ack: from here the journal owns the message
            t_journal = self.sim.now
            jseq = self.durable.append(
                None, request.target, request.body, kind="inbound"
            )
            self._m_stage_journal.observe(self.sim.now - t_journal)
        if self.config.shed_on_full:
            if not self._accept.try_put(
                (envelope, request.target, trace, t_arrival, jseq)
            ):
                if jseq is not None:
                    self.durable.mark(jseq, ABSORBED, reason="rejected")
                self.counters.inc("dropped_accept_queue_full")
                self._m_dropped.labels(reason="accept_queue_full").inc()
                log_event(
                    self._log, logging.WARNING, "drop",
                    trace=trace_id, reason="accept_queue_full",
                )
                return self._shed_response()
        else:
            yield self._accept.put(
                (envelope, request.target, trace, t_arrival, jseq)
            )
        self.counters.inc("accepted")
        self._m_accepted.inc()
        self._m_stage_admit.observe(self.sim.now - t_arrival)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "admit", "msgd",
                t_arrival, self.sim.now,
                parent_id=trace.parent_span_id, path=request.target,
            )
        log_event(
            self._log, logging.DEBUG, "admit",
            trace=trace_id, path=request.target,
        )
        return HttpResponse(status=202)

    def _shed_response(self) -> HttpResponse:
        headers = Headers()
        headers.set("Retry-After", f"{self.config.shed_retry_after:g}")
        return HttpResponse(
            status=503, headers=headers, body=b"dispatcher overloaded"
        )

    # -- CxThread processes ---------------------------------------------------
    def _cx_loop(self):
        while self._running:
            envelope, path, trace, t_enq, jseq = yield self._accept.get()
            t_deq = self.sim.now
            self._m_queue_wait.labels(queue="accept").observe(t_deq - t_enq)
            self._m_stage_queue_accept.observe(t_deq - t_enq)
            if trace is not None:
                self.traces.record(
                    trace.trace_id, "queue-wait", "msgd",
                    t_enq, t_deq,
                    parent_id=trace.parent_span_id, queue="accept",
                )
            try:
                outbound = self._route_one(envelope, path, trace, journal_seq=jseq)
            except ReproError:
                self.counters.inc("dropped_unroutable")
                self._m_dropped.labels(reason="unroutable").inc()
                self._dead_letter(
                    jseq, "unroutable",
                    trace_id=trace.trace_id if trace else None,
                )
                log_event(
                    self._log, logging.WARNING, "drop",
                    trace=trace.trace_id if trace else None,
                    reason="unroutable", path=path,
                )
                continue
            for body, target_url, message_id, parent_sid in outbound:
                try:
                    endpoint, path = parse_http_url(target_url)
                except ReproError:
                    self.counters.inc("dropped_unroutable")
                    self._m_dropped.labels(reason="unroutable").inc()
                    self._dead_letter(
                        jseq, "unroutable",
                        trace_id=trace.trace_id if trace else None,
                        dest=target_url,
                    )
                    continue
                # WsThreads are bound to *endpoints* (host:port) — every
                # mailbox on one WS-MsgBox service shares one connection
                # queue, exactly like one WsThread per Web Service.
                dest_key = f"{endpoint.host}:{endpoint.port}"
                store = self._dest_store(dest_key)
                # Blocking put: when a destination backs up, CxThreads
                # stall, the accept queue fills, and the HTTP front door
                # starts shedding load — the backpressure chain a
                # bounded-queue thread architecture produces.
                yield store.put(
                    (path, body, message_id, trace, parent_sid, self.sim.now,
                     jseq)
                )
                self._ensure_worker(dest_key, store)

    def _route_one(
        self,
        envelope: Envelope,
        path: str,
        trace: TraceContext | None = None,
        journal_seq: int | None = None,
        from_hold: bool = False,
    ) -> list[tuple[bytes, str, str | None, str | None]]:
        """Pure routing decision: (bytes, target_url, message_id, route span)."""
        headers = AddressingHeaders.from_envelope(envelope)
        now = self.sim.now

        # duplicate absorption (config.dedupe_window): forward only the
        # first of an at-least-once upstream's redeliveries — except a
        # resolve-later redelivery, whose MessageID was recorded on the
        # admission pass that parked it (absorbing would drop the message)
        if (
            not from_hold
            and self._dedupe is not None
            and headers.message_id
            and self._dedupe.seen(headers.message_id)
        ):
            self.counters.inc("duplicates_suppressed")
            self._m_duplicates.inc()
            if journal_seq is not None and self.durable is not None:
                self.durable.mark(journal_seq, ABSORBED, reason="duplicate")
            return []

        for rel in headers.relates_to:
            corr = self._correlations.pop(rel, None)
            if corr is not None:
                if corr.expires_at < now:
                    self.counters.inc("expired_correlations")
                    self._dead_letter(
                        journal_seq, "expired_correlation",
                        trace_id=trace.trace_id if trace else None,
                    )
                    return []
                return self._route_response(
                    envelope, headers, corr, trace, journal_seq=journal_seq
                )

        to_addr = headers.to or path
        try:
            logical = extract_logical(to_addr, self.mount_prefix)
        except RoutingError:
            logical = extract_logical(path.split("?", 1)[0], self.mount_prefix)
        try:
            physical = self.registry.resolve(logical)
        except UnknownServiceError:
            self.counters.inc("unknown_service")
            raise
        except RegistryUnavailable:
            # Transient registry outage: park pre-rewrite under a
            # resolve-later sentinel instead of dead-lettering.  A hold
            # redelivery re-raises so the pump reschedules it.
            if (
                not from_hold
                and self.hold_store is not None
                and headers.message_id
            ):
                self.hold_store.hold(
                    headers.message_id,
                    hold_resolve_target(path),
                    envelope.to_bytes(),
                )
                if (
                    self.durable is not None
                    and journal_seq is not None
                    and getattr(self.hold_store, "durable", None) is not None
                ):
                    self.durable.mark(journal_seq, ABSORBED, reason="held")
                self.counters.inc("hold_registry_unavailable")
                log_event(
                    self._log, logging.INFO, "hold",
                    trace=trace.trace_id if trace else None,
                    reason="registry_unavailable", path=path,
                )
                self._ensure_hold_pump()
                return []
            raise
        result = rewrite_for_forwarding(
            envelope, physical, self.own_address,
            passthrough_reply_prefixes=self.config.passthrough_reply_prefixes,
        )
        if result.original_reply_to or result.original_fault_to:
            self._correlations[result.message_id] = _SimCorrelation(
                result.original_reply_to,
                result.original_fault_to,
                now + self.config.correlation_ttl,
            )
        route_sid = self._route_span(trace, result.envelope, logical, physical)
        if isinstance(result.envelope, LazyEnvelope):
            self.counters.inc("forwarded_spliced")
        self.counters.inc("routed_requests")
        log_event(
            self._log, logging.DEBUG, "route",
            trace=trace.trace_id if trace else None,
            logical=logical, dest=physical,
        )
        return [(result.envelope.to_bytes(), physical, result.message_id, route_sid)]

    def _route_span(
        self,
        trace: TraceContext | None,
        out_envelope: Envelope,
        logical: str | None,
        dest: str,
    ) -> str | None:
        """Record the (instantaneous) routing decision as a span and stamp
        the outgoing envelope so downstream spans parent on it."""
        if trace is None:
            return None
        # Stamp even when the store is disabled: the wire bytes of traced
        # traffic must not depend on store enablement (the overhead
        # benchmark compares the two modes on identical traffic).
        route_sid = self.traces.new_span_id()
        attach_trace(out_envelope, trace.child(route_sid))
        self.traces.record(
            trace.trace_id, "route", "msgd",
            self.sim.now, self.sim.now,
            span_id=route_sid, parent_id=trace.parent_span_id,
            logical=logical or "", dest=dest,
        )
        return route_sid

    def _route_response(
        self,
        envelope: Envelope,
        headers: AddressingHeaders,
        corr: _SimCorrelation,
        trace: TraceContext | None = None,
        journal_seq: int | None = None,
    ) -> list[tuple[bytes, str, str | None, str | None]]:
        target = (
            corr.fault_to if envelope.is_fault() and corr.fault_to else corr.reply_to
        )
        if target is not None and target.address.startswith(_SYNC_SCHEME):
            waiter = self._waiters.pop(target.address, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(envelope)
                self.counters.inc("bridged_responses")
                if journal_seq is not None and self.durable is not None:
                    self.durable.mark(journal_seq, DELIVERED)
            return []
        if target is None or target.is_anonymous:
            self.counters.inc("dropped_no_reply_to")
            self._m_dropped.labels(reason="no_reply_to").inc()
            self._dead_letter(
                journal_seq, "no_reply_to",
                trace_id=trace.trace_id if trace else None,
            )
            return []
        out = envelope.copy()
        new_headers = headers.copy()
        new_headers.to = target.address
        new_headers.reference_headers.extend(
            p.copy() for p in target.reference_properties
        )
        new_headers.attach(out)
        route_sid = self._route_span(trace, out, None, target.address)
        if isinstance(out, LazyEnvelope):
            self.counters.inc("forwarded_spliced")
        self.counters.inc("routed_responses")
        log_event(
            self._log, logging.DEBUG, "route",
            trace=trace.trace_id if trace else None,
            direction="response", dest=target.address,
        )
        return [(out.to_bytes(), target.address, None, route_sid)]

    # -- WsThread processes -------------------------------------------------
    def _dest_store(self, target_url: str) -> Store:
        store = self._destinations.get(target_url)
        if store is None:
            store = Store(self.sim, capacity=self.config.destination_queue)
            self._destinations[target_url] = store
            self._m_dest_depth.labels(dest=target_url).set_function(
                lambda s=store: len(s)
            )
        return store

    def _ensure_worker(self, target_url: str, store: Store) -> None:
        """Spawn delivery workers for a destination, up to the parallel cap
        and justified by its queue depth."""
        active = self._dest_workers.get(target_url, 0)
        if active >= self.config.parallel_per_destination:
            return
        if active > 0 and len(store) <= active:
            return  # existing workers can absorb the backlog
        self._dest_workers[target_url] = active + 1
        self.sim.process(
            self._ws_loop(target_url, store), name=f"sim-ws-{target_url}"
        )

    def _enqueue(
        self,
        envelope_bytes: bytes,
        target_url: str,
        message_id: str | None = None,
        trace: TraceContext | None = None,
        parent_span_id: str | None = None,
        journal_seq: int | None = None,
    ) -> None:
        """Non-blocking enqueue (used off the CxThread path)."""
        try:
            endpoint, path = parse_http_url(target_url)
        except ReproError:
            self.counters.inc("dropped_unroutable")
            self._m_dropped.labels(reason="unroutable").inc()
            self._dead_letter(
                journal_seq, "unroutable",
                trace_id=trace.trace_id if trace else None, dest=target_url,
            )
            return
        dest_key = f"{endpoint.host}:{endpoint.port}"
        store = self._dest_store(dest_key)
        if not store.try_put(
            (path, envelope_bytes, message_id, trace, parent_span_id,
             self.sim.now, journal_seq)
        ):
            self.counters.inc("dropped_destination_queue_full")
            self._m_dropped.labels(reason="destination_queue_full").inc()
            self._dead_letter(
                journal_seq, "destination_queue_full",
                trace_id=trace.trace_id if trace else None, dest=dest_key,
            )
            return
        self._ensure_worker(dest_key, store)

    def _ws_loop(self, dest_key: str, store: Store):
        """One delivery worker.

        A WsThread slot is held for **one batch at a time** and then
        released — the pool rotates FIFO-fairly across busy destinations.
        A destination whose deliveries hang (firewalled client endpoints)
        therefore stalls every slot it wins for a whole batch of connect
        timeouts, starving the healthy destinations: the mechanism behind
        "the MSG-Dispatcher tried to send a response that was blocked by
        firewall leading to the slowest performance".
        """
        host, _, port_text = dest_key.rpartition(":")
        port = int(port_text)
        try:
            while self._running:
                get = store.get()
                idx, first = yield self.sim.any_of(
                    [get, self.sim.timeout(self.config.destination_idle_ttl)]
                )
                if idx == 1:
                    get.cancel()
                    return  # idle: exit (respawned on next enqueue)
                batch = [first]
                while len(store) and len(batch) < self.config.batch_size:
                    batch.append(store.items.popleft())
                slot = self._ws_slots.request()
                yield slot
                try:
                    if self.config.pipeline_batches and len(batch) > 1:
                        yield from self._deliver_batch(host, port, batch)
                    else:
                        for item in batch:
                            yield from self._deliver(host, port, *item)
                finally:
                    slot.release()
        finally:
            remaining = self._dest_workers.get(dest_key, 1) - 1
            self._dest_workers[dest_key] = max(0, remaining)
            if len(store):
                # messages arrived while we were exiting: restart a worker
                self._ensure_worker(dest_key, store)

    def _deliver(
        self,
        host: str,
        port: int,
        path: str,
        body: bytes,
        message_id: str | None = None,
        trace: TraceContext | None = None,
        parent_span_id: str | None = None,
        enqueued_at: float | None = None,
        journal_seq: int | None = None,
    ):
        dest = f"{host}:{port}"
        t_send = self.sim.now
        if enqueued_at is not None:
            self._m_queue_wait.labels(queue="destination").observe(
                t_send - enqueued_at
            )
            self._m_stage_queue_dest.observe(t_send - enqueued_at)
            if trace is not None:
                self.traces.record(
                    trace.trace_id, "queue-wait", "msgd",
                    enqueued_at, t_send,
                    parent_id=parent_span_id, queue="destination", dest=dest,
                )
        if self.breakers is not None and not self.breakers.allow(dest):
            self._breaker_block(dest, path, body, message_id, trace, journal_seq)
            return
        try:
            response = yield from self.pool.exchange(
                host, port, _soap_post(path, body)
            )
            if response.status >= 400:
                raise TransportError(f"HTTP {response.status}")
        except (TransportError, ReproError):
            self.counters.inc("delivery_failures")
            if self.breakers is not None:
                self.breakers.record(dest, ok=False)
            if self._park_failed(dest, path, body, message_id, journal_seq):
                self.counters.inc("held_for_retry")
                log_event(
                    self._log, logging.DEBUG, "hold",
                    trace=trace.trace_id if trace else None,
                    reason="delivery_failure", dest=dest,
                )
                return
            self._m_dropped.labels(reason="delivery_failure").inc()
            self._dead_letter(
                journal_seq, "delivery_failure",
                trace_id=trace.trace_id if trace else None, dest=dest,
            )
            log_event(
                self._log, logging.WARNING, "drop",
                trace=trace.trace_id if trace else None,
                reason="delivery_failure", dest=dest,
            )
            return
        t_done = self.sim.now
        if self.breakers is not None:
            self.breakers.record(dest, ok=True)
        if self.hold_store is not None and message_id is not None:
            self.hold_store.complete(message_id)
        if self.durable is not None and journal_seq is not None:
            self.durable.mark(journal_seq, DELIVERED)
        self.counters.inc("delivered")
        self._m_delivered.inc()
        self._m_transmit.observe(t_done - t_send)
        self._m_stage_deliver.observe(t_done - t_send)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "deliver", "msgd",
                t_send, t_done,
                parent_id=parent_span_id, dest=dest,
            )
        log_event(
            self._log, logging.DEBUG, "deliver",
            trace=trace.trace_id if trace else None, dest=dest,
        )
        self._absorb_inband_response(response, message_id, trace, parent_span_id)

    def _deliver_batch(self, host: str, port: int, batch: list):
        """Drain one batch as a single pipelined burst (simulated twin of
        the threaded ``MsgDispatcher._deliver_batch``).

        Per-item semantics match :meth:`_deliver` — queue-wait spans,
        delivered/failed accounting, in-band response absorption — but the
        wire schedule is one write burst instead of N serialized round
        trips, plus one ``pipeline-burst`` span per distinct trace in the
        batch parenting the per-item ``deliver`` spans.
        """
        dest = f"{host}:{port}"
        t_burst = self.sim.now
        if self.breakers is not None and not self.breakers.allow(dest):
            for path, body, message_id, trace, _sid, _enq, jseq in batch:
                self._breaker_block(dest, path, body, message_id, trace, jseq)
            return
        for path, body, message_id, trace, parent_sid, enqueued_at, _jseq in batch:
            if enqueued_at is not None:
                self._m_queue_wait.labels(queue="destination").observe(
                    t_burst - enqueued_at
                )
                self._m_stage_queue_dest.observe(t_burst - enqueued_at)
                if trace is not None:
                    self.traces.record(
                        trace.trace_id, "queue-wait", "msgd",
                        enqueued_at, t_burst,
                        parent_id=parent_sid, queue="destination", dest=dest,
                    )
        requests = [_soap_post(path, body) for path, body, *_ in batch]
        outcomes = yield from self.pool.pipeline(host, port, requests)
        t_done = self.sim.now

        burst_sid = None
        traced = {
            item[3].trace_id: item for item in batch if item[3] is not None
        }
        if traced:
            burst_sid = self.traces.new_span_id()
            for trace_id, first in traced.items():
                self.traces.record(
                    trace_id, "pipeline-burst", "msgd",
                    t_burst, t_done,
                    span_id=burst_sid, parent_id=first[4],
                    dest=dest, size=len(batch),
                )
        for item, outcome in zip(batch, outcomes):
            path, body, message_id, trace, parent_sid, _enq, jseq = item
            ok = isinstance(outcome, HttpResponse) and outcome.status < 400
            if self.breakers is not None:
                self.breakers.record(dest, ok)
            if ok:
                if self.hold_store is not None and message_id is not None:
                    self.hold_store.complete(message_id)
                if self.durable is not None and jseq is not None:
                    self.durable.mark(jseq, DELIVERED)
                self.counters.inc("delivered")
                self._m_delivered.inc()
                self._m_transmit.observe(t_done - t_burst)
                self._m_stage_deliver.observe(t_done - t_burst)
                if trace is not None:
                    self.traces.record(
                        trace.trace_id, "deliver", "msgd",
                        t_burst, t_done,
                        parent_id=burst_sid,
                        dest=dest,
                    )
                log_event(
                    self._log, logging.DEBUG, "deliver",
                    trace=trace.trace_id if trace else None, dest=dest,
                )
                self._absorb_inband_response(
                    outcome, message_id, trace, parent_sid
                )
            else:
                self.counters.inc("delivery_failures")
                if self._park_failed(dest, path, body, message_id, jseq):
                    self.counters.inc("held_for_retry")
                    log_event(
                        self._log, logging.DEBUG, "hold",
                        trace=trace.trace_id if trace else None,
                        reason="delivery_failure", dest=dest,
                    )
                    continue
                self._m_dropped.labels(reason="delivery_failure").inc()
                self._dead_letter(
                    jseq, "delivery_failure",
                    trace_id=trace.trace_id if trace else None, dest=dest,
                )
                log_event(
                    self._log, logging.WARNING, "drop",
                    trace=trace.trace_id if trace else None,
                    reason="delivery_failure", dest=dest,
                )

    # -- hold/retry + breaker wiring ----------------------------------------
    def _park_failed(
        self,
        dest: str,
        path: str,
        body: bytes,
        message_id: str | None,
        journal_seq: int | None = None,
    ) -> bool:
        """Park a failed delivery in the hold store; True when parked.

        A message already held (a redelivery claimed by the pump) is
        rescheduled — its attempt was counted at claim time; a fresh
        message is held under its MessageID.  Messages without a
        MessageID cannot be deduplicated on redelivery, so they are never
        parked.  When the hold store journals its own ``held`` record,
        the inbound record is retired (absorbed) so a crash replays the
        message from exactly one record.
        """
        if self.hold_store is None or message_id is None:
            return False
        if self.hold_store.is_held(message_id):
            self.hold_store.reschedule(message_id, now=self.sim.now)
        else:
            self.hold_store.hold(message_id, f"http://{dest}{path}", body)
            if (
                self.durable is not None
                and journal_seq is not None
                and getattr(self.hold_store, "durable", None) is not None
            ):
                self.durable.mark(journal_seq, ABSORBED, reason="held")
        self._ensure_hold_pump()
        return True

    def _breaker_block(
        self,
        dest: str,
        path: str,
        body: bytes,
        message_id: str | None,
        trace: TraceContext | None,
        journal_seq: int | None = None,
    ) -> None:
        """An open breaker refused the delivery: park instead of burning a
        connect timeout against the dead destination."""
        if self._park_failed(dest, path, body, message_id, journal_seq):
            self.counters.inc("held_breaker_open")
            log_event(
                self._log, logging.DEBUG, "hold",
                trace=trace.trace_id if trace else None,
                reason="breaker_open", dest=dest,
            )
            return
        self.counters.inc("dropped_breaker_open")
        self._m_dropped.labels(reason="breaker_open").inc()
        self._dead_letter(
            journal_seq, "breaker_open",
            trace_id=trace.trace_id if trace else None, dest=dest,
        )
        log_event(
            self._log, logging.WARNING, "drop",
            trace=trace.trace_id if trace else None,
            reason="breaker_open", dest=dest,
        )

    def _ensure_hold_pump(self) -> None:
        if self.hold_store is None or self._hold_pump_active:
            return
        self._hold_pump_active = True
        self.sim.process(self._hold_pump_loop(), name="sim-hold-pump")

    def _hold_pump_loop(self):
        """Periodic redelivery pump; exits when the store drains (and is
        respawned by the next park) so an idle simulation still runs dry."""
        try:
            while self._running:
                yield self.sim.timeout(self.config.hold_pump_interval)
                for msg in self.hold_store.take_due(now=self.sim.now):
                    self._requeue_held(msg)
                if self.hold_store.pending() == 0:
                    return
        finally:
            self._hold_pump_active = False

    def _requeue_held(self, msg) -> None:
        """Feed one claimed held message back into a destination queue."""
        if is_hold_resolve_target(msg.target_url):
            self._requeue_unresolved(msg)
            return
        try:
            endpoint, path = parse_http_url(msg.target_url)
        except ReproError:
            self.hold_store.reschedule(msg.message_id, now=self.sim.now)
            return
        dest_key = f"{endpoint.host}:{endpoint.port}"
        store = self._dest_store(dest_key)
        if not store.try_put(
            (path, msg.envelope_bytes, msg.message_id, None, None, self.sim.now,
             None)
        ):
            self.hold_store.reschedule(msg.message_id, now=self.sim.now)
            return
        self.counters.inc("held_requeued")
        self._ensure_worker(dest_key, store)

    def _requeue_unresolved(self, msg) -> None:
        """Re-run the routing pass for a message parked while the registry
        was unavailable.  Still-unavailable (or any transient routing
        error) reschedules; a routed message re-enters the outbound
        pipeline under its preserved MessageID, so the eventual delivery
        completes the hold entry."""
        path = split_hold_resolve_target(msg.target_url)
        try:
            envelope = parse_envelope(
                msg.envelope_bytes, counter=self._m_fastpath,
                fast=self.config.fast_path,
            )
            outbound = self._route_one(
                envelope, path, trace=extract_trace(envelope), from_hold=True
            )
        except ReproError:
            self.hold_store.reschedule(msg.message_id, now=self.sim.now)
            return
        if not outbound:
            # handled in-band (correlation, sync waiter): nothing left to
            # deliver, so the hold entry is done
            self.hold_store.complete(msg.message_id)
            return
        requeued = False
        for body, target_url, message_id, parent_sid in outbound:
            try:
                endpoint, out_path = parse_http_url(target_url)
            except ReproError:
                continue
            dest_key = f"{endpoint.host}:{endpoint.port}"
            store = self._dest_store(dest_key)
            if store.try_put(
                (out_path, body, message_id, None, parent_sid, self.sim.now,
                 None)
            ):
                requeued = True
                self._ensure_worker(dest_key, store)
        if requeued:
            self.counters.inc("held_requeued")
        else:
            self.hold_store.reschedule(msg.message_id, now=self.sim.now)

    def _absorb_inband_response(
        self,
        response: HttpResponse,
        message_id: str | None,
        trace: TraceContext | None = None,
        parent_span_id: str | None = None,
    ) -> None:
        """Quadrant 3 of Table 1: translate an in-band RPC reply into a
        one-way response message and re-inject it into the pipeline."""
        if response.status != 200 or not response.body or message_id is None:
            return
        try:
            envelope = parse_envelope(
                response.body,
                counter=self._m_fastpath,
                fast=self.config.fast_path,
            )
            headers = AddressingHeaders.from_envelope(envelope)
        except ReproError:
            self.counters.inc("inband_unparseable")
            return
        if message_id not in headers.relates_to:
            headers.relates_to.append(message_id)
        if not headers.to:
            headers.to = self.own_address
        headers.attach(envelope)
        # An RPC service won't echo our trace header; continue the
        # forwarded message's context on the synthesised response.
        in_trace = extract_trace(envelope) or (
            trace.child(parent_span_id)
            if trace is not None and parent_span_id
            else trace
        )
        jseq: int | None = None
        if self.durable is not None:
            # a synthesised response is a fresh inbound message
            jseq = self.durable.append(
                None, self.mount_prefix, envelope.to_bytes(), kind="inbound"
            )
        if self._accept.try_put(
            (envelope, self.mount_prefix, in_trace, self.sim.now, jseq)
        ):
            self.counters.inc("inband_responses")
        elif jseq is not None:
            self.durable.mark(jseq, ABSORBED, reason="rejected")

    # -- sync-over-async bridge (Table 1 quadrant 2) ------------------------
    def bridge_handler(
        self,
        request: HttpRequest,
        bridge_timeout: float = 30.0,
        mount_prefix: str = "/bridge",
    ):
        """Generator handler: RPC client in, messaging service behind.

        Forwards the message through the normal pipeline but holds the
        client's HTTP connection open until the asynchronous response
        comes back (or the bridge timeout fires — "may not work at all if
        message reply comes too late").  Plain RPC envelopes without any
        WS-Addressing are accepted: the bridge synthesises a MessageID and
        derives ``wsa:To`` from the request path.
        """
        if request.method != "POST":
            return HttpResponse(status=405)
        try:
            envelope = Envelope.from_bytes(request.body)
            headers = AddressingHeaders.from_envelope(envelope)
        except (XmlError, SoapError) as exc:
            return soap_fault_response(Fault("Client", str(exc)), status=400)
        if not headers.to:
            from repro.core.routing import logical_uri

            try:
                headers.to = logical_uri(
                    extract_logical(request.target, mount_prefix)
                )
            except RoutingError as exc:
                return soap_fault_response(Fault("Client", str(exc)), status=404)
        message_id = headers.message_id or f"uuid:bridge-{id(request)}-{self.sim.now}"
        sentinel = f"{_SYNC_SCHEME}{message_id}"
        headers.message_id = message_id
        headers.reply_to = EndpointReference(sentinel)
        headers.attach(envelope)

        waiter = self.sim.event()
        self._waiters[sentinel] = waiter
        trace = extract_trace(envelope)
        try:
            outbound = self._route_one(envelope, request.target, trace)
        except ReproError as exc:
            self._waiters.pop(sentinel, None)
            self.counters.inc("dropped_unroutable")
            return soap_fault_response(Fault("Client", str(exc)), status=404)
        for body, target_url, out_mid, parent_sid in outbound:
            self._enqueue(
                body, target_url, message_id=out_mid,
                trace=trace, parent_span_id=parent_sid,
            )
        self.counters.inc("accepted")
        idx, value = yield self.sim.any_of(
            [waiter, self.sim.timeout(bridge_timeout)]
        )
        if idx == 1:
            self._waiters.pop(sentinel, None)
            self.counters.inc("bridge_timeouts")
            return soap_fault_response(
                Fault("Server", "no response before bridge timeout"), status=504
            )
        reply: Envelope = value
        body = reply.to_bytes()
        out = Headers()
        out.set("Content-Type", reply.version.content_type)
        return HttpResponse(status=200, headers=out, body=body)

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        return self.counters.as_dict()

    def pending_correlations(self) -> int:
        return len(self._correlations)

    def backlog(self) -> int:
        return len(self._accept) + sum(len(s) for s in self._destinations.values())

    def health_snapshot(self) -> dict:
        """Overload/robustness view (for ``Introspection.add_health_source``)."""
        snapshot: dict = {
            "backlog": self.backlog(),
            "shed": self.counters.as_dict().get("shed_overload", 0),
        }
        if self.breakers is not None:
            snapshot["breakers"] = self.breakers.snapshot()
        if self.hold_store is not None:
            snapshot["hold_store"] = dict(self.hold_store.stats)
            snapshot["hold_store"]["pending"] = self.hold_store.pending()
        if self.durable is not None:
            snapshot["journal"] = dict(
                self.durable.stats,
                pending=self.durable.pending_count(),
                dead=self.durable.counts().get(DEAD, 0),
            )
        return snapshot

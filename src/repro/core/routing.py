"""Pure routing decisions shared by all dispatcher hostings.

Logical addressing conventions (the paper leaves the URI scheme open; we
fix one so every runtime agrees):

- RPC mode: clients POST to ``http://<dispatcher>/rpc/<logical>`` and the
  dispatcher forwards the body to the physical URL.
- MSG mode: clients address messages with ``wsa:To`` set to the *logical
  URI* ``urn:wsd:<logical>`` (or to the dispatcher's HTTP endpoint for
  that logical, ``http://<dispatcher>/msg/<logical>``).  The dispatcher
  resolves either form.
"""

from __future__ import annotations

from repro.errors import RoutingError

LOGICAL_SCHEME = "urn:wsd:"

#: Hold-store sentinel for messages parked *before* resolution: when the
#: registry cannot answer, the dispatcher has no physical URL yet, so the
#: held target carries the original request path to re-route on redelivery.
HOLD_RESOLVE_SCHEME = "hold+resolve:"


def hold_resolve_target(path: str) -> str:
    """Sentinel hold-store target for a message awaiting resolution."""
    return f"{HOLD_RESOLVE_SCHEME}{path}"


def is_hold_resolve_target(target: str) -> bool:
    return target.startswith(HOLD_RESOLVE_SCHEME)


def split_hold_resolve_target(target: str) -> str:
    """Recover the original request path from a resolve-later sentinel."""
    if not target.startswith(HOLD_RESOLVE_SCHEME):
        raise RoutingError(f"not a hold+resolve target: {target!r}")
    return target[len(HOLD_RESOLVE_SCHEME):]


def logical_uri(logical: str) -> str:
    """The transport-independent logical URI for a service name."""
    if not logical:
        raise RoutingError("logical name must be non-empty")
    return f"{LOGICAL_SCHEME}{logical}"


def extract_logical(address: str, mount_prefix: str | None = None) -> str:
    """Extract a logical service name from an addressing URI or URL path.

    Accepts:

    - ``urn:wsd:<name>``
    - ``/prefix/<name>[/more]`` (a path; ``mount_prefix`` e.g. ``/rpc``)
    - ``http://host:port/prefix/<name>`` (a full dispatcher URL)

    Raises :class:`~repro.errors.RoutingError` when no name is present.
    """
    if address.startswith(LOGICAL_SCHEME):
        name = address[len(LOGICAL_SCHEME):]
        if not name:
            raise RoutingError(f"empty logical name in {address!r}")
        return name

    path = address
    if address.startswith("http://") or address.startswith("https://"):
        rest = address.split("://", 1)[1]
        slash = rest.find("/")
        path = rest[slash:] if slash >= 0 else "/"

    if not path.startswith("/"):
        raise RoutingError(f"cannot extract logical name from {address!r}")
    path = path.split("?", 1)[0]
    segments = [s for s in path.split("/") if s]
    if mount_prefix is not None:
        want = [s for s in mount_prefix.split("/") if s]
        if segments[: len(want)] != want:
            raise RoutingError(
                f"path {path!r} is not under mount prefix {mount_prefix!r}"
            )
        segments = segments[len(want):]
    if not segments:
        raise RoutingError(f"no logical name in {address!r}")
    return segments[0]

"""The paper's contribution: WS-Dispatcher (RPC + MSG variants) and Registry.

Layout:

- :mod:`repro.core.registry` — logical→physical service registry (shared
  module, "independent from forwarding requests" per the paper).
- :mod:`repro.core.routing` — pure address-extraction and forwarding
  decisions shared by every dispatcher hosting.
- :mod:`repro.core.rpc_dispatcher` — the HTTP-proxy-style forwarder.
- :mod:`repro.core.msg_dispatcher` — the asynchronous WS-Addressing
  router with CxThread/WsThread pools.
- :mod:`repro.core.loadbalance` — registry-integrated load balancing over
  a dispatcher farm (paper §"Conclusions and Future Work").
- :mod:`repro.core.sso` — single sign-on gate (future work).
"""

from repro.core.registry import ServiceRecord, ServiceRegistry, RegistryService
from repro.core.routing import extract_logical, logical_uri
from repro.core.rpc_dispatcher import RpcDispatcher
from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.loadbalance import BalancerPolicy, DispatcherFarm
from repro.core.sso import SsoGate, TokenIssuer
from repro.core.status import StatusPage

__all__ = [
    "ServiceRecord",
    "ServiceRegistry",
    "RegistryService",
    "extract_logical",
    "logical_uri",
    "RpcDispatcher",
    "MsgDispatcher",
    "MsgDispatcherConfig",
    "BalancerPolicy",
    "DispatcherFarm",
    "SsoGate",
    "TokenIssuer",
    "StatusPage",
]

"""Single sign-on gate (paper future work §4.4).

"We are also planning to investigate how WSD can provide authentication
and authorization (single sign-on) for web services that do not need to
implement security [and] instead rely on WSD to do checks."

Design: a :class:`TokenIssuer` authenticates principals (username/secret
table) and mints signed, expiring tokens (HMAC-SHA256 over
``principal|expiry``).  The :class:`SsoGate` is an inspector hook for
either dispatcher: it extracts the token from a SOAP header
(``<sso:Token>`` in namespace ``urn:repro:sso``) and enforces per-service
access-control lists.  Services behind the dispatcher stay completely
security-unaware.
"""

from __future__ import annotations

import hashlib
import hmac
import threading

from repro.errors import AuthError
from repro.soap import Envelope
from repro.util.clock import Clock, MonotonicClock
from repro.xmlmini import QName

SSO_NS = "urn:repro:sso"
_Q_TOKEN = QName(SSO_NS, "Token")


class TokenIssuer:
    """Authenticates principals and mints/verifies signed tokens."""

    def __init__(
        self,
        secret: bytes,
        token_ttl: float = 3600.0,
        clock: Clock | None = None,
    ) -> None:
        if not secret:
            raise ValueError("issuer secret must be non-empty")
        self._secret = secret
        self.token_ttl = token_ttl
        self.clock = clock or MonotonicClock()
        self._credentials: dict[str, str] = {}
        self._lock = threading.Lock()

    def add_principal(self, name: str, password: str) -> None:
        with self._lock:
            self._credentials[name] = password

    def login(self, name: str, password: str) -> str:
        """Authenticate and mint a token; raises AuthError on bad login."""
        with self._lock:
            expected = self._credentials.get(name)
        if expected is None or not hmac.compare_digest(expected, password):
            raise AuthError(f"bad credentials for {name!r}")
        expiry = self.clock.now() + self.token_ttl
        return self._mint(name, expiry)

    def _mint(self, principal: str, expiry: float) -> str:
        payload = f"{principal}|{expiry:.3f}"
        sig = hmac.new(self._secret, payload.encode(), hashlib.sha256).hexdigest()
        return f"{payload}|{sig}"

    def verify(self, token: str) -> str:
        """Return the principal for a valid token; raise AuthError otherwise."""
        parts = token.split("|")
        if len(parts) != 3:
            raise AuthError("malformed token")
        principal, expiry_text, sig = parts
        payload = f"{principal}|{expiry_text}"
        expected = hmac.new(self._secret, payload.encode(), hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, sig):
            raise AuthError("token signature invalid")
        try:
            expiry = float(expiry_text)
        except ValueError:
            raise AuthError("malformed token expiry") from None
        if self.clock.now() > expiry:
            raise AuthError("token expired")
        return principal


class SsoGate:
    """Dispatcher inspector enforcing authn + per-service authz.

    Usage: ``RpcDispatcher(..., inspector=gate)`` (the gate is callable) or
    call :meth:`check` from custom pipelines.  ACLs map logical service
    name → allowed principals; a service with no ACL entry is open.
    """

    def __init__(self, issuer: TokenIssuer) -> None:
        self.issuer = issuer
        self._acl: dict[str, set[str]] = {}
        self._lock = threading.Lock()

    def restrict(self, logical: str, principals: list[str]) -> None:
        with self._lock:
            self._acl[logical] = set(principals)

    def __call__(self, envelope: Envelope, logical: str) -> None:
        self.check(envelope, logical)

    def check(self, envelope: Envelope, logical: str) -> str | None:
        """Validate the envelope's token against the service's ACL.

        Returns the principal (None for open services with no token).
        Raises :class:`~repro.errors.AuthError` on any violation.
        """
        with self._lock:
            allowed = self._acl.get(logical)
        token_el = None
        for h in envelope.headers:
            if h.name == _Q_TOKEN:
                token_el = h
                break
        if allowed is None and token_el is None:
            return None  # open service, anonymous caller
        if token_el is None:
            raise AuthError(f"service {logical!r} requires an SSO token")
        principal = self.issuer.verify(token_el.text.strip())
        if allowed is not None and principal not in allowed:
            raise AuthError(f"{principal!r} is not authorized for {logical!r}")
        return principal


def attach_token(envelope: Envelope, token: str) -> Envelope:
    """Add an ``<sso:Token>`` header to an envelope (client side)."""
    from repro.xmlmini import Element

    envelope.headers.append(Element(_Q_TOKEN, text=token))
    return envelope

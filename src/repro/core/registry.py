"""Service registry: logical addresses → physical locations.

Paper §4.1: "Both dispatchers share a common functionality: registry of
services. ... Each entry in the service registry describes the 'logical'
address used by clients and the permanent addresses where the service is
implemented. ... this registry of services could be used like a directory
or Yellow Pages, possibly as a simple browseable list of WSDL files with
metadata.  Because creating a real registry of services ... is independent
from forwarding requests, the registry is an independent module."

Implementation notes mirroring §4.2: the registry is a concurrent map
(Python dict + RLock — the moral equivalent of the Concurrent Java
Library's hash map) optionally persisted to a text file
(:class:`~repro.util.textdb.TextFileMap`).  Entries may carry several
physical addresses; selection among them is delegated to a pluggable
policy, which is where the future-work load balancing plugs in
(:mod:`repro.core.loadbalance`).
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RegistryError, RegistryUnavailable, UnknownServiceError
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.soap import Envelope, RpcResponse, build_rpc_response, parse_rpc_request
from repro.util.concurrency import SingleFlight
from repro.util.textdb import TextFileMap

#: SOAP RPC interface namespace of the registry service.
REGISTRY_NS = "urn:repro:registry"


@dataclass
class ServiceRecord:
    """One registry entry."""

    logical: str
    physical: list[str]
    #: human-readable metadata (description, WSDL pointer, owner ...)
    metadata: dict[str, str] = field(default_factory=dict)
    enabled: bool = True
    #: None = never checked; otherwise (timestamp, alive)
    last_health: tuple[float, bool] | None = None

    def __post_init__(self) -> None:
        if not self.logical:
            raise RegistryError("logical address must be non-empty")
        if not self.physical:
            raise RegistryError(f"service {self.logical!r} needs >=1 physical address")


class ServiceRegistry:
    """Thread-safe logical→physical mapping with optional persistence."""

    def __init__(
        self,
        persist_path: str | None = None,
        selector: Callable[[ServiceRecord], str] | None = None,
        backend: object | None = None,
        metrics: MetricsRegistry | None = None,
        lookup_cache_ttl: float = 5.0,
    ) -> None:
        """``backend`` is any TextFileMap-shaped store (put/get/remove/items)
        — e.g. :class:`~repro.util.sqldb.SqliteMap` for the paper's
        relational-database future work.  ``persist_path`` is shorthand
        for the text-file backend.

        ``lookup_cache_ttl`` enables a read-through cache in front of
        :meth:`lookup`: the dispatchers resolve the same handful of
        logical names once per message, and the CxThread path should not
        pay the registry lock (or, with a database backend, the backing
        store) per message.  Every mutation of a record —
        :meth:`register`, :meth:`unregister`, :meth:`add_physical`,
        :meth:`remove_physical`, :meth:`set_enabled` — invalidates that
        record's cache entry immediately; the TTL only bounds staleness
        against *external* mutation of a shared backend.  ``0`` disables
        the cache."""
        self._lock = threading.RLock()
        self._records: dict[str, ServiceRecord] = {}
        self.metrics = metrics if metrics is not None else default_registry()
        self._log = component_logger("registry")
        self._m_lookups = self.metrics.counter(
            "registry_lookups_total", "logical address resolutions attempted"
        )
        self._m_misses = self.metrics.counter(
            "registry_misses_total", "resolutions that found no enabled service"
        )
        cache_counter = self.metrics.counter(
            "registry_cache_total", "lookup cache outcomes, by outcome"
        )
        self._m_cache_hits = cache_counter.labels(outcome="hit")
        self._m_cache_misses = cache_counter.labels(outcome="miss")
        self._m_cache_coalesced = cache_counter.labels(outcome="coalesced")
        self._cache_ttl = lookup_cache_ttl
        #: stampede protection: concurrent cache misses for one logical
        #: name collapse into one locked resolution (the waiters count as
        #: outcome="coalesced" instead of "miss")
        self._miss_flight: SingleFlight[ServiceRecord] = SingleFlight()
        #: logical -> (record, monotonic deadline); plain dict, no lock —
        #: single-key get/set/pop are atomic under the GIL and a racing
        #: reader at worst re-resolves through the locked slow path
        self._cache: dict[str, tuple[ServiceRecord, float]] = {}
        self.metrics.gauge(
            "registry_services", "registered logical services"
        ).set_function(lambda: len(self))
        if backend is not None:
            self._db = backend
        else:
            self._db = TextFileMap(persist_path) if persist_path else None
        self._selector = selector or (lambda record: record.physical[0])
        self._lookups = 0
        self._misses = 0
        #: fault injection: while False every lookup/resolve raises
        #: RegistryUnavailable (a crashed or partitioned registry server)
        self._available = True
        self._unavailable_rejects = 0
        if self._db is not None:
            for logical, primary, attrs in self._db.items():
                extra = attrs.pop("_alt", "")
                physical = [primary] + [a for a in extra.split(",") if a]
                self._records[logical] = ServiceRecord(
                    logical, physical, metadata=attrs
                )

    # -- mutation -----------------------------------------------------------
    def register(
        self,
        logical: str,
        physical: str | list[str],
        metadata: dict[str, str] | None = None,
    ) -> ServiceRecord:
        addresses = [physical] if isinstance(physical, str) else list(physical)
        record = ServiceRecord(logical, addresses, metadata=dict(metadata or {}))
        with self._lock:
            self._records[logical] = record
            self._persist(record)
            self._invalidate(logical)
        log_event(
            self._log, logging.INFO, "register",
            logical=logical, physical=",".join(addresses),
        )
        return record

    def add_physical(self, logical: str, physical: str) -> None:
        with self._lock:
            record = self._require(logical)
            if physical not in record.physical:
                record.physical.append(physical)
                self._persist(record)
                self._invalidate(logical)

    def remove_physical(self, logical: str, physical: str) -> None:
        with self._lock:
            record = self._require(logical)
            if physical in record.physical:
                if len(record.physical) == 1:
                    raise RegistryError(
                        f"cannot remove last physical address of {logical!r}"
                    )
                record.physical.remove(physical)
                self._persist(record)
                self._invalidate(logical)

    def unregister(self, logical: str) -> bool:
        with self._lock:
            existed = self._records.pop(logical, None) is not None
            if existed and self._db is not None:
                self._db.remove(logical)
            self._invalidate(logical)
        if existed:
            log_event(self._log, logging.INFO, "unregister", logical=logical)
        return existed

    def set_enabled(self, logical: str, enabled: bool) -> None:
        with self._lock:
            self._require(logical).enabled = enabled
            self._invalidate(logical)

    def _invalidate(self, logical: str) -> None:
        """Drop a cached lookup after any mutation of its record."""
        self._cache.pop(logical, None)

    def _persist(self, record: ServiceRecord) -> None:
        if self._db is None:
            return
        attrs = dict(record.metadata)
        if len(record.physical) > 1:
            attrs["_alt"] = ",".join(record.physical[1:])
        self._db.put(record.logical, record.physical[0], attrs)

    # -- lookup ---------------------------------------------------------------
    def _require(self, logical: str) -> ServiceRecord:
        record = self._records.get(logical)
        if record is None:
            raise UnknownServiceError(logical)
        return record

    def lookup(self, logical: str) -> ServiceRecord:
        """Full record for a logical address (raises UnknownServiceError).

        Read-through cached (see ``lookup_cache_ttl``): a hit returns the
        live record without taking the registry lock; a miss resolves
        under the lock and populates the cache.  Concurrent misses for the
        same name are single-flighted — one caller resolves, the rest wait
        and share the result (outcome="coalesced"), so a cache expiry
        under load cannot stampede the backing store.  Unknown/disabled
        names are never negatively cached — a service that registers
        becomes resolvable immediately.
        """
        self._m_lookups.inc()
        if not self._available:
            with self._lock:
                self._unavailable_rejects += 1
            raise RegistryUnavailable("registry is unavailable")
        if self._cache_ttl > 0:
            entry = self._cache.get(logical)
            if entry is not None:
                record, deadline = entry
                if deadline >= time.monotonic() and record.enabled:
                    self._m_cache_hits.inc()
                    with self._lock:
                        self._lookups += 1
                    return record
                self._cache.pop(logical, None)
            coalesced = False
            try:
                record, coalesced = self._miss_flight.run(
                    logical, lambda: self._lookup_uncached(logical)
                )
            finally:
                outcome = self._m_cache_coalesced if coalesced else self._m_cache_misses
                outcome.inc()
            if coalesced:
                with self._lock:
                    self._lookups += 1
            return record
        return self._lookup_uncached(logical)

    def _lookup_uncached(self, logical: str) -> ServiceRecord:
        """The locked slow path: resolve and (re)populate the cache."""
        with self._lock:
            self._lookups += 1
            record = self._records.get(logical)
            if record is None or not record.enabled:
                self._misses += 1
                miss = True
            else:
                miss = False
        if miss:
            self._m_misses.inc()
            log_event(self._log, logging.DEBUG, "miss", logical=logical)
            raise UnknownServiceError(logical)
        if self._cache_ttl > 0:
            self._cache[logical] = (record, time.monotonic() + self._cache_ttl)
        return record

    def resolve(self, logical: str) -> str:
        """One physical address for a logical name, via the selector policy."""
        record = self.lookup(logical)
        with self._lock:
            return self._selector(record)

    def set_available(self, available: bool) -> None:
        """Fault injection switch: an unavailable registry refuses every
        lookup/resolve with :class:`RegistryUnavailable` until restored."""
        with self._lock:
            self._available = available
        log_event(
            self._log, logging.WARNING,
            "available" if available else "unavailable",
        )

    @property
    def available(self) -> bool:
        return self._available

    def list_services(self) -> list[ServiceRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.logical)

    def __contains__(self, logical: str) -> bool:
        with self._lock:
            return logical in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"lookups": self._lookups, "misses": self._misses}

    def cache_stats(self) -> dict[str, float]:
        """Lookup-cache effectiveness (also exported as
        ``registry_cache_total{outcome=hit|miss}``)."""
        hits = float(self._m_cache_hits.get())
        misses = float(self._m_cache_misses.get())
        coalesced = float(self._m_cache_coalesced.get())
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "coalesced": coalesced,
            "hit_rate": hits / total if total else 0.0,
        }

    # -- liveness (future work: "checking if service is alive") -----------
    def check_alive(
        self, logical: str, probe: Callable[[str], bool], now: float | None = None
    ) -> bool:
        """Probe the selected physical address; record and return liveness."""
        record = self.lookup(logical)
        address = record.physical[0]
        alive = False
        try:
            alive = probe(address)
        except Exception:
            alive = False
        with self._lock:
            record.last_health = (now if now is not None else time.time(), alive)
        return alive


#: WSDL 1.1 namespaces used by the browsable service descriptions
_WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
_WSDL_SOAP_NS = "http://schemas.xmlsoap.org/wsdl/soap/"


class RegistryService:
    """SOAP RPC facade over a :class:`ServiceRegistry`.

    Operations (namespace ``urn:repro:registry``): ``register``,
    ``unregister``, ``lookup``, ``list``, and ``ping`` (the future-work
    "checking if service is alive", backed by a pluggable prober).  This
    is the management interface the paper sketches; the dispatchers call
    the registry in-process.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        prober: Callable[[str], bool] | None = None,
    ) -> None:
        self.registry = registry
        self.prober = prober

    def handle(self, envelope: Envelope, ctx) -> Envelope:
        call = parse_rpc_request(envelope)
        if call.interface_ns != REGISTRY_NS:
            raise RegistryError(
                f"unexpected interface {call.interface_ns!r} for registry"
            )
        op = call.operation
        if op == "register":
            logical = call.require_param("logical")
            physical = [v for k, v in call.params if k == "physical"]
            if not physical:
                raise RegistryError("register needs >=1 physical param")
            meta = {
                k[len("meta_"):]: v
                for k, v in call.params
                if k.startswith("meta_")
            }
            self.registry.register(logical, physical, metadata=meta)
            results = [("status", "ok")]
        elif op == "unregister":
            existed = self.registry.unregister(call.require_param("logical"))
            results = [("status", "ok" if existed else "absent")]
        elif op == "lookup":
            record = self.registry.lookup(call.require_param("logical"))
            results = [("physical", addr) for addr in record.physical]
        elif op == "list":
            results = [("logical", r.logical) for r in self.registry.list_services()]
        elif op == "ping":
            if self.prober is None:
                raise RegistryError("registry has no liveness prober configured")
            alive = self.registry.check_alive(
                call.require_param("logical"), self.prober
            )
            results = [("alive", "true" if alive else "false")]
        else:
            raise RegistryError(f"unknown registry operation {op!r}")
        return build_rpc_response(
            RpcResponse(REGISTRY_NS, op, results), version=envelope.version
        )

    # -- browsable Yellow Pages (GET page) -------------------------------
    def render_listing(self) -> str:
        """Plain-HTML service directory ("browseable list ... with metadata")."""
        rows = []
        for record in self.registry.list_services():
            meta = ", ".join(f"{k}={v}" for k, v in sorted(record.metadata.items()))
            health = ""
            if record.last_health is not None:
                _, alive = record.last_health
                health = " [alive]" if alive else " [down]"
            status = "" if record.enabled else " (disabled)"
            rows.append(
                f"<li><b>{record.logical}</b>{status}{health} → "
                f"{', '.join(record.physical)}"
                + (f" <i>{meta}</i>" if meta else "")
                + "</li>"
            )
        body = "\n".join(rows) if rows else "<li>(no services registered)</li>"
        return (
            "<html><head><title>WS-Dispatcher Registry</title></head>"
            f"<body><h1>Registered services</h1><ul>\n{body}\n</ul></body></html>"
        )

    def render_wsdl(self, logical: str) -> bytes:
        """A minimal WSDL 1.1 description of a registered service.

        The paper's future work: "improve Registry service to allow
        interactive browsing of WSDL files describing services provided by
        WS-Dispatcher".  The document advertises the service's *logical*
        endpoint at the dispatcher (location transparency) and records the
        physical bindings and metadata as documentation.
        """
        from repro.xmlmini import Element, QName, write_document

        record = self.registry.lookup(logical)
        definitions = Element(QName(_WSDL_NS, "definitions"))
        definitions.set("name", logical)
        definitions.set("targetNamespace", f"urn:wsd:{logical}")

        doc = Element(QName(_WSDL_NS, "documentation"))
        lines = [f"Service {logical!r} registered at the WS-Dispatcher."]
        for k, v in sorted(record.metadata.items()):
            lines.append(f"{k}: {v}")
        lines.append("physical bindings: " + ", ".join(record.physical))
        if record.last_health is not None:
            _, alive = record.last_health
            lines.append(f"last liveness check: {'alive' if alive else 'down'}")
        doc.children.append("\n".join(lines))
        definitions.children.append(doc)

        service = Element(QName(_WSDL_NS, "service"))
        service.set("name", logical)
        port = Element(QName(_WSDL_NS, "port"))
        port.set("name", f"{logical}Port")
        port.set("binding", f"tns:{logical}Binding")
        address = Element(QName(_WSDL_SOAP_NS, "address"))
        address.set("location", f"urn:wsd:{logical}")
        port.children.append(address)
        service.children.append(port)
        definitions.children.append(service)
        return write_document(definitions)

    def page_handler(self, request):
        """GET handler: ``/...`` → HTML listing, ``/.../wsdl/<name>`` → WSDL."""
        from repro.http import Headers, HttpResponse

        path = request.target.split("?", 1)[0]
        if "/wsdl/" in path:
            logical = path.rsplit("/wsdl/", 1)[1]
            try:
                body = self.render_wsdl(logical)
            except UnknownServiceError:
                return HttpResponse(status=404, body=b"unknown service")
            headers = Headers()
            headers.set("Content-Type", "text/xml; charset=utf-8")
            return HttpResponse(status=200, headers=headers, body=body)
        headers = Headers()
        headers.set("Content-Type", "text/html; charset=utf-8")
        return HttpResponse(
            status=200, headers=headers, body=self.render_listing().encode()
        )

"""Operational status page for a dispatcher deployment.

The paper positions the WSD as production infrastructure ("integrated in
existing infrastructure", Enterprise-Service-Bus-adjacent); production
infrastructure needs an ops view.  The real machinery now lives in
:class:`repro.obs.http.Introspection` (the unified ``GET /metrics`` +
``GET /trace/<id>`` surface); :class:`StatusPage` remains as a thin
compatibility wrapper that renders the same component sources as the
legacy plain-text page.
"""

from __future__ import annotations

from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.http import Introspection


class StatusPage:
    """Aggregates named stat sources into one GET endpoint.

    A source is anything with a ``stats`` dict property (both dispatchers,
    WS-MsgBox) or a callable returning a dict.  Backed by an
    :class:`~repro.obs.http.Introspection`; the page is simply the
    plain-text rendering of the introspection's component view, so the
    same sources show up in ``GET /metrics`` JSON unchanged.
    """

    def __init__(
        self,
        title: str = "WS-Dispatcher status",
        introspection: Introspection | None = None,
        suffix_duplicates: bool = False,
    ) -> None:
        """``suffix_duplicates=True`` renames colliding component names to
        ``name#2`` instead of raising — duplicates are never silently
        shadowed either way."""
        self.title = title
        self._on_duplicate = "suffix" if suffix_duplicates else "error"
        self._intro = introspection or Introspection(title=title)

    @property
    def introspection(self) -> Introspection:
        """The backing introspection surface (for mounting ``/metrics``)."""
        return self._intro

    def add(self, name: str, source: object) -> str:
        """Register a component; ``source`` has ``.stats`` or is callable.

        Raises :class:`ValueError` on duplicate names (or suffixes them
        when the page was built with ``suffix_duplicates=True``); returns
        the name actually used.
        """
        return self._intro.add_source(name, source, on_duplicate=self._on_duplicate)

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time counters of every component."""
        return self._intro.components_snapshot()

    def render_text(self) -> str:
        lines = [f"# {self.title}"]
        for component, stats in self.snapshot().items():
            lines.append(f"[{component}]")
            for key in sorted(stats):
                lines.append(f"  {key} = {stats[key]}")
        return "\n".join(lines) + "\n"

    def page_handler(self, request: HttpRequest) -> HttpResponse:
        """GET handler for :meth:`SoapHttpApp.mount_page`."""
        headers = Headers()
        headers.set("Content-Type", "text/plain; charset=utf-8")
        return HttpResponse(
            status=200, headers=headers, body=self.render_text().encode()
        )

"""Operational status page for a dispatcher deployment.

The paper positions the WSD as production infrastructure ("integrated in
existing infrastructure", Enterprise-Service-Bus-adjacent); production
infrastructure needs an ops view.  :class:`StatusPage` renders the live
counters of every registered component as a plain-text (or HTML) page
mounted next to the registry listing.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.http import Headers, HttpRequest, HttpResponse


class StatusPage:
    """Aggregates named stat sources into one GET endpoint.

    A source is anything with a ``stats`` dict property (both dispatchers,
    WS-MsgBox) or a callable returning a dict.
    """

    def __init__(self, title: str = "WS-Dispatcher status") -> None:
        self.title = title
        self._sources: list[tuple[str, Callable[[], dict]]] = []
        self._lock = threading.Lock()

    def add(self, name: str, source: object) -> None:
        """Register a component; ``source`` has ``.stats`` or is callable."""
        if callable(source):
            fetch = source
        elif hasattr(source, "stats"):
            fetch = lambda s=source: dict(s.stats)
        else:
            raise TypeError(f"{name}: source needs .stats or to be callable")
        with self._lock:
            self._sources.append((name, fetch))

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time counters of every component."""
        out: dict[str, dict] = {}
        with self._lock:
            sources = list(self._sources)
        for name, fetch in sources:
            try:
                out[name] = dict(fetch())
            except Exception as exc:  # noqa: BLE001 - a broken source is data
                out[name] = {"error": repr(exc)}
        return out

    def render_text(self) -> str:
        lines = [f"# {self.title}"]
        for component, stats in self.snapshot().items():
            lines.append(f"[{component}]")
            for key in sorted(stats):
                lines.append(f"  {key} = {stats[key]}")
        return "\n".join(lines) + "\n"

    def page_handler(self, request: HttpRequest) -> HttpResponse:
        """GET handler for :meth:`SoapHttpApp.mount_page`."""
        headers = Headers()
        headers.set("Content-Type", "text/plain; charset=utf-8")
        return HttpResponse(
            status=200, headers=headers, body=self.render_text().encode()
        )

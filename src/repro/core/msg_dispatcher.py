"""MSG-Dispatcher: asynchronous WS-Addressing message router (paper §4).

Architecture (paper Fig. 3): two configurable thread pools.

- **CxThreads** take accepted messages, map the logical address to the
  physical WS address via the Registry, and rewrite the WS-Addressing
  headers so replies come back to the dispatcher.
- **WsThreads** each own a FIFO queue and a persistent connection to one
  destination, and drain queued messages to it — several messages ride one
  connection ("more efficient than opening multiple short lived
  connections").  A drained batch rides the connection as **one pipelined
  write burst** (a :class:`~repro.rt.client.ConnectionLease`): N one-way
  messages cost one round trip instead of N.

Responses from services "are also treated like requests from clients":
they enter the same pipeline, are recognised by ``wsa:RelatesTo`` matching
a pending correlation entry, and are forwarded to the client's original
``ReplyTo`` — a real endpoint or a WS-MsgBox mailbox.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field

from repro.errors import (
    OverloadedError,
    RegistryUnavailable,
    ReproError,
    RoutingError,
    TransportError,
    UnknownServiceError,
)
from repro.http import HttpResponse
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.slo import stage_histogram
from repro.obs.trace import (
    TraceContext,
    TraceStore,
    attach_trace,
    default_trace_store,
    extract_trace,
)
from repro.reliable.breaker import BreakerConfig, BreakerOpenError, BreakerRegistry
from repro.reliable.holdretry import DuplicateFilter
from repro.reliable.policy import RetryPolicy
from repro.rt.client import HttpClient
from repro.store.journal import ABSORBED, DEAD, DELIVERED, MessageJournal
from repro.rt.service import RequestContext
from repro.soap import Envelope, LazyEnvelope, fastpath_counter, parse_envelope
from repro.transport.base import parse_http_url
from repro.util.clock import Clock, MonotonicClock
from repro.util.concurrency import ClosableQueue, QueueClosed
from repro.util.stats import Counter
from repro.wsa import (
    AddressingHeaders,
    EndpointReference,
    rewrite_for_forwarding,
)
from repro.core.registry import ServiceRegistry
from repro.core.routing import (
    extract_logical,
    hold_resolve_target,
    is_hold_resolve_target,
    split_hold_resolve_target,
)


@dataclass
class MsgDispatcherConfig:
    """Tunable knobs (the paper: "the sizes of the pools are configurable")."""

    cx_threads: int = 4
    ws_threads: int = 8
    accept_queue: int = 1024
    destination_queue: int = 1024
    #: messages drained per connection write burst (batching ablation A2)
    batch_size: int = 8
    #: pipeline a drained batch as one write burst on a leased connection
    #: (False = serial request/response per message, the pre-pipelining
    #: drain path; the A2 ablation and bench_pipeline_drain compare both)
    pipeline_batches: bool = True
    #: how long a WsThread keeps an idle destination before releasing it
    destination_idle_ttl: float = 10.0
    #: correlation (MessageID → ReplyTo) lifetime
    correlation_ttl: float = 120.0
    #: per-message delivery retry policy; None = single attempt
    retry: RetryPolicy | None = None
    #: ReplyTo prefixes left unrewritten (co-located WS-MsgBox addresses;
    #: services reply to them directly, paper section 4.3.2)
    passthrough_reply_prefixes: tuple = ()
    #: per-destination circuit breakers on the WsThread drain path;
    #: None = no breakers (every attempt hits the network)
    breaker: BreakerConfig | None = None
    #: admission control: total queued messages (accept + destination
    #: queues) above which handle() sheds with 503 Retry-After;
    #: None = only the individual queue capacities bound intake
    max_inflight: int | None = None
    #: Retry-After seconds advertised when shedding
    shed_retry_after: float = 1.0
    #: operate on zero-copy LazyEnvelopes end to end: headers are rewritten
    #: as Elements, the Body is forwarded as an unparsed byte slice.  False
    #: materializes incoming lazy envelopes into full DOMs at admission
    #: (the slow-path ablation knob; bench_fastpath measures the gap)
    fast_path: bool = True
    #: sliding-window duplicate suppression on the inbound absorption path
    #: (seconds); at-least-once redelivery — journal replay, client
    #: resends, hold-store retries from an upstream dispatcher — becomes
    #: effectively-once.  None (the default) forwards duplicates untouched.
    dedupe_window: float | None = None


@dataclass
class _Correlation:
    reply_to: EndpointReference | None
    fault_to: EndpointReference | None
    expires_at: float


@dataclass
class _OutboundItem:
    envelope_bytes: bytes
    target_url: str
    #: MessageID of the forwarded message — lets an in-band (RPC-style)
    #: response be correlated back (Table 1 quadrant 3: messaging client
    #: to RPC service, "translation of semantics from messaging to RPC")
    message_id: str | None = None
    attempts: int = 0
    #: observability: the message's trace context (None when untraced),
    #: the upstream span to parent delivery spans on, and when the item
    #: entered the destination queue
    trace: TraceContext | None = None
    parent_span_id: str | None = None
    enqueued_at: float = 0.0
    #: journal sequence of the inbound record this item descends from
    journal_seq: int | None = None


class _Destination:
    """A WsThread: FIFO queue + worker bound to one destination *endpoint*.

    Keyed by ``host:port``, not full URL — one WS-MsgBox service hosting a
    thousand mailboxes is still a single destination with one persistent
    connection, exactly like one WsThread per Web Service.
    """

    def __init__(self, endpoint_key: str, capacity: int) -> None:
        self.endpoint_key = endpoint_key
        self.queue: ClosableQueue[_OutboundItem] = ClosableQueue(capacity)
        self.thread: threading.Thread | None = None


class MsgDispatcher:
    """The asynchronous dispatcher, hostable as a one-way SoapService."""

    def __init__(
        self,
        registry: ServiceRegistry,
        client: HttpClient,
        own_address: str,
        mount_prefix: str = "/msg",
        config: MsgDispatcherConfig | None = None,
        clock: Clock | None = None,
        hold_store: "object | None" = None,
        hold_pump_interval: float = 0.25,
        inspector: "object | None" = None,
        metrics: MetricsRegistry | None = None,
        traces: TraceStore | None = None,
        durable: MessageJournal | None = None,
        recover: bool = True,
        flight: FlightRecorder | None = None,
    ) -> None:
        """``hold_store`` (a :class:`~repro.reliable.HoldRetryStore`) turns
        on the future-work reliable delivery: messages whose immediate
        delivery (and in-line retries) fail are *held* and redelivered on
        the store's schedule until they expire — "hold/retry on delivery
        ... with expiration time" (paper section 4.4).  A maintenance
        thread pumps the store every ``hold_pump_interval`` seconds.

        ``inspector`` is the "message security inspection" hook (same
        shape as the RPC-Dispatcher's): called with (envelope, logical
        name) before forwarding; raising rejects the message.

        ``metrics``/``traces`` override the process-wide observability
        sinks (:func:`~repro.obs.metrics.default_registry`,
        :func:`~repro.obs.trace.default_trace_store`).  The dispatcher
        never *creates* traces — it only continues contexts already on
        the message, so untraced traffic stays byte-identical on the
        wire.

        ``durable`` (a :class:`~repro.store.MessageJournal`) turns on
        write-ahead journaling: every admitted message is journaled
        before the 202 ack and marked when it leaves the dispatcher
        (delivered, absorbed into the hold store, or dead-lettered).
        With ``recover=True`` (the default) construction replays
        undelivered records from a previous incarnation back into the
        pipeline — at-least-once, so pair it with ``dedupe_window`` (and
        a sink-side :class:`~repro.reliable.DuplicateFilter`) for
        effectively-once.

        ``flight`` overrides the process-wide
        :func:`~repro.obs.flight.default_flight_recorder`; state
        transitions (sheds, deadletters, drain timeouts, journal
        recovery, breaker trips) are recorded into it, and deadletters
        trigger a postmortem dump when the recorder has a dump
        directory."""
        self.registry = registry
        self.client = client
        self.own_address = own_address
        self.mount_prefix = mount_prefix
        self.config = config or MsgDispatcherConfig()
        self.clock = clock or MonotonicClock()
        self.hold_store = hold_store
        self.inspector = inspector
        self.durable = durable
        self._replayed_seqs: set[int] = set()
        self._dedupe: DuplicateFilter | None = None
        if self.config.dedupe_window is not None:
            self._dedupe = DuplicateFilter(
                window=self.config.dedupe_window, clock=self.clock
            )
        self.counters = Counter()
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else default_trace_store()
        self.flight = flight if flight is not None else default_flight_recorder()
        self._log = component_logger("msgd")

        self._accept_queue: ClosableQueue[tuple] = ClosableQueue(
            self.config.accept_queue
        )
        self._m_accepted = self.metrics.counter(
            "msgd_accepted_total", "messages admitted to the accept queue"
        )
        self._m_dropped = self.metrics.counter(
            "msgd_dropped_total", "messages dropped, by reason"
        )
        self._m_delivered = self.metrics.counter(
            "msgd_delivered_total", "messages delivered to their destination"
        )
        self._m_retries = self.metrics.counter(
            "msgd_retries_total", "in-line delivery retries"
        )
        self._m_queue_wait = self.metrics.histogram(
            "msgd_queue_wait_seconds",
            "time spent waiting in dispatcher queues, by queue",
            bucket_width=0.001,
        )
        self._m_transmit = self.metrics.histogram(
            "msgd_transmit_seconds",
            "time spent transmitting to the destination",
            bucket_width=0.001,
        )
        self.metrics.gauge(
            "msgd_accept_queue_depth", "messages waiting for a CxThread"
        ).set_function(lambda: len(self._accept_queue))
        self._m_dest_depth = self.metrics.gauge(
            "msgd_destination_queue_depth",
            "messages waiting for a WsThread, by destination",
        )
        self._m_shed = self.metrics.counter(
            "dispatcher_shed_total",
            "requests shed by admission control, by component",
        )
        self._m_drain_timeouts = self.metrics.counter(
            "dispatcher_drain_timeouts_total",
            "drain() calls that timed out with messages still queued",
        )
        self._m_duplicates = self.metrics.counter(
            "dispatcher_duplicates_total",
            "inbound messages suppressed as duplicates",
        )
        self._m_deadletter = self.metrics.counter(
            "dispatcher_deadletter_total",
            "Messages moved to the dead-letter queue, by reason",
        )
        self._m_fastpath = fastpath_counter(self.metrics)
        # pipeline-stage latency histograms feeding the SLO tracker
        # (repro.obs.slo); one shared family, children cached per stage
        stage = stage_histogram(self.metrics)
        self._m_stage_admit = stage.labels(stage="admit")
        self._m_stage_journal = stage.labels(stage="journal")
        self._m_stage_queue_accept = stage.labels(stage="queue_accept")
        self._m_stage_queue_dest = stage.labels(stage="queue_destination")
        self._m_stage_deliver = stage.labels(stage="deliver")
        #: per-destination circuit breakers (None unless config.breaker)
        self.breakers: BreakerRegistry | None = None
        if self.config.breaker is not None:
            self.breakers = BreakerRegistry(
                self.config.breaker, clock=self.clock, metrics=self.metrics,
                flight=self.flight,
            )
        self._correlations: dict[str, _Correlation] = {}
        self._destinations: dict[str, _Destination] = {}
        self._lock = threading.Lock()
        self._ws_slots = threading.Semaphore(self.config.ws_threads)
        self._running = True
        if self.hold_store is not None and (
            getattr(self.hold_store, "_deliver", True) is None
        ):
            # a store constructed without a deliver function binds to
            # this dispatcher's breaker-aware redelivery path
            self.hold_store.bind_deliver(self.deliver_held)
        self._start_workers(hold_pump_interval)
        if self.durable is not None and recover:
            self.recover()

    def _start_workers(self, hold_pump_interval: float) -> None:
        """Spawn the CxThread pool and (when reliable) the hold pump.

        Subclass seam: the asyncio backend overrides this to schedule
        loop tasks instead of threads — everything upstream (admission,
        journaling, queues) is thread-safe and shared verbatim.
        """
        self._cx_threads = [
            threading.Thread(target=self._cx_loop, name=f"cx-{i}", daemon=True)
            for i in range(self.config.cx_threads)
        ]
        for t in self._cx_threads:
            t.start()
        if self.hold_store is not None:
            self._hold_pump = threading.Thread(
                target=self._hold_pump_loop,
                args=(hold_pump_interval,),
                name="hold-pump",
                daemon=True,
            )
            self._hold_pump.start()

    # -- lifecycle ----------------------------------------------------------
    def stop(self, drain: bool = False, timeout: float = 10.0) -> bool:
        """Shut the dispatcher down.

        ``drain=True`` is the graceful path: wait up to ``timeout`` for
        every queue to empty before closing, then checkpoint the journal.
        The hard path (``drain=False``, the historical behavior) closes
        the queues immediately — queued messages are dropped from memory
        but, under ``durable=``, stay ``enqueued`` in the journal and are
        replayed by the next incarnation's :meth:`recover`.  Returns True
        when nothing was left queued.
        """
        drained = True
        if drain and self._running:
            drained = self.drain(timeout)
        self._running = False
        self._accept_queue.close()
        with self._lock:
            dests = list(self._destinations.values())
        for d in dests:
            d.queue.close()
        if self.durable is not None:
            self.durable.flush()
            self.durable.checkpoint()
        return drained

    def __enter__(self) -> "MsgDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- crash recovery -----------------------------------------------------
    def recover(self) -> int:
        """Replay undelivered journal records into the pipeline.

        At-least-once: a record whose delivery succeeded but whose
        (async-buffered) mark was lost in the crash is replayed and
        forwarded again — the sink's :class:`DuplicateFilter` absorbs it.
        Idempotent within one incarnation: a seq is replayed at most once
        no matter how many times this is called.  Unparseable bodies
        (torn writes survive the CRC only if the corruption is outside
        the checksummed fields) are dead-lettered, never raised.  Returns
        the number of messages re-injected.
        """
        if self.durable is None:
            return 0
        replayed = 0
        for rec in self.durable.undelivered(kind="inbound"):
            if rec.seq in self._replayed_seqs:
                continue
            self._replayed_seqs.add(rec.seq)
            try:
                envelope = parse_envelope(
                    rec.body, counter=self._m_fastpath,
                    fast=self.config.fast_path,
                )
            except ReproError:
                self._dead_letter(rec.seq, "corrupt")
                continue
            trace = extract_trace(envelope)
            try:
                if not self._accept_queue.try_put(
                    (envelope, rec.target, trace, self.clock.now(), rec.seq)
                ):
                    break  # queue full; the rest stay journaled for later
            except QueueClosed:
                break
            replayed += 1
        if self.hold_store is not None and getattr(
            self.hold_store, "durable", None
        ) is not None:
            replayed += self.hold_store.restore()
        if replayed:
            self.counters.inc("recovered", replayed)
            log_event(self._log, logging.INFO, "recover", replayed=replayed)
            self.flight.record(
                "journal-recover", "msgd", t=self.clock.now(),
                replayed=replayed,
            )
        return replayed

    def _dead_letter(
        self,
        journal_seq: int | None,
        reason: str,
        trace_id: str | None = None,
        dest: str | None = None,
    ) -> None:
        """Move a journaled message to the dead-letter queue.

        Logs with the message's trace id (so logs and ``GET /trace/<id>``
        correlate by grep), records a flight-recorder event, and triggers
        a postmortem dump — a deadletter is exactly the moment the
        preceding ring of events is worth keeping.
        """
        if self.durable is None or journal_seq is None:
            return
        self.durable.mark(journal_seq, DEAD, reason=reason)
        self.counters.inc("dead_lettered")
        self._m_deadletter.labels(reason=reason).inc()
        now = self.clock.now()
        log_event(
            self._log, logging.WARNING, "deadletter",
            trace=trace_id, reason=reason, seq=journal_seq, dest=dest,
        )
        self.flight.record(
            "deadletter", "msgd", t=now,
            trace=trace_id, reason=reason, seq=journal_seq, dest=dest,
        )
        self.flight.postmortem("deadletter", t=now, reason=reason)

    # -- SoapService entry point (step 1-2 of Fig. 3) ----------------------
    def handle(self, envelope: Envelope, ctx: RequestContext) -> None:
        """Accept a one-way message; processing continues on the pools."""
        t_arrival = self.clock.now()
        if not self.config.fast_path and isinstance(envelope, LazyEnvelope):
            envelope = envelope.materialize()
        trace = extract_trace(envelope)
        self._admit(envelope, ctx.path, trace, t_arrival)
        return None  # HTTP layer answers 202 Accepted

    def _admit(
        self,
        envelope: Envelope,
        path: str,
        trace: TraceContext | None,
        t_arrival: float,
    ) -> None:
        trace_id = trace.trace_id if trace else None
        if self.config.max_inflight is not None:
            if self._backlog() >= self.config.max_inflight:
                self.counters.inc("shed_overload")
                self._m_shed.labels(component="msgd").inc()
                log_event(
                    self._log, logging.WARNING, "shed",
                    trace=trace_id, path=path,
                    max_inflight=self.config.max_inflight,
                )
                self.flight.record(
                    "shed", "msgd", t=t_arrival,
                    trace=trace_id, path=path,
                    max_inflight=self.config.max_inflight,
                )
                raise OverloadedError(
                    "dispatcher overloaded",
                    retry_after=self.config.shed_retry_after,
                )
        jseq: int | None = None
        if self.durable is not None:
            # Journal before ack: once this commits the dispatcher owns
            # the message — a crash at any later point replays it.
            t_journal = self.clock.now()
            jseq = self.durable.append(
                None, path, envelope.to_bytes(), kind="inbound"
            )
            self._m_stage_journal.observe(self.clock.now() - t_journal)
        try:
            accepted = self._accept_queue.try_put(
                (envelope, path, trace, t_arrival, jseq)
            )
        except QueueClosed:
            if jseq is not None and self.durable is not None:
                # rejected before the ack: the client was told, so the
                # journal must not replay it
                self.durable.mark(jseq, ABSORBED, reason="rejected")
            raise ReproError("dispatcher is shut down") from None
        if not accepted:
            if jseq is not None and self.durable is not None:
                self.durable.mark(jseq, ABSORBED, reason="rejected")
            self.counters.inc("dropped_accept_queue_full")
            self._m_dropped.labels(reason="accept_queue_full").inc()
            log_event(
                self._log, logging.WARNING, "drop",
                trace=trace_id, reason="accept_queue_full", path=path,
            )
            raise ReproError("dispatcher accept queue full")
        self.counters.inc("accepted")
        self._m_accepted.inc()
        self._m_stage_admit.observe(self.clock.now() - t_arrival)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "admit", "msgd",
                t_arrival, self.clock.now(),
                parent_id=trace.parent_span_id, path=path,
            )
        log_event(self._log, logging.DEBUG, "admit", trace=trace_id, path=path)

    # -- CxThread: routing + rewriting (steps 2-4 of Fig. 3) ---------------
    def _cx_loop(self) -> None:
        while True:
            try:
                work = self._accept_queue.get()
            except QueueClosed:
                return
            self._process_accepted(work)

    def _process_accepted(self, work: tuple) -> None:
        """Route one accepted-queue entry (shared by thread and loop
        backends; everything in here is non-blocking)."""
        envelope, path, trace, t_enq, jseq = work
        t_deq = self.clock.now()
        self._m_queue_wait.labels(queue="accept").observe(t_deq - t_enq)
        self._m_stage_queue_accept.observe(t_deq - t_enq)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "queue-wait", "msgd",
                t_enq, t_deq,
                parent_id=trace.parent_span_id, queue="accept",
            )
        try:
            self._route_one(envelope, path, trace, t_deq, journal_seq=jseq)
        except ReproError:
            self.counters.inc("dropped_unroutable")
            self._m_dropped.labels(reason="unroutable").inc()
            self._dead_letter(
                jseq, "unroutable",
                trace_id=trace.trace_id if trace else None,
            )
            log_event(
                self._log, logging.WARNING, "drop",
                trace=trace.trace_id if trace else None,
                reason="unroutable", path=path,
            )
        except Exception:  # noqa: BLE001 - keep pool threads alive
            self.counters.inc("internal_errors")
            # poison, not transient: replaying it would fail the same
            # way forever, so it goes to the dead-letter queue
            self._dead_letter(
                jseq, "internal_error",
                trace_id=trace.trace_id if trace else None,
            )

    def _route_one(
        self,
        envelope: Envelope,
        path: str,
        trace: TraceContext | None = None,
        t_start: float | None = None,
        journal_seq: int | None = None,
        from_hold: bool = False,
    ) -> None:
        headers = AddressingHeaders.from_envelope(envelope)
        now = self.clock.now()
        if t_start is None:
            t_start = now
        self._expire_correlations(now)

        # Duplicate absorption (config.dedupe_window): at-least-once
        # upstreams — journal replay, client resends, hold-store retries —
        # deliver the same MessageID more than once; forward only the first.
        # A redelivery from the resolve-later hold path skips the check:
        # its MessageID was recorded on the admission pass that parked it,
        # and absorbing it here would silently drop the message.
        if (
            not from_hold
            and self._dedupe is not None
            and headers.message_id
            and self._dedupe.seen(headers.message_id)
        ):
            self.counters.inc("duplicates_suppressed")
            self._m_duplicates.inc()
            if journal_seq is not None and self.durable is not None:
                self.durable.mark(journal_seq, ABSORBED, reason="duplicate")
            log_event(
                self._log, logging.DEBUG, "duplicate",
                trace=trace.trace_id if trace else None,
                message_id=headers.message_id,
            )
            return

        # A response from a WS? (RelatesTo hits a pending correlation)
        for rel in headers.relates_to:
            corr = self._pop_correlation(rel)
            if corr is not None:
                self._route_response(
                    envelope, headers, corr, trace, t_start,
                    journal_seq=journal_seq,
                )
                return

        # A fresh client request: logical → physical, rewrite, enqueue.
        to_addr = headers.to or path
        try:
            logical = extract_logical(to_addr, self.mount_prefix)
        except RoutingError:
            logical = extract_logical(path, self.mount_prefix)
        try:
            physical = self.registry.resolve(logical)
        except UnknownServiceError:
            self.counters.inc("unknown_service")
            raise
        except RegistryUnavailable:
            # A registry outage is transient — park the pre-rewrite message
            # under a resolve-later sentinel instead of dead-lettering it
            # (and instead of burning a delivery retry against a physical
            # URL we never obtained).  On redelivery we re-route; raising
            # here keeps a hold-store redelivery parked (rescheduled).
            if (
                not from_hold
                and self.hold_store is not None
                and headers.message_id
            ):
                self._hold_unresolved(
                    envelope, path, headers.message_id, trace, journal_seq
                )
                return
            raise

        if self.inspector is not None:
            try:
                self.inspector(envelope, logical)
            except ReproError:
                self.counters.inc("rejected_by_inspector")
                self._m_dropped.labels(reason="inspector").inc()
                raise

        result = rewrite_for_forwarding(
            envelope, physical, self.own_address,
            passthrough_reply_prefixes=self.config.passthrough_reply_prefixes,
        )
        if result.original_reply_to or result.original_fault_to:
            with self._lock:
                self._correlations[result.message_id] = _Correlation(
                    reply_to=result.original_reply_to,
                    fault_to=result.original_fault_to,
                    expires_at=now + self.config.correlation_ttl,
                )
        route_sid = None
        if trace is not None:
            # Pre-allocate the route span's id so the forwarded message
            # can name it as the downstream parent before it is recorded.
            # Attached even when the store is disabled so the wire bytes
            # of traced traffic never depend on store enablement.
            route_sid = self.traces.new_span_id()
            attach_trace(result.envelope, trace.child(route_sid))
        if isinstance(result.envelope, LazyEnvelope):
            self.counters.inc("forwarded_spliced")
        self._enqueue(
            result.envelope.to_bytes(), physical,
            message_id=result.message_id,
            trace=trace, parent_span_id=route_sid,
            journal_seq=journal_seq,
        )
        self.counters.inc("routed_requests")
        if route_sid is not None:
            self.traces.record(
                trace.trace_id, "route", "msgd",
                t_start, self.clock.now(),
                span_id=route_sid, parent_id=trace.parent_span_id,
                logical=logical, dest=physical,
            )
        log_event(
            self._log, logging.DEBUG, "route",
            trace=trace.trace_id if trace else None,
            logical=logical, dest=physical,
        )

    def _route_response(
        self,
        envelope: Envelope,
        headers: AddressingHeaders,
        corr: _Correlation,
        trace: TraceContext | None = None,
        t_start: float | None = None,
        journal_seq: int | None = None,
    ) -> None:
        target = corr.fault_to if envelope.is_fault() and corr.fault_to else corr.reply_to
        if target is None or target.is_anonymous:
            self.counters.inc("dropped_no_reply_to")
            self._m_dropped.labels(reason="no_reply_to").inc()
            self._dead_letter(
                journal_seq, "no_reply_to",
                trace_id=trace.trace_id if trace else None,
            )
            return
        out = envelope.copy()
        new_headers = headers.copy()
        new_headers.to = target.address
        # Per WSA binding: reference properties of the target EPR become
        # message headers (this is how the mailbox id reaches WS-MsgBox).
        new_headers.reference_headers.extend(
            p.copy() for p in target.reference_properties
        )
        new_headers.attach(out)
        route_sid = None
        if trace is not None:
            route_sid = self.traces.new_span_id()
            attach_trace(out, trace.child(route_sid))
        if isinstance(out, LazyEnvelope):
            self.counters.inc("forwarded_spliced")
        self._enqueue(
            out.to_bytes(), target.address,
            trace=trace, parent_span_id=route_sid,
            journal_seq=journal_seq,
        )
        self.counters.inc("routed_responses")
        if route_sid is not None:
            self.traces.record(
                trace.trace_id, "route", "msgd",
                t_start if t_start is not None else self.clock.now(),
                self.clock.now(),
                span_id=route_sid, parent_id=trace.parent_span_id,
                direction="response", dest=target.address,
            )
        log_event(
            self._log, logging.DEBUG, "route",
            trace=trace.trace_id if trace else None,
            direction="response", dest=target.address,
        )

    # -- correlation table ----------------------------------------------
    def _pop_correlation(self, message_id: str) -> _Correlation | None:
        with self._lock:
            corr = self._correlations.pop(message_id, None)
        if corr is None:
            return None
        if corr.expires_at < self.clock.now():
            self.counters.inc("expired_correlations")
            return None
        return corr

    def _expire_correlations(self, now: float) -> None:
        with self._lock:
            dead = [k for k, c in self._correlations.items() if c.expires_at < now]
            for k in dead:
                del self._correlations[k]
        if dead:
            self.counters.inc("expired_correlations", len(dead))

    def pending_correlations(self) -> int:
        with self._lock:
            return len(self._correlations)

    # -- WsThread: per-destination FIFO + persistent connection ------------
    @staticmethod
    def _endpoint_key(target_url: str) -> str:
        endpoint, _path = parse_http_url(target_url)
        return str(endpoint)

    def _enqueue(
        self,
        envelope_bytes: bytes,
        target_url: str,
        message_id: str | None = None,
        trace: TraceContext | None = None,
        parent_span_id: str | None = None,
        journal_seq: int | None = None,
    ) -> None:
        trace_id = trace.trace_id if trace else None
        try:
            key = self._endpoint_key(target_url)
        except ReproError:
            self.counters.inc("dropped_unroutable")
            self._m_dropped.labels(reason="unroutable").inc()
            self._dead_letter(journal_seq, "unroutable", trace_id=trace_id)
            return
        with self._lock:
            dest = self._destinations.get(key)
            if dest is None:
                dest = _Destination(key, self.config.destination_queue)
                self._destinations[key] = dest
                self._m_dest_depth.labels(dest=key).set_function(
                    lambda d=dest: len(d.queue)
                )
        try:
            item = _OutboundItem(
                envelope_bytes, target_url, message_id=message_id,
                trace=trace, parent_span_id=parent_span_id,
                enqueued_at=self.clock.now(),
                journal_seq=journal_seq,
            )
            if not dest.queue.try_put(item):
                self.counters.inc("dropped_destination_queue_full")
                self._m_dropped.labels(reason="destination_queue_full").inc()
                self._dead_letter(
                    journal_seq, "destination_queue_full",
                    trace_id=trace_id, dest=key,
                )
                log_event(
                    self._log, logging.WARNING, "drop",
                    trace=trace_id, reason="destination_queue_full", dest=key,
                )
                return
        except QueueClosed:
            # shutdown race: the journal record (if any) stays enqueued,
            # so the next incarnation replays it instead of losing it
            self.counters.inc("dropped_shutdown")
            self._m_dropped.labels(reason="shutdown").inc()
            return
        log_event(
            self._log, logging.DEBUG, "enqueue", trace=trace_id, dest=key
        )
        self._ensure_worker(dest)

    def _ensure_worker(self, dest: _Destination) -> None:
        with self._lock:
            if dest.thread is not None and dest.thread.is_alive():
                return
            if not self._ws_slots.acquire(blocking=False):
                # all WsThreads busy; an exiting worker will pick this
                # destination up via _adopt_orphan.
                return
            dest.thread = threading.Thread(
                target=self._ws_loop,
                args=(dest,),
                name=f"ws-{dest.endpoint_key}",
                daemon=True,
            )
            dest.thread.start()

    def _ws_loop(self, dest: _Destination) -> None:
        try:
            while self._running:
                try:
                    batch = dest.queue.get_batch(
                        self.config.batch_size,
                        timeout=self.config.destination_idle_ttl,
                    )
                except TimeoutError:
                    return  # idle: release the slot
                except QueueClosed:
                    return
                if self.config.pipeline_batches and len(batch) > 1:
                    self._deliver_batch(batch)
                else:
                    for item in batch:
                        self._deliver(item)
        finally:
            with self._lock:
                dest.thread = None
            self._ws_slots.release()
            self._adopt_orphan()

    def _adopt_orphan(self) -> None:
        """After a slot frees, start a worker for any queued-but-idle dest."""
        with self._lock:
            candidates = [
                d
                for d in self._destinations.values()
                if len(d.queue) and (d.thread is None or not d.thread.is_alive())
            ]
        for d in candidates:
            self._ensure_worker(d)

    def _note_dequeued(self, item: _OutboundItem) -> None:
        """Record destination-queue wait once, on the item's first attempt."""
        if item.attempts:
            return
        t_deq = self.clock.now()
        wait = t_deq - item.enqueued_at
        self._m_queue_wait.labels(queue="destination").observe(wait)
        self._m_stage_queue_dest.observe(wait)
        if item.trace is not None:
            self.traces.record(
                item.trace.trace_id, "queue-wait", "msgd",
                item.enqueued_at, t_deq,
                parent_id=item.parent_span_id, queue="destination",
                dest=item.target_url,
            )

    def _deliver(self, item: _OutboundItem) -> None:
        if self.breakers is not None and not self.breakers.allow(
            self._endpoint_key(item.target_url)
        ):
            self._breaker_block(item)
            return
        self._note_dequeued(item)
        item.attempts += 1
        t_send = self.clock.now()
        try:
            response = self.client.request(
                item.target_url,
                _make_post(item.envelope_bytes),
            )
            if response.status >= 400:
                raise TransportError(f"HTTP {response.status} from {item.target_url}")
        except (TransportError, ReproError):
            self._record_outcome(item.target_url, False)
            self._handle_delivery_failure(item)
            return
        self._record_outcome(item.target_url, True)
        self._finish_delivery(
            item, response, t_send, self.clock.now(),
            parent_span_id=item.parent_span_id,
        )

    def _deliver_batch(self, batch: "list[_OutboundItem]") -> None:
        """Drain one batch as a single pipelined burst on a leased connection.

        Per-item semantics are identical to :meth:`_deliver`: each item
        still gets its own retry/backoff, hold-store parking, correlation
        absorption, metrics, and trace spans.  The only difference is the
        wire schedule — N requests ride one write burst instead of N
        serialized round trips — plus one ``pipeline-burst`` span (per
        distinct trace in the batch) parenting the per-item ``deliver``
        spans.
        """
        if not self._batch_admitted(batch):
            return
        requests = self._prepare_batch(batch)
        t_burst = self.clock.now()
        try:
            lease = self.client.lease(batch[0].target_url)
        except (TransportError, ReproError):
            # no connection at all: every item takes its own failure path
            self._record_outcome(batch[0].target_url, False)
            for item in batch:
                self._handle_delivery_failure(item)
            return
        try:
            outcomes = lease.pipeline(requests)
        finally:
            lease.release()
        t_done = self.clock.now()
        for item in self._settle_batch(batch, outcomes, t_burst, t_done):
            self._handle_delivery_failure(item)

    def _batch_admitted(self, batch: "list[_OutboundItem]") -> bool:
        """Breaker gate for a whole batch (one shared destination)."""
        if self.breakers is not None and not self.breakers.allow(
            self._endpoint_key(batch[0].target_url)
        ):
            # the whole batch shares one destination; park it all
            for item in batch:
                self._breaker_block(item)
            return False
        return True

    def _prepare_batch(self, batch: "list[_OutboundItem]") -> list:
        """Count attempts and build the burst's prepared requests."""
        for item in batch:
            self._note_dequeued(item)
            item.attempts += 1
        requests = []
        for item in batch:
            req = _make_post(item.envelope_bytes)
            self.client.prepare(item.target_url, req)
            requests.append(req)
        return requests

    def _settle_batch(
        self,
        batch: "list[_OutboundItem]",
        outcomes: list,
        t_burst: float,
        t_done: float,
    ) -> "list[_OutboundItem]":
        """Record spans/outcomes for a finished burst; returns the items
        that failed (the caller applies retry/hold/drop handling, which
        may need to sleep — blocking here would stall an event loop)."""
        burst_sid = None
        traced = {i.trace.trace_id: i for i in batch if i.trace is not None}
        if traced:
            burst_sid = self.traces.new_span_id()
            for trace_id, first in traced.items():
                self.traces.record(
                    trace_id, "pipeline-burst", "msgd",
                    t_burst, t_done,
                    span_id=burst_sid, parent_id=first.parent_span_id,
                    dest=batch[0].target_url, size=len(batch),
                )
        failed: list[_OutboundItem] = []
        for item, outcome in zip(batch, outcomes):
            ok = isinstance(outcome, HttpResponse) and outcome.status < 400
            self._record_outcome(item.target_url, ok)
            if ok:
                self._finish_delivery(
                    item, outcome, t_burst, t_done,
                    parent_span_id=(
                        burst_sid if item.trace is not None
                        else item.parent_span_id
                    ),
                )
            else:
                failed.append(item)
        return failed

    def _record_outcome(self, target_url: str, ok: bool) -> None:
        if self.breakers is not None:
            self.breakers.record(self._endpoint_key(target_url), ok)

    def _park_in_hold(self, item: _OutboundItem) -> None:
        """Hand an undeliverable item to the hold store for scheduled
        redelivery.  When the hold store journals its own ``held`` record,
        the inbound record is retired (absorbed) — otherwise a crash would
        replay the message from *both* records."""
        self.hold_store.hold(
            item.message_id, item.target_url, item.envelope_bytes
        )
        if (
            self.durable is not None
            and item.journal_seq is not None
            and getattr(self.hold_store, "durable", None) is not None
        ):
            self.durable.mark(item.journal_seq, ABSORBED, reason="held")

    def _hold_unresolved(
        self,
        envelope: Envelope,
        path: str,
        message_id: str,
        trace: TraceContext | None,
        journal_seq: int | None,
    ) -> None:
        """Registry could not answer: park the message for later
        re-resolution under a ``hold+resolve:`` sentinel target rather
        than dead-lettering it or burning delivery retries."""
        self.hold_store.hold(
            message_id, hold_resolve_target(path), envelope.to_bytes()
        )
        if (
            self.durable is not None
            and journal_seq is not None
            and getattr(self.hold_store, "durable", None) is not None
        ):
            self.durable.mark(journal_seq, ABSORBED, reason="held")
        self.counters.inc("hold_registry_unavailable")
        log_event(
            self._log, logging.INFO, "hold",
            trace=trace.trace_id if trace else None,
            reason="registry_unavailable", path=path,
        )

    def _breaker_block(self, item: _OutboundItem) -> None:
        """Deny without a network attempt: park in the hold store (so the
        message survives the outage without burning retries) or drop."""
        trace_id = item.trace.trace_id if item.trace else None
        if self.hold_store is not None and item.message_id is not None:
            self._park_in_hold(item)
            self.counters.inc("held_breaker_open")
            log_event(
                self._log, logging.INFO, "hold",
                trace=trace_id, reason="breaker_open", dest=item.target_url,
            )
        else:
            self.counters.inc("dropped_breaker_open")
            self._m_dropped.labels(reason="breaker_open").inc()
            self._dead_letter(
                item.journal_seq, "breaker_open",
                trace_id=trace_id, dest=item.target_url,
            )
            log_event(
                self._log, logging.WARNING, "drop",
                trace=trace_id, reason="breaker_open", dest=item.target_url,
            )

    def deliver_held(self, msg) -> None:
        """Transmission function for a :class:`HoldRetryStore` bound to
        this dispatcher: breaker-aware single-shot redelivery.  Raising
        keeps the message held (the store reschedules it)."""
        if is_hold_resolve_target(msg.target_url):
            # Parked pre-resolution (registry was unavailable): run the
            # routing pass again.  RegistryUnavailable propagates and the
            # store reschedules; success re-enters the normal outbound
            # pipeline (the rewrite preserves the MessageID, so a later
            # delivery failure re-holds under the physical URL).
            envelope = parse_envelope(
                msg.envelope_bytes, counter=self._m_fastpath,
                fast=self.config.fast_path,
            )
            self._route_one(
                envelope, split_hold_resolve_target(msg.target_url),
                trace=extract_trace(envelope), from_hold=True,
            )
            self.counters.inc("held_redelivered")
            return
        key = self._endpoint_key(msg.target_url)
        if self.breakers is not None and not self.breakers.allow(key):
            raise BreakerOpenError(f"breaker open for {key}")
        try:
            response = self.client.request(
                msg.target_url, _make_post(msg.envelope_bytes)
            )
            if response.status >= 400:
                raise TransportError(
                    f"HTTP {response.status} from {msg.target_url}"
                )
        except (TransportError, ReproError):
            if self.breakers is not None:
                self.breakers.record(key, False)
            raise
        if self.breakers is not None:
            self.breakers.record(key, True)
        self.counters.inc("held_redelivered")

    def _handle_delivery_failure(self, item: _OutboundItem) -> None:
        """One failed attempt: in-line retry, hold-store parking, or drop."""
        retry = self.config.retry
        if retry is not None and retry.should_retry(item.attempts):
            # the async backend mirrors this branch with a non-blocking
            # sleep; the split keeps the bookkeeping identical on both
            self.clock.sleep(retry.delay_before(item.attempts + 1))
            self._requeue_retry(item)
        else:
            self._fail_no_retry(item)

    def _requeue_retry(self, item: _OutboundItem) -> None:
        """Count and re-queue one in-line retry (after the backoff sleep)."""
        self._enqueue_retry(item)
        self.counters.inc("retries")
        self._m_retries.inc()
        log_event(
            self._log, logging.INFO, "retry",
            trace=item.trace.trace_id if item.trace else None,
            dest=item.target_url, attempts=item.attempts,
        )

    def _fail_no_retry(self, item: _OutboundItem) -> None:
        """Retry budget spent (or none configured): park or drop."""
        trace_id = item.trace.trace_id if item.trace else None
        if self.hold_store is not None and item.message_id is not None:
            # reliable mode: park the message for scheduled redelivery
            self._park_in_hold(item)
            self.counters.inc("held_for_retry")
            log_event(
                self._log, logging.INFO, "hold",
                trace=trace_id, dest=item.target_url,
            )
        else:
            self.counters.inc("delivery_failures")
            self._m_dropped.labels(reason="delivery_failure").inc()
            self._dead_letter(
                item.journal_seq, "delivery_failure",
                trace_id=trace_id, dest=item.target_url,
            )
            log_event(
                self._log, logging.WARNING, "drop",
                trace=trace_id, reason="delivery_failure",
                dest=item.target_url, attempts=item.attempts,
            )

    def _finish_delivery(
        self,
        item: _OutboundItem,
        response,
        t_send: float,
        t_done: float,
        parent_span_id: str | None,
    ) -> None:
        self.counters.inc("delivered")
        self._m_delivered.inc()
        self._m_transmit.observe(t_done - t_send)
        self._m_stage_deliver.observe(t_done - t_send)
        if self.durable is not None and item.journal_seq is not None:
            self.durable.mark(item.journal_seq, DELIVERED)
        if item.trace is not None:
            self.traces.record(
                item.trace.trace_id, "deliver", "msgd",
                t_send, t_done,
                parent_id=parent_span_id,
                dest=item.target_url, attempts=item.attempts,
            )
        log_event(
            self._log, logging.DEBUG, "deliver",
            trace=item.trace.trace_id if item.trace else None,
            dest=item.target_url,
        )
        self._absorb_inband_response(item, response)

    def _absorb_inband_response(self, item: _OutboundItem, response) -> None:
        """Quadrant 3 of Table 1: an RPC-style service answered in-band.

        The dispatcher translates the in-band SOAP response into a proper
        one-way response message (adding RelatesTo so the correlation
        entry routes it) and feeds it back through the pipeline.
        """
        if response.status != 200 or not response.body or item.message_id is None:
            return
        try:
            envelope = parse_envelope(
                response.body,
                counter=self._m_fastpath,
                fast=self.config.fast_path,
            )
            headers = AddressingHeaders.from_envelope(envelope)
        except ReproError:
            self.counters.inc("inband_unparseable")
            return
        if item.message_id not in headers.relates_to:
            headers.relates_to.append(item.message_id)
        if not headers.to:
            headers.to = self.own_address
        headers.attach(envelope)
        # An RPC service won't echo our trace header; continue the
        # forwarded message's context on the synthesised response.
        trace = extract_trace(envelope) or (
            item.trace.child(item.parent_span_id)
            if item.trace is not None and item.parent_span_id
            else item.trace
        )
        jseq: int | None = None
        if self.durable is not None:
            # a synthesised response is a fresh inbound message and gets
            # its own journal record
            jseq = self.durable.append(
                None, self.mount_prefix, envelope.to_bytes(), kind="inbound"
            )
        try:
            if self._accept_queue.try_put(
                (envelope, self.mount_prefix, trace, self.clock.now(), jseq)
            ):
                self.counters.inc("inband_responses")
            elif jseq is not None:
                self.durable.mark(jseq, ABSORBED, reason="rejected")
        except QueueClosed:
            if jseq is not None:
                self.durable.mark(jseq, ABSORBED, reason="rejected")

    def _enqueue_retry(self, item: _OutboundItem) -> None:
        with self._lock:
            dest = self._destinations.get(self._endpoint_key(item.target_url))
        if dest is None:
            self.counters.inc("delivery_failures")
            return
        try:
            if not dest.queue.try_put(item):
                self.counters.inc("delivery_failures")
        except QueueClosed:
            self.counters.inc("delivery_failures")

    def _hold_pump_loop(self, interval: float) -> None:
        import time as _time

        while self._running:
            try:
                self.hold_store.pump()
            except Exception:  # noqa: BLE001 - keep the maintenance thread up
                self.counters.inc("internal_errors")
            _time.sleep(interval)

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        return self.counters.as_dict()

    def _backlog(self) -> int:
        """Total messages queued anywhere in the dispatcher."""
        with self._lock:
            return len(self._accept_queue) + sum(
                len(d.queue) for d in self._destinations.values()
            )

    def health_snapshot(self) -> dict:
        """Breaker/overload state for the introspection surface."""
        snapshot: dict = {
            "backlog": self._backlog(),
            "shed": self.counters.get("shed_overload"),
            "drain_timeouts": self.counters.get("drain_timeouts"),
        }
        if self.breakers is not None:
            snapshot["breakers"] = self.breakers.snapshot()
        if self.hold_store is not None:
            snapshot["hold_store"] = self.hold_store.stats
        if self.durable is not None:
            snapshot["journal"] = dict(
                self.durable.stats,
                pending=self.durable.pending_count(),
                dead=self.durable.counts().get(DEAD, 0),
            )
        return snapshot

    def active_destinations(self) -> int:
        with self._lock:
            return sum(
                1
                for d in self._destinations.values()
                if d.thread is not None and d.thread.is_alive()
            )

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until every queue is empty (tests); True on success."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._backlog() == 0:
                delivered = self.counters.get("delivered")
                time.sleep(0.02)
                if self.counters.get("delivered") == delivered:
                    return True
            else:
                time.sleep(0.01)
        self.counters.inc("drain_timeouts")
        self._m_drain_timeouts.inc()
        with self._lock:
            stuck = {
                key: len(d.queue)
                for key, d in self._destinations.items()
                if len(d.queue)
            }
            accept_depth = len(self._accept_queue)
        log_event(
            self._log, logging.WARNING, "drain-timeout",
            timeout=timeout, accept_queue=accept_depth,
            stuck=";".join(f"{k}={n}" for k, n in sorted(stuck.items())) or "-",
        )
        self.flight.record(
            "drain-timeout", "msgd", t=self.clock.now(),
            timeout=timeout, accept_queue=accept_depth,
            stuck=len(stuck),
        )
        return False


def _make_post(body: bytes):
    from repro.http import Headers, HttpRequest
    from repro.soap.constants import SOAP11_CONTENT_TYPE

    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    return HttpRequest("POST", "/", headers=headers, body=body)

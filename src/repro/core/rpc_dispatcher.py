"""RPC-Dispatcher: the SOAP-aware HTTP forwarding proxy (paper §4.1–4.2).

"The first phase of the implementation consisted of constructing a simple
HTTP proxy, called the RPC-Dispatcher, that forwards RPC invocations.  It
uses one thread to parse the HTTP header, copy the XML message from the
request to a new XML document that is then used in the RPC invocation
between RPC-Dispatcher and the target WS.  After the RPC-Dispatcher
receives the result from the WS [it] copies it to the response for the
client and sends it back on the same connection."

Faithfully, forwarding here re-parses and re-serializes the SOAP document
(a *new* XML document — giving the dispatcher its chance to do "security
or validity checks"), rather than relaying opaque bytes.  The worker
thread that carries the client connection blocks for the whole forwarded
exchange, which is exactly why RPC forwarding inherits the HTTP/TCP
timeout limits Table 1 describes.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable

from repro.errors import (
    AuthError,
    FastPathUnsupported,
    ReproError,
    SoapError,
    TransportError,
    UnknownServiceError,
    XmlError,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import TraceStore, default_trace_store, extract_trace
from repro.rt.client import HttpClient
from repro.rt.service import soap_fault_response
from repro.soap import Envelope, Fault, LazyEnvelope, fastpath_counter
from repro.util.clock import Clock, MonotonicClock
from repro.core.registry import ServiceRegistry
from repro.core.routing import extract_logical


class RpcDispatcher:
    """Forward SOAP-RPC requests from ``/<prefix>/<logical>`` to services.

    Parameters
    ----------
    registry:
        Logical→physical resolution.
    client:
        Pooled HTTP client used for the dispatcher→service leg.
    mount_prefix:
        Path prefix clients POST to (default ``/rpc``).
    inspector:
        Optional "message security inspection" hook: called with the parsed
        request envelope and the logical name; raise
        :class:`~repro.errors.AuthError` (or any ReproError) to reject.
    max_body:
        Validity check: reject larger request bodies outright.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        client: HttpClient,
        mount_prefix: str = "/rpc",
        inspector: Callable[[Envelope, str], None] | None = None,
        max_body: int = 4 * 1024 * 1024,
        balancer: object | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        traces: TraceStore | None = None,
        max_inflight: int | None = None,
        shed_retry_after: float = 1.0,
        fast_path: bool = True,
    ) -> None:
        self.registry = registry
        self.client = client
        self.mount_prefix = mount_prefix
        self.inspector = inspector
        self.max_body = max_body
        #: zero-copy forwarding: scan-validate the request (headers parsed,
        #: Body left as a byte slice) and forward the original bytes
        #: verbatim, instead of the paper's parse + copy-to-a-new-document.
        #: Messages the scanner cannot prove safe fall back to the copy.
        self.fast_path = fast_path
        #: admission control: concurrent forwards above this are shed
        #: with 503 Retry-After (each forward blocks a server thread, so
        #: this bounds the dispatcher's exposure to slow services)
        self.max_inflight = max_inflight
        self.shed_retry_after = shed_retry_after
        self._inflight = 0
        #: optional BalancerPolicy receiving on_start/on_finish feedback
        self.balancer = balancer
        self.clock = clock or MonotonicClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else default_trace_store()
        self._log = component_logger("rpcd")
        self._m_forwarded = self.metrics.counter(
            "rpcd_forwarded_total", "RPC exchanges proxied to a service"
        )
        self._m_rejected = self.metrics.counter(
            "rpcd_rejected_total", "RPC requests rejected, by reason"
        )
        self._m_failed = self.metrics.counter(
            "rpcd_failed_total", "RPC forwards that could not reach the service"
        )
        self._m_forward_time = self.metrics.histogram(
            "rpcd_forward_seconds",
            "blocking dispatcher-to-service exchange time",
            bucket_width=0.001,
        )
        self._m_shed = self.metrics.counter(
            "dispatcher_shed_total",
            "requests shed by admission control, by component",
        )
        self._m_fastpath = fastpath_counter(self.metrics)
        self._lock = threading.Lock()
        self.forwarded = 0
        self.failed = 0
        self.rejected = 0
        self.shed = 0

    def _count(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)

    def _reject(self, reason: str, trace_id: str | None = None) -> None:
        self._count("rejected")
        self._m_rejected.labels(reason=reason).inc()
        log_event(
            self._log, logging.WARNING, "reject",
            trace=trace_id, reason=reason,
        )

    # -- HttpServer handler --------------------------------------------------
    def handle_request(
        self, request: HttpRequest, peer: str | None = None
    ) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(status=405, body=b"RPC dispatcher accepts POST")
        if self.max_inflight is not None:
            with self._lock:
                if self._inflight >= self.max_inflight:
                    shed = True
                else:
                    shed = False
                    self._inflight += 1
            if shed:
                self._count("shed")
                self._m_shed.labels(component="rpcd").inc()
                log_event(
                    self._log, logging.WARNING, "shed",
                    max_inflight=self.max_inflight,
                )
                response = soap_fault_response(
                    Fault("Server", "dispatcher overloaded"), status=503
                )
                response.headers.set(
                    "Retry-After", f"{self.shed_retry_after:g}"
                )
                return response
            try:
                return self._handle_admitted(request, peer)
            finally:
                with self._lock:
                    self._inflight -= 1
        return self._handle_admitted(request, peer)

    def _handle_admitted(
        self, request: HttpRequest, peer: str | None = None
    ) -> HttpResponse:
        if len(request.body) > self.max_body:
            self._reject("body_too_large")
            return soap_fault_response(
                Fault("Client", "request body too large"), status=413
            )
        try:
            logical = extract_logical(request.target, self.mount_prefix)
        except ReproError as exc:
            self._reject("bad_target")
            return soap_fault_response(Fault("Client", str(exc)), status=404)

        # Validity-check the XML message.  On the fast path the scanner
        # proves the envelope shape without parsing the Body, and the
        # original bytes are forwarded verbatim; otherwise the paper's
        # copy-to-a-new-document (parse + re-serialize) runs.
        envelope: Envelope | LazyEnvelope | None = None
        if self.fast_path:
            try:
                envelope = LazyEnvelope.from_bytes(request.body)
            except FastPathUnsupported as exc:
                self._m_fastpath.labels(outcome=exc.reason).inc()
            else:
                self._m_fastpath.labels(outcome="fast").inc()
        else:
            self._m_fastpath.labels(outcome="disabled").inc()
        if envelope is None:
            try:
                envelope = Envelope.from_bytes(request.body)
            except (XmlError, SoapError) as exc:
                self._reject("invalid_soap")
                return soap_fault_response(
                    Fault("Client", f"invalid SOAP request: {exc}"), status=400
                )
            forward_body = envelope.to_bytes()
        else:
            forward_body = request.body

        trace = extract_trace(envelope)
        trace_id = trace.trace_id if trace else None
        log_event(
            self._log, logging.DEBUG, "admit", trace=trace_id, logical=logical
        )

        if self.inspector is not None:
            try:
                self.inspector(envelope, logical)
            except AuthError as exc:
                self._reject("auth", trace_id)
                return soap_fault_response(Fault("Client", str(exc)), status=401)
            except ReproError as exc:
                self._reject("inspector", trace_id)
                return soap_fault_response(Fault("Client", str(exc)), status=403)

        try:
            physical = self.registry.resolve(logical)
        except UnknownServiceError as exc:
            self._reject("unknown_service", trace_id)
            return soap_fault_response(Fault("Client", str(exc)), status=404)

        headers = Headers()
        content_type = request.headers.get("Content-Type")
        headers.set("Content-Type", content_type or envelope.version.content_type)
        soap_action = request.headers.get("SOAPAction")
        if soap_action is not None:
            headers.set("SOAPAction", soap_action)
        headers.add("Via", f"1.1 rpc-dispatcher")
        forward = HttpRequest(
            "POST", "/", headers=headers, body=forward_body
        )
        if self.balancer is not None:
            self.balancer.on_start(physical)
        t_send = self.clock.now()
        try:
            response = self.client.request(physical, forward)
        except TransportError as exc:
            self._count("failed")
            self._m_failed.inc()
            log_event(
                self._log, logging.WARNING, "drop",
                trace=trace_id, reason="unreachable", dest=physical,
            )
            return soap_fault_response(
                Fault("Server", f"cannot reach {logical}: {exc}"), status=502
            )
        finally:
            if self.balancer is not None:
                self.balancer.on_finish(physical)
        t_done = self.clock.now()
        self._count("forwarded")
        self._m_forwarded.inc()
        self._m_forward_time.observe(t_done - t_send)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "forward", "rpcd",
                t_send, t_done,
                parent_id=trace.parent_span_id,
                logical=logical, dest=physical,
            )
        log_event(
            self._log, logging.DEBUG, "forward",
            trace=trace_id, logical=logical, dest=physical,
        )
        out_headers = Headers()
        ct = response.headers.get("Content-Type")
        if ct:
            out_headers.set("Content-Type", ct)
        out_headers.add("Via", "1.1 rpc-dispatcher")
        return HttpResponse(
            status=response.status, headers=out_headers, body=response.body
        )

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "forwarded": self.forwarded,
                "failed": self.failed,
                "rejected": self.rejected,
                "shed": self.shed,
            }

"""Load balancing over service replicas and dispatcher farms (future work).

Paper §4.4: "we plan to integrate a load-balancing system into the
Registry service that uses a farm of WS-Dispatchers."

Two pieces:

- :class:`BalancerPolicy` — selection strategies over a
  :class:`~repro.core.registry.ServiceRecord`'s physical addresses,
  pluggable as the registry's ``selector``.  ``least_pending`` needs load
  feedback, which the policies receive through :meth:`on_start` /
  :meth:`on_finish` callbacks from the dispatcher.
- :class:`DispatcherFarm` — a front tier that spreads incoming client
  traffic over several dispatcher instances, with liveness-based failover.
"""

from __future__ import annotations

import random
import threading
from typing import Callable

from repro.core.registry import ServiceRecord
from repro.errors import RoutingError


class BalancerPolicy:
    """Base: pick one address from a record; track in-flight load."""

    name = "base"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: dict[str, int] = {}
        self._picks: dict[str, int] = {}
        self._health: Callable[[str], bool] | None = None

    def set_health(self, predicate: Callable[[str], bool] | None) -> None:
        """Install a health filter over candidate addresses (e.g. a
        :meth:`~repro.reliable.breaker.BreakerRegistry.url_allowed`
        bound method): addresses it rejects are excluded from selection.
        When every address is unhealthy the full list is used — better a
        probe against a broken replica than no selection at all."""
        self._health = predicate

    def _healthy(self, addresses: list[str]) -> list[str]:
        if self._health is None:
            return addresses
        healthy = []
        for address in addresses:
            try:
                if self._health(address):
                    healthy.append(address)
            except Exception:  # noqa: BLE001 - a broken probe never vetoes
                healthy.append(address)
        return healthy or addresses

    # registry selector signature
    def __call__(self, record: ServiceRecord) -> str:
        choice = self.select(self._healthy(record.physical))
        with self._lock:
            self._picks[choice] = self._picks.get(choice, 0) + 1
        return choice

    def select(self, addresses: list[str]) -> str:
        raise NotImplementedError

    # -- load feedback -----------------------------------------------------
    def on_start(self, address: str) -> None:
        with self._lock:
            self._pending[address] = self._pending.get(address, 0) + 1

    def on_finish(self, address: str) -> None:
        with self._lock:
            self._pending[address] = max(0, self._pending.get(address, 0) - 1)

    def pending(self, address: str) -> int:
        with self._lock:
            return self._pending.get(address, 0)

    @property
    def pick_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._picks)


class RoundRobin(BalancerPolicy):
    """Cycle through addresses in order."""

    name = "round_robin"

    def __init__(self) -> None:
        super().__init__()
        self._counter = 0

    def select(self, addresses: list[str]) -> str:
        with self._lock:
            choice = addresses[self._counter % len(addresses)]
            self._counter += 1
            return choice


class RandomChoice(BalancerPolicy):
    """Uniform random selection (seedable for reproducible tests)."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def select(self, addresses: list[str]) -> str:
        with self._lock:
            return self._rng.choice(addresses)


class LeastPending(BalancerPolicy):
    """Pick the address with the fewest in-flight requests (ties: first)."""

    name = "least_pending"

    def select(self, addresses: list[str]) -> str:
        with self._lock:
            return min(addresses, key=lambda a: (self._pending.get(a, 0),))


def make_policy(name: str, seed: int | None = None) -> BalancerPolicy:
    """Factory by policy name (used by benchmarks and examples)."""
    if name == "round_robin":
        return RoundRobin()
    if name == "random":
        return RandomChoice(seed)
    if name == "least_pending":
        return LeastPending()
    raise ValueError(f"unknown balancer policy {name!r}")


class DispatcherFarm:
    """Client-side front tier over a farm of equivalent dispatchers.

    ``pick`` returns the base URL of a healthy dispatcher according to the
    policy; ``report_failure`` marks one down so traffic fails over, and
    ``revive`` (or a liveness probe) brings it back.
    """

    def __init__(
        self,
        dispatcher_urls: list[str],
        policy: BalancerPolicy | None = None,
    ) -> None:
        if not dispatcher_urls:
            raise RoutingError("farm needs at least one dispatcher")
        self._urls = list(dispatcher_urls)
        self._down: set[str] = set()
        self._policy = policy or RoundRobin()
        self._lock = threading.Lock()

    def pick(self) -> str:
        with self._lock:
            healthy = [u for u in self._urls if u not in self._down]
        if not healthy:
            raise RoutingError("no healthy dispatcher in farm")
        choice = self._policy.select(healthy)
        self._policy.on_start(choice)
        return choice

    def finish(self, url: str) -> None:
        self._policy.on_finish(url)

    def report_failure(self, url: str) -> None:
        with self._lock:
            if url in self._urls:
                self._down.add(url)

    def revive(self, url: str) -> None:
        with self._lock:
            self._down.discard(url)

    def probe_all(self, is_alive: Callable[[str], bool]) -> dict[str, bool]:
        """Run a liveness probe over every member; update the down set."""
        results: dict[str, bool] = {}
        for url in list(self._urls):
            alive = False
            try:
                alive = is_alive(url)
            except Exception:
                alive = False
            results[url] = alive
            with self._lock:
                if alive:
                    self._down.discard(url)
                else:
                    self._down.add(url)
        return results

    @property
    def members(self) -> list[str]:
        with self._lock:
            return list(self._urls)

    @property
    def healthy_members(self) -> list[str]:
        with self._lock:
            return [u for u in self._urls if u not in self._down]

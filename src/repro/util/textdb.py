"""Text-file backed key/value map — the registry's persistence format.

The paper: "RPC-Dispatcher contains a simple registry service that uses
text files for mapping logical address with physical address."  The format
here is one mapping per line, ``logical <TAB> physical [<TAB> k=v ...]``,
with ``#`` comments.  Writes rewrite the whole file atomically (tmp file +
rename) so a crashed dispatcher never leaves a half-written registry.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path


class TextFileMap:
    """A dict-like map persisted to a simple tab-separated text file.

    Values are ``(primary, attrs)`` where ``primary`` is a string and
    ``attrs`` a flat ``dict[str, str]``.  All operations are thread-safe.
    """

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._data: dict[str, tuple[str, dict[str, str]]] = {}
        if self._path is not None and self._path.exists():
            self._load()

    # -- file format -------------------------------------------------------
    @staticmethod
    def _format_line(key: str, primary: str, attrs: dict[str, str]) -> str:
        for field in (key, primary):
            if "\t" in field or "\n" in field:
                raise ValueError("keys/values may not contain tabs or newlines")
        parts = [key, primary]
        for k, v in sorted(attrs.items()):
            if any(c in k or c in v for c in "\t\n="):
                raise ValueError("attrs may not contain tabs, newlines, or '='")
            parts.append(f"{k}={v}")
        return "\t".join(parts)

    def _load(self) -> None:
        assert self._path is not None
        data: dict[str, tuple[str, dict[str, str]]] = {}
        for raw in self._path.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) < 2:
                raise ValueError(f"malformed registry line: {raw!r}")
            key, primary, *rest = parts
            attrs: dict[str, str] = {}
            for item in rest:
                k, sep, v = item.partition("=")
                if not sep:
                    raise ValueError(f"malformed attribute {item!r} in {raw!r}")
                attrs[k] = v
            data[key] = (primary, attrs)
        self._data = data

    def _flush(self) -> None:
        if self._path is None:
            return
        lines = ["# repro service registry — logical\tphysical\tattr=value..."]
        for key in sorted(self._data):
            primary, attrs = self._data[key]
            lines.append(self._format_line(key, primary, attrs))
        body = "\n".join(lines) + "\n"
        fd, tmp = tempfile.mkstemp(
            dir=str(self._path.parent), prefix=self._path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self._path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- map operations ------------------------------------------------------
    def put(self, key: str, primary: str, attrs: dict[str, str] | None = None) -> None:
        attrs = dict(attrs or {})
        # validate eagerly even for in-memory maps, so adding persistence
        # later can never hit unserializable entries
        self._format_line(key, primary, attrs)
        with self._lock:
            self._data[key] = (primary, attrs)
            self._flush()

    def get(self, key: str) -> tuple[str, dict[str, str]] | None:
        with self._lock:
            hit = self._data.get(key)
            return (hit[0], dict(hit[1])) if hit else None

    def remove(self, key: str) -> bool:
        with self._lock:
            if key in self._data:
                del self._data[key]
                self._flush()
                return True
            return False

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._data)

    def items(self) -> list[tuple[str, str, dict[str, str]]]:
        with self._lock:
            return [
                (k, primary, dict(attrs))
                for k, (primary, attrs) in sorted(self._data.items())
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

"""Relational persistence for the registry (paper future work §4.4).

"To improve performances of this service we would like to integrate a
relational database such as MySQL."  MySQL is not available offline, so
this backend uses the standard library's SQLite with the same interface
as :class:`~repro.util.textdb.TextFileMap` — the registry accepts either.
The substitution preserves the property the paper is after: durable,
transactional service records that survive dispatcher restarts.
"""

from __future__ import annotations

import sqlite3
import threading

_SCHEMA = """
CREATE TABLE IF NOT EXISTS services (
    logical  TEXT PRIMARY KEY,
    primary_address TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS service_attrs (
    logical TEXT NOT NULL REFERENCES services(logical) ON DELETE CASCADE,
    name    TEXT NOT NULL,
    value   TEXT NOT NULL,
    PRIMARY KEY (logical, name)
);
"""


class SqliteMap:
    """Dict-like map with the :class:`TextFileMap` interface over SQLite.

    ``path=":memory:"`` gives a private in-memory database (useful for
    tests); a filesystem path gives durable storage.  All operations are
    serialized by one lock — the registry's access pattern is lookup-heavy
    and lookups are served from the dispatchers' in-memory copy, so the
    database only sees mutations.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._lock = threading.Lock()
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)

    def put(self, key: str, primary: str, attrs: dict[str, str] | None = None) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO services(logical, primary_address) VALUES(?, ?) "
                "ON CONFLICT(logical) DO UPDATE SET primary_address=excluded.primary_address",
                (key, primary),
            )
            self._conn.execute("DELETE FROM service_attrs WHERE logical=?", (key,))
            for name, value in (attrs or {}).items():
                self._conn.execute(
                    "INSERT INTO service_attrs(logical, name, value) VALUES(?,?,?)",
                    (key, name, value),
                )

    def get(self, key: str) -> tuple[str, dict[str, str]] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT primary_address FROM services WHERE logical=?", (key,)
            ).fetchone()
            if row is None:
                return None
            attrs = dict(
                self._conn.execute(
                    "SELECT name, value FROM service_attrs WHERE logical=?", (key,)
                ).fetchall()
            )
            return row[0], attrs

    def remove(self, key: str) -> bool:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM services WHERE logical=?", (key,)
            )
            return cursor.rowcount > 0

    def keys(self) -> list[str]:
        with self._lock:
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT logical FROM services ORDER BY logical"
                )
            ]

    def items(self) -> list[tuple[str, str, dict[str, str]]]:
        out = []
        for key in self.keys():
            primary, attrs = self.get(key)  # type: ignore[misc]
            out.append((key, primary, attrs))
        return out

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM services").fetchone()[0]

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def close(self) -> None:
        with self._lock:
            self._conn.close()

"""Utility substrate: id generation, clocks, online statistics, executors.

These helpers are shared by every other subsystem and deliberately have no
dependencies outside the standard library.
"""

from repro.util.ids import IdGenerator, new_message_id, new_uuid
from repro.util.clock import Clock, MonotonicClock, ManualClock
from repro.util.stats import OnlineStats, Histogram, Counter
from repro.util.concurrency import BoundedExecutor, ClosableQueue, SingleFlight
from repro.util.textdb import TextFileMap

__all__ = [
    "IdGenerator",
    "new_message_id",
    "new_uuid",
    "Clock",
    "MonotonicClock",
    "ManualClock",
    "OnlineStats",
    "Histogram",
    "Counter",
    "BoundedExecutor",
    "ClosableQueue",
    "SingleFlight",
    "TextFileMap",
]

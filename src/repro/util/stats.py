"""Online statistics used by the test clients and benchmark harness.

The paper's test client "records statistical data" (number of calls made,
packets transmitted / not sent).  We keep richer per-run statistics but all
of them are computed online in O(1) memory per sample (Welford mean and
variance, fixed-bucket histogram), so a 60-second simulated run with
thousands of clients does not accumulate per-message lists.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


class OnlineStats:
    """Welford online mean/variance plus min/max.

    >>> s = OnlineStats()
    >>> for x in (1.0, 2.0, 3.0): s.add(x)
    >>> s.mean
    2.0
    """

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        """Fold another accumulator into this one (parallel combine)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineStats(n={self.count}, mean={self.mean:.6g}, "
            f"sd={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


class Histogram:
    """Fixed-width bucket histogram with overflow bucket.

    Approximate quantiles are read back by walking the cumulative counts;
    resolution is one bucket width, which is plenty for latency reporting.
    """

    def __init__(self, bucket_width: float, num_buckets: int = 256) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.bucket_width = bucket_width
        self.buckets = [0] * num_buckets
        self.overflow = 0
        self.count = 0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        idx = int(value / self.bucket_width)
        self.count += 1
        if idx >= len(self.buckets):
            self.overflow += 1
        else:
            self.buckets[idx] += 1

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket containing quantile ``q`` (0..1).

        ``q=0`` is the distribution minimum, reported as the *lower* edge
        of the first occupied bucket (an upper edge would overstate the
        minimum by a whole bucket width).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            for i, c in enumerate(self.buckets):
                if c:
                    return i * self.bucket_width
            # every sample overflowed: the minimum is at least the
            # overflow bucket's lower edge
            return len(self.buckets) * self.bucket_width
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.buckets):
            seen += c
            if seen >= target and c:
                return (i + 1) * self.bucket_width
        return math.inf  # landed in the overflow bucket


@dataclass
class Counter:
    """Named monotonic counters (transmitted / not-sent / errors ...).

    Thread-safe: the dispatchers increment these from CxThreads and
    WsThreads concurrently, so the read-modify-write is under a lock.
    """

    values: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self.values.get(name, 0)

    def merge(self, other: "Counter") -> None:
        # Snapshot the source first (its own lock), then fold under ours:
        # never holds both locks, so concurrent a.merge(b) / b.merge(a)
        # cannot deadlock.
        snapshot = other.as_dict()
        with self._lock:
            for name, v in snapshot.items():
                self.values[name] = self.values.get(name, 0) + v

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self.values)

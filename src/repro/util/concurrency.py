"""Thread-pool and queue primitives for the threaded runtime.

The paper's MSG-Dispatcher "manages two pools of threads (the sizes of the
pools are configurable)" with "a FIFO queue and the concurrent hash map
from the Concurrent Java Library".  Python dicts are already safe for the
single-key operations the registry needs, so the interesting pieces here
are a bounded executor whose rejection policy is explicit (the unbounded
variant is exactly the WS-MsgBox bug the paper reports) and a closable
FIFO queue for the WsThread delivery loops.
"""

from __future__ import annotations

import collections
import threading
from typing import Callable, Generic, Iterable, Optional, TypeVar

T = TypeVar("T")


class QueueClosed(Exception):
    """Raised by :class:`ClosableQueue` operations after :meth:`close`."""


class ClosableQueue(Generic[T]):
    """FIFO queue with optional capacity and a close signal.

    ``get`` returns ``None``-safe items until the queue is both closed and
    drained, at which point it raises :class:`QueueClosed`.  The WsThread
    delivery loops use this to shut down cleanly while still delivering
    messages already accepted.
    """

    def __init__(self, maxsize: int = 0) -> None:
        self._maxsize = maxsize
        self._items: collections.deque[T] = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._listeners: list[Callable[[], None]] = []

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Register a wakeup callback fired after every successful put and
        on :meth:`close`.

        This is the asyncio seam: an event-loop consumer registers
        ``loop.call_soon_threadsafe(event.set)`` here and waits on the
        event instead of blocking a thread in :meth:`get` — producers on
        any thread (HTTP workers, journal replay, hold-store pumps) wake
        the drain task without polling.  Callbacks run outside the queue
        lock on the producer's thread and must not block; exceptions are
        swallowed (a dead loop must not break producers).
        """
        with self._lock:
            self._listeners.append(callback)

    def _notify_listeners(self) -> None:
        for callback in list(self._listeners):
            try:
                callback()
            except Exception:  # noqa: BLE001 - a dead listener can't stop puts
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: T, timeout: float | None = None) -> bool:
        """Enqueue; returns False if the queue stayed full for ``timeout``.

        Raises :class:`QueueClosed` when the queue is closed.
        """
        with self._not_full:
            if self._closed:
                raise QueueClosed
            if self._maxsize > 0:
                if not self._not_full.wait_for(
                    lambda: self._closed or len(self._items) < self._maxsize,
                    timeout,
                ):
                    return False
                if self._closed:
                    raise QueueClosed
            self._items.append(item)
            self._not_empty.notify()
        self._notify_listeners()
        return True

    def try_put(self, item: T) -> bool:
        """Non-blocking put; False when full, QueueClosed when closed."""
        with self._not_full:
            if self._closed:
                raise QueueClosed
            if self._maxsize > 0 and len(self._items) >= self._maxsize:
                return False
            self._items.append(item)
            self._not_empty.notify()
        self._notify_listeners()
        return True

    def get(self, timeout: float | None = None) -> T:
        """Dequeue one item; raises QueueClosed once closed *and* empty."""
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout
            ):
                raise TimeoutError("queue.get timed out")
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
                return item
            raise QueueClosed

    def get_batch(self, max_items: int, timeout: float | None = None) -> list[T]:
        """Dequeue up to ``max_items`` in one call (connection batching).

        Blocks for the first item only; anything already queued rides
        along immediately.  The whole batch is taken under one lock
        acquisition, so two competing consumers cannot interleave inside
        one batch — each batch is a contiguous FIFO slice of the queue.
        """
        if max_items <= 0:
            raise ValueError("max_items must be positive")
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout
            ):
                raise TimeoutError("queue.get_batch timed out")
            if not self._items:
                raise QueueClosed
            batch = [self._items.popleft()]
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            self._not_full.notify_all()
            return batch

    def close(self) -> None:
        """Close the queue; waiting getters drain remaining items then stop."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
        self._notify_listeners()


class RejectedExecution(Exception):
    """BoundedExecutor refused a task (pool saturated, policy='reject')."""


class BoundedExecutor:
    """Fixed-size thread pool with an explicit saturation policy.

    Policies:

    - ``"block"``   — submit blocks until a queue slot frees (backpressure).
    - ``"reject"``  — submit raises :class:`RejectedExecution` immediately;
      callers count the rejection (this is how the fixed WS-MsgBox sheds
      load instead of dying).
    - ``"unbounded"`` — **the paper's bug**: every task spawns a fresh
      thread with no limit.  Provided so the WS-MsgBox failure mode can be
      reproduced deliberately (see ``repro.msgbox.service``).
    """

    def __init__(
        self,
        workers: int,
        queue_size: int = 0,
        policy: str = "block",
        name: str = "pool",
    ) -> None:
        if policy not in ("block", "reject", "unbounded"):
            raise ValueError(f"unknown policy {policy!r}")
        if policy != "unbounded" and workers <= 0:
            raise ValueError("workers must be positive")
        self.policy = policy
        self.name = name
        self._queue: ClosableQueue[Callable[[], None]] = ClosableQueue(queue_size)
        self._threads: list[threading.Thread] = []
        self._unbounded_threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._started = 0
        self._completed = 0
        self._rejected = 0
        self._task_errors = 0
        self._peak_threads = 0
        self._shutdown = False
        if policy != "unbounded":
            for i in range(workers):
                t = threading.Thread(
                    target=self._worker, name=f"{name}-{i}", daemon=True
                )
                t.start()
                self._threads.append(t)

    # -- metrics ----------------------------------------------------------
    @property
    def tasks_started(self) -> int:
        with self._lock:
            return self._started

    @property
    def tasks_completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def tasks_rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def task_errors(self) -> int:
        with self._lock:
            return self._task_errors

    @property
    def peak_threads(self) -> int:
        with self._lock:
            return self._peak_threads

    @staticmethod
    def _thread_counts(thread: threading.Thread) -> bool:
        """True while a thread occupies (or is about to occupy) a stack.

        A thread created but not yet started (``ident is None``) must be
        counted: under concurrent submission several exist at once and
        they are all about to own real stacks.
        """
        return thread.is_alive() or thread.ident is None

    def live_threads(self) -> int:
        if self.policy == "unbounded":
            with self._lock:
                self._unbounded_threads = [
                    t for t in self._unbounded_threads if self._thread_counts(t)
                ]
                return len(self._unbounded_threads)
        return sum(1 for t in self._threads if t.is_alive())

    # -- execution --------------------------------------------------------
    def submit(self, fn: Callable[[], None]) -> None:
        if self._shutdown:
            raise RejectedExecution(f"{self.name} is shut down")
        if self.policy == "unbounded":
            with self._lock:
                self._started += 1
                t = threading.Thread(
                    target=self._run_one,
                    args=(fn,),
                    name=f"{self.name}-adhoc-{self._started}",
                    daemon=True,
                )
                self._unbounded_threads.append(t)
                self._unbounded_threads = [
                    x for x in self._unbounded_threads if self._thread_counts(x)
                ]
                self._peak_threads = max(
                    self._peak_threads, len(self._unbounded_threads)
                )
            t.start()
            return
        try:
            if self.policy == "reject":
                if not self._queue.try_put(fn):
                    with self._lock:
                        self._rejected += 1
                    raise RejectedExecution(f"{self.name} queue full")
            else:
                self._queue.put(fn)
        except QueueClosed:
            raise RejectedExecution(f"{self.name} is shut down") from None
        with self._lock:
            self._started += 1
            self._peak_threads = max(self._peak_threads, len(self._threads))

    def _run_one(self, fn: Callable[[], None]) -> None:
        try:
            fn()
        except Exception:  # noqa: BLE001 - a task failure must not kill a worker
            with self._lock:
                self._task_errors += 1
        finally:
            with self._lock:
                self._completed += 1

    def _worker(self) -> None:
        while True:
            try:
                fn = self._queue.get()
            except QueueClosed:
                return
            self._run_one(fn)

    def shutdown(self, wait: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting tasks; optionally wait for in-flight work."""
        self._shutdown = True
        self._queue.close()
        if wait:
            for t in self._threads:
                t.join(timeout)
            with self._lock:
                pending = list(self._unbounded_threads)
            for t in pending:
                t.join(timeout)


class _Flight(Generic[T]):
    """One in-progress call shared by a leader and its waiters."""

    __slots__ = ("done", "result", "exc")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Optional[T] = None
        self.exc: BaseException | None = None


class SingleFlight(Generic[T]):
    """Coalesce concurrent calls for the same key behind one execution.

    The first caller for a key becomes the *leader* and runs ``fn``;
    callers that arrive while the leader is in flight block and share the
    leader's result (or exception).  The flight is retired before waiters
    wake, so a call that starts *after* the leader finished always runs
    fresh — stale results are never replayed.

    This is stampede protection for read-through caches: N concurrent
    misses for one registry name collapse into one trip to the backing
    store (or one failover sweep across registry replicas).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[object, _Flight[T]] = {}

    def run(self, key: object, fn: Callable[[], T]) -> tuple[T, bool]:
        """Run ``fn`` (or wait for the in-flight run); returns
        ``(result, coalesced)`` where ``coalesced`` is True for waiters
        that shared a leader's flight."""
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
        if leader:
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.exc = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.result, False
        flight.done.wait()
        if flight.exc is not None:
            raise flight.exc
        return flight.result, True

    def inflight(self) -> int:
        """Number of keys with a flight currently executing."""
        with self._lock:
            return len(self._flights)


def join_all(threads: Iterable[threading.Thread], timeout: float = 5.0) -> None:
    """Join helper that bounds total wait instead of per-thread wait."""
    import time

    deadline = time.monotonic() + timeout
    for t in threads:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        t.join(remaining)

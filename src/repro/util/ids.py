"""Identifier generation for messages, mailboxes, and connections.

WS-Addressing requires globally-unique ``MessageID`` URIs.  The paper's
WS-MsgBox relies on "unique hard to guess" mailbox addresses as its only
protection, so mailbox ids must be unpredictable; message ids only need
uniqueness.  For reproducible simulation runs every generator can be
seeded.
"""

from __future__ import annotations

import random
import threading
import uuid


def new_uuid() -> str:
    """Return a random RFC-4122 UUID string (process-global entropy)."""
    return str(uuid.uuid4())


def new_message_id() -> str:
    """Return a WS-Addressing MessageID URI (``uuid:`` scheme, as XSUL did)."""
    return f"uuid:{new_uuid()}"


class IdGenerator:
    """Deterministic, thread-safe id factory.

    A seeded :class:`IdGenerator` yields the same sequence of ids on every
    run, which keeps simulation transcripts and test expectations stable.
    Ids combine a namespace, a random 64-bit tag, and a sequence number so
    that two generators with different seeds never collide in practice.
    """

    def __init__(self, namespace: str = "id", seed: int | None = None) -> None:
        self._namespace = namespace
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._counter = 0

    @property
    def namespace(self) -> str:
        return self._namespace

    def next(self) -> str:
        """Return the next id, e.g. ``uuid:msg-1f3a...-17``."""
        with self._lock:
            self._counter += 1
            tag = self._rng.getrandbits(64)
            return f"uuid:{self._namespace}-{tag:016x}-{self._counter}"

    def next_token(self, bits: int = 128) -> str:
        """Return an unguessable hex token (mailbox addresses, SSO tokens)."""
        if bits <= 0:
            raise ValueError("token size must be positive")
        with self._lock:
            return f"{self._rng.getrandbits(bits):0{(bits + 3) // 4}x}"

    def __iter__(self) -> "IdGenerator":
        return self

    def __next__(self) -> str:
        return self.next()

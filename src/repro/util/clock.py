"""Clock abstraction so the same code runs on wall-clock or simulated time.

The threaded runtime (:mod:`repro.rt`) uses :class:`MonotonicClock`; tests
use :class:`ManualClock`; the discrete-event kernel exposes its own clock
through the same protocol (see :class:`repro.simnet.kernel.Simulator`).
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: current time in seconds plus a sleep."""

    def now(self) -> float:
        """Current time in seconds (monotonic within one clock instance)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block the caller for ``seconds`` of this clock's time."""
        ...


class MonotonicClock:
    """Wall-clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock:
    """A clock advanced explicitly by tests.

    ``sleep`` advances time immediately (it never blocks) and wakes any
    concurrent waiters; this keeps timeout-handling code testable without
    real delays.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward and wake every sleeper whose deadline passed."""
        if seconds < 0:
            raise ValueError("cannot move time backwards")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            return
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    def wait_until(self, deadline: float, real_timeout: float = 5.0) -> bool:
        """Block (in real time) until simulated time reaches ``deadline``.

        Returns False if ``real_timeout`` wall seconds elapse first.  Used
        by tests that coordinate a ManualClock across threads.
        """
        end = time.monotonic() + real_timeout
        with self._cond:
            while self._now < deadline:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

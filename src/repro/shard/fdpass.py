"""Accept-and-pass: the data-plane fallback when SO_REUSEPORT is absent.

With SO_REUSEPORT every worker binds the shared port itself and the
kernel spreads connections.  Without it, the supervisor owns the one
bound socket, accepts in a small thread, and hands each accepted
connection's file descriptor to a worker over a Unix socketpair
(SCM_RIGHTS via :func:`socket.send_fds`).  On the worker side
:class:`FdReceiverListener` speaks the same ``Listener`` protocol as
:class:`~repro.transport.tcp.TcpListener`, so the HTTP server cannot
tell the difference.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ConnectionTimeout, TransportError
from repro.transport.base import Endpoint
from repro.transport.tcp import TcpListener, TcpStream

__all__ = ["fd_passing_supported", "FdReceiverListener", "FanoutAcceptor"]


def fd_passing_supported() -> bool:
    """SCM_RIGHTS fd passing needs AF_UNIX + send_fds/recv_fds (3.9+)."""
    return (
        hasattr(socket, "AF_UNIX")
        and hasattr(socket, "send_fds")
        and hasattr(socket, "recv_fds")
    )


class FdReceiverListener:
    """Worker-side listener: accepted sockets arrive as passed fds.

    ``channel`` is the worker's end of the supervisor's socketpair
    (reconstructed from an inherited fd in a subprocess).  ``endpoint``
    is the *advertised* shared endpoint — what clients actually connect
    to — kept so server logs/URLs stay meaningful.
    """

    def __init__(
        self,
        channel: socket.socket,
        endpoint: Endpoint | str,
        nodelay: bool = True,
    ) -> None:
        if isinstance(endpoint, str):
            endpoint = Endpoint.parse(endpoint)
        self._channel = channel
        self._endpoint = endpoint
        self._nodelay = nodelay

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def accept(self, timeout: float | None = None) -> TcpStream:
        try:
            self._channel.settimeout(timeout)
            _msg, fds, _flags, _addr = socket.recv_fds(self._channel, 1, 1)
        except socket.timeout:
            raise ConnectionTimeout("fd-pass accept timed out") from None
        except OSError as exc:
            raise TransportError(f"fd channel broken: {exc}") from exc
        if not fds:
            # zero-fd read = EOF: the supervisor closed its end
            raise TransportError("fd channel closed by supervisor")
        conn = socket.socket(fileno=fds[0])
        conn.settimeout(None)
        return TcpStream(conn, nodelay=self._nodelay)

    def close(self) -> None:
        try:
            self._channel.close()
        except OSError:
            pass


class FanoutAcceptor:
    """Supervisor-side accept loop distributing connections round-robin.

    Owns the real bound socket (so there is no bind race: the endpoint
    is known before any worker starts) and one send channel per worker.
    A dead worker's channel raises on send; the connection is retried on
    the next live channel so a single crashed shard never black-holes
    accepted connections.
    """

    def __init__(
        self,
        endpoint: Endpoint | str,
        channels: dict[int, socket.socket],
        backlog: int = 128,
    ) -> None:
        self._listener = TcpListener(endpoint, backlog=backlog, nodelay=False)
        self._channels = dict(channels)
        self._lock = threading.Lock()
        self._running = False
        self._thread: threading.Thread | None = None
        self._next = 0
        self.passed = 0
        self.pass_errors = 0

    @property
    def endpoint(self) -> Endpoint:
        return self._listener.endpoint

    def replace_channel(self, shard_id: int, channel: socket.socket) -> None:
        """Swap in a restarted worker's fresh socketpair end."""
        with self._lock:
            old = self._channels.get(shard_id)
            self._channels[shard_id] = channel
        if old is not None:
            try:
                old.close()
            except OSError:
                pass

    def start(self) -> "FanoutAcceptor":
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name="fanout-accept", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while self._running:
            try:
                stream = self._listener.accept(timeout=0.25)
            except ConnectionTimeout:
                continue
            except TransportError:
                if self._running:
                    continue
                return
            self._pass_stream(stream)

    def _pass_stream(self, stream: TcpStream) -> None:
        with self._lock:
            order = sorted(self._channels)
        for attempt in range(max(1, len(order))):
            with self._lock:
                if not order:
                    break
                shard_id = order[self._next % len(order)]
                self._next += 1
                channel = self._channels.get(shard_id)
            if channel is None:
                continue
            try:
                socket.send_fds(channel, [b"c"], [stream._sock.fileno()])
                self.passed += 1
                stream.close()  # worker holds its own duplicate now
                return
            except OSError:
                self.pass_errors += 1
                continue
        stream.close()  # no live worker channel: drop the connection

    def stop(self) -> None:
        self._running = False
        self._listener.close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            try:
                channel.close()
            except OSError:
                pass

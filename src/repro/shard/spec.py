"""The shard worker's boot contract: everything a worker process needs.

The supervisor serializes a :class:`ShardSpec` to JSON and hands it to
``python -m repro.shard.worker`` on argv; the worker rebuilds its whole
deployment (registry seed, ring geometry, peer map, journal path, runtime
choice) from it.  Keeping the contract an explicit dataclass — instead of
pickled closures — is what makes single-shard restart trivial: respawning
a crashed worker is re-sending the same spec.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = ["ShardSpec"]


@dataclass
class ShardSpec:
    """One worker's share of a sharded dispatcher deployment."""

    shard_id: int
    shards: int
    #: the shared client-facing endpoint (every shard binds it with
    #: SO_REUSEPORT, or receives its connections via fd passing)
    data_host: str
    data_port: int
    #: this shard's private endpoint: peers relay here, services reply here
    direct_port: int
    #: shard id -> direct base URL for every shard (self included)
    peers: dict[int, str] = field(default_factory=dict)
    #: logical name -> physical URL seed for the worker's ServiceRegistry
    registry: dict[str, str] = field(default_factory=dict)
    mount_prefix: str = "/msg"
    #: "threaded" (MsgDispatcher) or "aio" (AioMsgDispatcher, one loop)
    runtime: str = "threaded"
    #: "reuseport" (bind shared port) or "pass" (fds over a Unix channel)
    accept_mode: str = "reuseport"
    #: inherited fd number of the worker's end of the fd-pass socketpair
    pass_fd: int | None = None
    #: per-shard journal file; None runs the shard non-durable
    journal_path: str | None = None
    journal_sync: str = "group"
    ring_replicas: int = 64
    dedupe_window: float | None = 60.0
    cx_threads: int = 2
    ws_threads: int = 8
    server_workers: int = 16
    batch_size: int = 8
    pipeline_batches: bool = True
    fast_path: bool = True
    #: retry knobs cover the relay path while a crashed peer restarts
    retry_attempts: int = 8
    retry_base: float = 0.05
    retry_max_delay: float = 0.5

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardSpec":
        data = json.loads(text)
        # JSON object keys are strings; the peer map is keyed by shard id
        data["peers"] = {
            int(shard): url for shard, url in data.get("peers", {}).items()
        }
        return cls(**data)

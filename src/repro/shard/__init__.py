"""repro.shard — the multi-process sharded dispatcher (GIL escape).

One CPython process dispatches on one core; this package multiplies the
dispatcher across processes while preserving every single-process
guarantee:

- :mod:`repro.shard.ring` — deterministic consistent hashing from
  logical destination names to owning shards (:class:`HashRing`).
- :mod:`repro.shard.dispatcher` — :class:`ShardedMsgDispatcher` /
  ``AioShardedMsgDispatcher``: the routing seam consults the ring and
  relays foreign messages to the owner's direct endpoint, so
  per-destination FIFO order, breaker state, hold/retry schedules, and
  correlations stay shard-local with no cross-process locking.
- :mod:`repro.shard.spec` — :class:`ShardSpec`, the JSON boot contract
  between supervisor and worker.
- :mod:`repro.shard.worker` — :class:`ShardWorker`, one shard's full
  deployment (``python -m repro.shard.worker``), threaded or asyncio.
- :mod:`repro.shard.fdpass` — accept-and-pass fallback (SCM_RIGHTS fd
  passing) for platforms without SO_REUSEPORT.
- :mod:`repro.shard.supervisor` — :class:`ShardSupervisor`: spawns the
  fleet behind one shared data port, restarts crashed workers against
  their own per-shard journals (``journal-shard<k>.db``), and serves
  aggregated ``/metrics`` (merged Prometheus exposition), ``/health``,
  and ``/slo``.
"""

from repro.shard.fdpass import (
    FanoutAcceptor,
    FdReceiverListener,
    fd_passing_supported,
)
from repro.shard.ring import HashRing
from repro.shard.spec import ShardSpec
from repro.shard.supervisor import ShardSupervisor, SupervisorConfig


def __getattr__(name: str):
    # lazy: repro.shard.worker doubles as `python -m repro.shard.worker`,
    # and importing it from the package __init__ would make runpy warn
    # about re-executing an already-imported module in every subprocess
    if name == "ShardWorker":
        from repro.shard.worker import ShardWorker

        globals()[name] = ShardWorker
        return ShardWorker
    if name in ("ShardedMsgDispatcher", "AioShardedMsgDispatcher"):
        from repro.shard import dispatcher

        value = getattr(dispatcher, name)
        globals()[name] = value
        return value
    raise AttributeError(name)


__all__ = [
    "AioShardedMsgDispatcher",
    "FanoutAcceptor",
    "FdReceiverListener",
    "HashRing",
    "ShardSpec",
    "ShardSupervisor",
    "ShardWorker",
    "ShardedMsgDispatcher",
    "SupervisorConfig",
    "fd_passing_supported",
]

"""The shard supervisor: N dispatcher worker processes, one endpoint.

This is the GIL escape.  One CPython process routes on one core no
matter how many threads it runs; the supervisor forks ``shards`` worker
*processes* (each a complete dispatcher deployment built from a
:class:`~repro.shard.spec.ShardSpec`) that share a single client-facing
data port — via SO_REUSEPORT where the kernel supports it, else via the
accept-and-pass :class:`~repro.shard.fdpass.FanoutAcceptor` — while
consistent hashing keeps every destination's FIFO order, breaker state,
and journal records in exactly one process.

Supervision is deliberately boring: a monitor thread polls
``Popen.poll()``; a dead worker is respawned with *the same spec* —
same direct port, same journal file — so its journal replays and its
peers' relay retries reconnect, while the surviving shards never stop
draining.  On a full supervisor restart each worker likewise recovers
its own ``journal-shard<k>.db``; the supervisor reports the merged
pending picture (:func:`~repro.store.journal.merged_recovery_report`)
before any worker boots.

The control endpoint aggregates the fleet: ``GET /metrics`` scrapes
every worker's Prometheus exposition and serves the
:func:`~repro.obs.aggregate.merge_expositions` merge (plus the
supervisor's own restart/liveness families); ``GET /health`` and
``GET /slo`` nest each worker's JSON under its shard id.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from repro.http import HttpRequest
from repro.obs.aggregate import MergeError, merge_expositions
from repro.obs.flight import FlightRecorder
from repro.obs.http import _json_response, _text_response
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.shard.fdpass import FanoutAcceptor, fd_passing_supported
from repro.shard.ring import HashRing
from repro.shard.spec import ShardSpec
from repro.store.journal import merged_recovery_report, shard_journal_path
from repro.transport.base import Endpoint
from repro.transport.tcp import TcpConnector, TcpListener, reuse_port_supported

import logging

__all__ = ["SupervisorConfig", "ShardSupervisor"]


@dataclass
class SupervisorConfig:
    """Deployment geometry + knobs forwarded into every worker's spec."""

    shards: int = 2
    runtime: str = "threaded"  # "threaded" | "aio"
    accept_mode: str = "auto"  # "auto" | "reuseport" | "pass"
    data_host: str = "127.0.0.1"
    #: directory for per-shard journals; None runs the fleet non-durable
    journal_dir: str | None = None
    journal_sync: str = "group"
    mount_prefix: str = "/msg"
    ring_replicas: int = 64
    dedupe_window: float | None = 60.0
    cx_threads: int = 2
    ws_threads: int = 8
    server_workers: int = 16
    batch_size: int = 8
    pipeline_batches: bool = True
    fast_path: bool = True
    retry_attempts: int = 8
    retry_base: float = 0.05
    retry_max_delay: float = 0.5
    #: how long to wait for a worker's ready line at first boot
    ready_timeout: float = 20.0
    #: pause before respawning a dead worker (crash-loop damping)
    restart_backoff: float = 0.2
    poll_interval: float = 0.05
    #: serve the aggregated /metrics /health /slo control endpoint
    control: bool = True


class _Worker:
    """Bookkeeping for one spawned shard process."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.proc: subprocess.Popen | None = None
        self.ready = threading.Event()
        self.ready_info: dict = {}
        self.parent_channel: socket.socket | None = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class ShardSupervisor:
    """Runs and supervises a sharded dispatcher deployment."""

    def __init__(
        self,
        registry: dict[str, str],
        config: SupervisorConfig | None = None,
    ) -> None:
        self.registry = dict(registry)
        self.config = config or SupervisorConfig()
        if self.config.shards < 1:
            raise ValueError("need at least one shard")
        self.ring = HashRing(
            self.config.shards, replicas=self.config.ring_replicas
        )
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder()
        self._log = component_logger("shardsup")
        self._workers: dict[int, _Worker] = {}
        self._peers: dict[int, str] = {}
        self._acceptor: FanoutAcceptor | None = None
        self._data_reservation: socket.socket | None = None
        self._data_endpoint: Endpoint | None = None
        self._control_server: HttpServer | None = None
        self._scrape_client: HttpClient | None = None
        self._monitor: threading.Thread | None = None
        self._running = False
        self._lock = threading.Lock()
        self.accept_mode: str | None = None
        self.recovery_report: dict[int, int] = {}
        self._m_restarts = self.metrics.counter(
            "supervisor_restarts_total", "worker restarts, by shard"
        )
        self._m_up = self.metrics.gauge(
            "supervisor_shard_up", "1 while the shard process is alive"
        )
        self._m_scrape_errors = self.metrics.counter(
            "supervisor_scrape_errors_total",
            "failed worker introspection scrapes, by shard",
        )

    # -- addressing --------------------------------------------------------
    @property
    def data_endpoint(self) -> Endpoint:
        if self._data_endpoint is None:
            raise RuntimeError("supervisor is not started")
        return self._data_endpoint

    @property
    def data_url(self) -> str:
        return f"http://{self.data_endpoint}"

    @property
    def control_url(self) -> str:
        if self._control_server is None:
            raise RuntimeError("control endpoint is not running")
        return f"http://{self._control_server.endpoint}"

    def shard_urls(self) -> dict[int, str]:
        return dict(self._peers)

    def pids(self) -> dict[int, int | None]:
        return {
            shard_id: (worker.proc.pid if worker.proc else None)
            for shard_id, worker in self._workers.items()
        }

    def restart_counts(self) -> dict[int, int]:
        return {
            shard_id: worker.restarts
            for shard_id, worker in self._workers.items()
        }

    def owner_of(self, logical: str) -> int:
        return self.ring.owner(logical)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        cfg = self.config
        self.accept_mode = self._resolve_accept_mode()
        if cfg.journal_dir:
            os.makedirs(cfg.journal_dir, exist_ok=True)
            self.recovery_report = merged_recovery_report(cfg.journal_dir)
            pending = sum(n for n in self.recovery_report.values() if n > 0)
            if pending:
                self.flight.record(
                    "merged-recovery", "shardsup",
                    pending=pending, per_shard=dict(self.recovery_report),
                )
                log_event(
                    self._log, logging.INFO, "merged-recovery",
                    pending=pending,
                )

        if self.accept_mode == "pass":
            # the supervisor owns the bound socket: endpoint known with no
            # bind race, workers get connections over their channels
            self._acceptor = FanoutAcceptor(Endpoint(cfg.data_host, 0), {})
            self._data_endpoint = self._acceptor.endpoint
        else:
            # reserve the shared port for the supervisor's lifetime: a
            # bound-but-never-listening SO_REUSEPORT socket holds the
            # number (it never joins the TCP accept group, so it steals
            # no connections) while workers bind the same port
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((cfg.data_host, 0))
            self._data_reservation = sock
            self._data_endpoint = Endpoint(cfg.data_host, sock.getsockname()[1])

        direct_ports = {
            shard_id: _probe_free_port(cfg.data_host)
            for shard_id in range(cfg.shards)
        }
        self._peers = {
            shard_id: f"http://{cfg.data_host}:{port}"
            for shard_id, port in direct_ports.items()
        }
        for shard_id in range(cfg.shards):
            spec = self._make_spec(shard_id, direct_ports[shard_id])
            worker = _Worker(spec)
            self._workers[shard_id] = worker
            self._m_up.labels(shard=str(shard_id)).set_function(
                lambda w=worker: 1 if w.alive else 0
            )
        self._running = True
        if self._acceptor is not None:
            self._acceptor.start()
        for worker in self._workers.values():
            self._spawn(worker)
        deadline = time.monotonic() + cfg.ready_timeout
        for shard_id, worker in self._workers.items():
            remaining = max(0.1, deadline - time.monotonic())
            if not worker.ready.wait(remaining):
                self.stop()
                raise RuntimeError(
                    f"shard {shard_id} did not report ready within "
                    f"{cfg.ready_timeout}s"
                )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        self._monitor.start()
        if cfg.control:
            self._scrape_client = HttpClient(TcpConnector())
            app = SoapHttpApp(metrics=self.metrics)
            app.mount_page("/metrics", self._metrics_page)
            app.mount_page("/health", self._health_page)
            app.mount_page("/slo", self._slo_page)
            self._control_server = HttpServer(
                TcpListener(Endpoint(cfg.data_host, 0)),
                app.handle_request, workers=4, name="shard-control",
                metrics=self.metrics,
            ).start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._running = False
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
            self._monitor = None
        for worker in self._workers.values():
            if worker.alive:
                worker.proc.terminate()
        deadline = time.monotonic() + timeout
        for worker in self._workers.values():
            if worker.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.proc.wait(remaining)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
            if worker.parent_channel is not None:
                try:
                    worker.parent_channel.close()
                except OSError:
                    pass
                worker.parent_channel = None
        if self._acceptor is not None:
            self._acceptor.stop()
            self._acceptor = None
        if self._data_reservation is not None:
            self._data_reservation.close()
            self._data_reservation = None
        if self._control_server is not None:
            self._control_server.stop()
            self._control_server = None
        if self._scrape_client is not None:
            self._scrape_client.close()
            self._scrape_client = None

    def __enter__(self) -> "ShardSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- worker management -------------------------------------------------
    def _resolve_accept_mode(self) -> str:
        mode = self.config.accept_mode
        if mode == "auto":
            mode = "reuseport" if reuse_port_supported() else "pass"
        if mode == "reuseport" and not reuse_port_supported():
            raise RuntimeError("SO_REUSEPORT is not supported on this host")
        if mode == "pass":
            if not fd_passing_supported():
                raise RuntimeError(
                    "accept-and-pass needs AF_UNIX SCM_RIGHTS fd passing"
                )
            if self.config.runtime == "aio":
                raise RuntimeError(
                    "accept_mode='pass' supports only the threaded runtime"
                )
        return mode

    def _make_spec(self, shard_id: int, direct_port: int) -> ShardSpec:
        cfg = self.config
        journal_path = None
        if cfg.journal_dir:
            journal_path = shard_journal_path(cfg.journal_dir, shard_id)
        return ShardSpec(
            shard_id=shard_id,
            shards=cfg.shards,
            data_host=cfg.data_host,
            data_port=self.data_endpoint.port,
            direct_port=direct_port,
            peers=dict(self._peers),
            registry=dict(self.registry),
            mount_prefix=cfg.mount_prefix,
            runtime=cfg.runtime,
            accept_mode=self.accept_mode or "reuseport",
            journal_path=journal_path,
            journal_sync=cfg.journal_sync,
            ring_replicas=cfg.ring_replicas,
            dedupe_window=cfg.dedupe_window,
            cx_threads=cfg.cx_threads,
            ws_threads=cfg.ws_threads,
            server_workers=cfg.server_workers,
            batch_size=cfg.batch_size,
            pipeline_batches=cfg.pipeline_batches,
            fast_path=cfg.fast_path,
            retry_attempts=cfg.retry_attempts,
            retry_base=cfg.retry_base,
            retry_max_delay=cfg.retry_max_delay,
        )

    def _spawn(self, worker: _Worker) -> None:
        spec = worker.spec
        pass_fds: tuple[int, ...] = ()
        child_end: socket.socket | None = None
        if self.accept_mode == "pass":
            parent_end, child_end = socket.socketpair(
                socket.AF_UNIX, socket.SOCK_STREAM
            )
            worker.parent_channel = parent_end
            spec.pass_fd = child_end.fileno()
            pass_fds = (child_end.fileno(),)
            assert self._acceptor is not None
            self._acceptor.replace_channel(spec.shard_id, parent_end)
        worker.ready = threading.Event()
        worker.ready_info = {}
        env = dict(os.environ)
        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        worker.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.shard.worker", spec.to_json()],
            stdout=subprocess.PIPE,
            env=env,
            pass_fds=pass_fds,
            text=True,
        )
        if child_end is not None:
            child_end.close()  # the worker holds its own inherited copy
        threading.Thread(
            target=self._read_worker_stdout,
            args=(worker, worker.proc),
            name=f"shard{spec.shard_id}-stdout",
            daemon=True,
        ).start()

    def _read_worker_stdout(
        self, worker: _Worker, proc: subprocess.Popen
    ) -> None:
        try:
            for line in proc.stdout:
                line = line.strip()
                if not line:
                    continue
                try:
                    info = json.loads(line)
                except ValueError:
                    continue
                if info.get("ready"):
                    worker.ready_info = info
                    worker.ready.set()
        except ValueError:
            pass  # stdout closed mid-read during shutdown

    def _monitor_loop(self) -> None:
        cfg = self.config
        while self._running:
            time.sleep(cfg.poll_interval)
            for shard_id, worker in list(self._workers.items()):
                if not self._running:
                    return
                if worker.proc is None or worker.alive:
                    continue
                returncode = worker.proc.returncode
                worker.restarts += 1
                self._m_restarts.labels(shard=str(shard_id)).inc()
                self.flight.record(
                    "shard-exit", "shardsup",
                    shard=shard_id, returncode=returncode,
                    restarts=worker.restarts,
                )
                log_event(
                    self._log, logging.WARNING, "shard-exit",
                    shard=shard_id, returncode=returncode,
                    restarts=worker.restarts,
                )
                time.sleep(cfg.restart_backoff)
                if not self._running:
                    return
                # same spec: same direct port, same journal file — the
                # respawned worker recovers its own journal while its
                # peers' relay retries find it at the old address
                self._spawn(worker)

    # -- aggregated control plane -------------------------------------------
    def _scrape(self, path: str) -> tuple[dict[int, str], dict[int, str]]:
        """GET ``path`` from every worker: shard -> body, shard -> error."""
        bodies: dict[int, str] = {}
        errors: dict[int, str] = {}
        client = self._scrape_client
        for shard_id, base in self._peers.items():
            if client is None:
                errors[shard_id] = "control plane stopped"
                continue
            try:
                response = client.request(
                    base + path, HttpRequest("GET", path)
                )
                if response.status != 200:
                    raise RuntimeError(f"HTTP {response.status}")
                bodies[shard_id] = response.body.decode("utf-8")
            except Exception as exc:  # noqa: BLE001 - any scrape failure
                self._m_scrape_errors.labels(shard=str(shard_id)).inc()
                errors[shard_id] = str(exc)
        return bodies, errors

    def _metrics_page(self, request: HttpRequest):
        bodies, errors = self._scrape("/metrics")
        texts = [bodies[k] for k in sorted(bodies)]
        texts.append(self.metrics.render_prometheus())
        try:
            merged = merge_expositions(texts)
        except MergeError as exc:
            return _json_response(
                {"error": "metrics merge failed", "detail": str(exc)},
                status=500,
            )
        if errors:
            notes = "".join(
                f"# shard {k} scrape failed: {v}\n"
                for k, v in sorted(errors.items())
            )
            merged = notes + merged
        return _text_response(
            merged, content_type="text/plain; version=0.0.4; charset=utf-8"
        )

    def _fanout_json(self, path: str) -> dict:
        bodies, errors = self._scrape(path)
        shards: dict[str, object] = {}
        for shard_id, body in bodies.items():
            try:
                shards[str(shard_id)] = json.loads(body)
            except ValueError:
                shards[str(shard_id)] = {"unparseable": body[:200]}
        for shard_id, error in errors.items():
            shards[str(shard_id)] = {"error": error}
        return shards

    def _supervisor_section(self) -> dict:
        return {
            "shards": self.config.shards,
            "runtime": self.config.runtime,
            "accept_mode": self.accept_mode,
            "data_endpoint": str(self._data_endpoint),
            "alive": {
                str(k): w.alive for k, w in self._workers.items()
            },
            "restarts": {
                str(k): w.restarts for k, w in self._workers.items()
            },
            "recovery_report": {
                str(k): n for k, n in self.recovery_report.items()
            },
        }

    def _health_page(self, request: HttpRequest):
        shards = self._fanout_json("/health")
        degraded = any("error" in v for v in shards.values() if isinstance(v, dict))
        return _json_response(
            {
                "status": "degraded" if degraded else "ok",
                "supervisor": self._supervisor_section(),
                "shards": shards,
            },
            status=503 if degraded else 200,
        )

    def _slo_page(self, request: HttpRequest):
        return _json_response(
            {
                "supervisor": self._supervisor_section(),
                "shards": self._fanout_json("/slo"),
            }
        )


def _probe_free_port(host: str) -> int:
    """An ephemeral port that was free a moment ago (probe-bind-close).

    Workers bind their direct ports plain (SO_REUSEADDR only), so the
    reservation cannot be held open the way the shared data port's is;
    the bind-after-close race is accepted on loopback.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]
    finally:
        sock.close()

"""Shard-aware dispatchers: consistent-hash ownership at the routing seam.

A sharded deployment runs N dispatcher processes behind one shared data
port; the kernel (SO_REUSEPORT) or the supervisor's fanout acceptor
spreads client connections arbitrarily, so any shard can receive a
message for any destination.  Ownership is restored at routing time:
:class:`ShardedMsgDispatcher` overrides ``_route_one`` to consult the
:class:`~repro.shard.ring.HashRing` and *relay* messages it does not own
to the owner's direct endpoint, byte-verbatim, through its own
per-destination FIFO machinery — so relays ride persistent connections
and pipeline in batches like any other delivery.

Everything that must be per-destination-exclusive — FIFO order, breaker
state, hold/retry schedules, correlation entries, the duplicate filter —
therefore lives in exactly one process per destination with no
cross-process locking.  The check sits on ``_route_one`` (not
``handle``) deliberately: journal replay after a crash re-enters routing
through the same seam, so a restarted shard re-relays any foreign
messages it had journaled before dying.

Hooks overridden here are substrate-independent (they never block), so
one mixin serves both the threaded and asyncio dispatchers.
"""

from __future__ import annotations

from repro.core.msg_dispatcher import MsgDispatcher
from repro.core.routing import extract_logical
from repro.errors import ReproError, RoutingError
from repro.obs.trace import TraceContext, attach_trace
from repro.shard.ring import HashRing
from repro.soap import Envelope
from repro.wsa import AddressingHeaders

__all__ = ["ShardedMsgDispatcher", "AioShardedMsgDispatcher"]


class _ShardRoutingMixin:
    """Consistent-hash ownership + peer relay on top of a dispatcher."""

    def __init__(
        self,
        *args,
        shard_id: int = 0,
        ring: HashRing | None = None,
        peers: dict[int, str] | None = None,
        **kwargs,
    ) -> None:
        self.shard_id = shard_id
        self.ring = ring
        #: shard id -> peer *direct* base URL (http://host:port); relays
        #: bypass the shared port so they land on the owner, not the kernel's
        #: pick
        self.peers = dict(peers or {})
        super().__init__(*args, **kwargs)
        self._m_relayed = self.metrics.counter(
            "shard_relay_total",
            "messages relayed between shards, by direction",
        )

    # -- ownership ---------------------------------------------------------
    def owner_of(self, logical: str) -> int:
        assert self.ring is not None
        return self.ring.owner(logical)

    def _foreign_owner(self, envelope: Envelope, path: str) -> int | None:
        """The owning shard id if it is not us, else None (process here)."""
        if self.ring is None:
            return None
        try:
            headers = AddressingHeaders.from_envelope(envelope)
        except ReproError:
            return None  # unparseable: let the local pipeline reject it
        if headers.relates_to:
            # responses return to the shard that forwarded the request
            # (ReplyTo was rewritten to that shard's direct address), so a
            # RelatesTo message is local by construction — never relayed
            return None
        try:
            logical = extract_logical(headers.to or path, self.mount_prefix)
        except RoutingError:
            try:
                logical = extract_logical(path, self.mount_prefix)
            except RoutingError:
                return None
        owner = self.ring.owner(logical)
        if owner == self.shard_id or owner not in self.peers:
            return None
        return owner

    # -- routing seam ------------------------------------------------------
    def _route_one(
        self,
        envelope: Envelope,
        path: str,
        trace: TraceContext | None = None,
        t_start: float | None = None,
        journal_seq: int | None = None,
    ) -> None:
        owner = self._foreign_owner(envelope, path)
        if owner is None:
            super()._route_one(
                envelope, path, trace, t_start, journal_seq=journal_seq
            )
            return
        self._relay(envelope, path, owner, trace, t_start, journal_seq)

    def _relay(
        self,
        envelope: Envelope,
        path: str,
        owner: int,
        trace: TraceContext | None,
        t_start: float | None,
        journal_seq: int | None,
    ) -> None:
        """Forward a foreign message to its owner's direct endpoint.

        The inbound journal record (if any) travels with the relay item:
        it is marked delivered only when the owner has accepted the
        bytes, so a crash mid-relay replays — and the replay re-runs this
        ownership check.
        """
        target = self.peers[owner].rstrip("/") + path
        relay_sid = None
        if trace is not None:
            relay_sid = self.traces.new_span_id()
            attach_trace(envelope, trace.child(relay_sid))
        self._enqueue(
            envelope.to_bytes(), target,
            trace=trace, parent_span_id=relay_sid,
            journal_seq=journal_seq,
        )
        self.counters.inc("relayed_out")
        self._m_relayed.labels(direction="out").inc()
        if relay_sid is not None:
            start = t_start if t_start is not None else self.clock.now()
            self.traces.record(
                trace.trace_id, "shard-relay", f"shard{self.shard_id}",
                start, self.clock.now(),
                span_id=relay_sid, parent_id=trace.parent_span_id,
                owner=str(owner),
            )


class ShardedMsgDispatcher(_ShardRoutingMixin, MsgDispatcher):
    """Threaded dispatcher with consistent-hash shard ownership."""


def _aio_sharded_class():
    # repro.aio imports are deferred so a threaded-only deployment never
    # pays for (or depends on) the asyncio runtime module
    from repro.aio.dispatcher import AioMsgDispatcher

    class AioShardedMsgDispatcher(_ShardRoutingMixin, AioMsgDispatcher):
        """Event-loop dispatcher with consistent-hash shard ownership.

        Like :class:`~repro.aio.dispatcher.AioMsgDispatcher`, construct
        it from a coroutine running on the owning loop.
        """

    return AioShardedMsgDispatcher


def __getattr__(name: str):
    if name == "AioShardedMsgDispatcher":
        cls = _aio_sharded_class()
        globals()[name] = cls
        return cls
    raise AttributeError(name)

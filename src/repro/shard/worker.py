"""One shard: a full dispatcher deployment booted from a ShardSpec.

Runnable as ``python -m repro.shard.worker '<spec json>'`` (or
``@/path/to/spec.json``).  The worker builds its registry, ring, journal,
and dispatcher from the spec, serves the shared data endpoint *and* its
private direct endpoint (peer relays, service replies, supervisor
scrapes), prints one ready line of JSON on stdout for the supervisor,
and drains gracefully on SIGTERM.

:class:`ShardWorker` is also constructible in-process, which is how the
unit tests exercise a shard without forking.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading

from repro.core.registry import ServiceRegistry
from repro.core.msg_dispatcher import MsgDispatcherConfig
from repro.obs.flight import FlightRecorder
from repro.obs.http import Introspection
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.reliable.policy import ExponentialBackoff
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.shard.fdpass import FdReceiverListener
from repro.shard.ring import HashRing
from repro.shard.spec import ShardSpec
from repro.store.journal import MessageJournal
from repro.transport.base import Endpoint
from repro.transport.tcp import TcpConnector, TcpListener

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """Builds and runs one shard's servers + dispatcher from a spec."""

    def __init__(self, spec: ShardSpec) -> None:
        if spec.runtime not in ("threaded", "aio"):
            raise ValueError(f"unknown shard runtime {spec.runtime!r}")
        if spec.runtime == "aio" and spec.accept_mode == "pass":
            raise ValueError(
                "accept_mode='pass' needs the threaded runtime "
                "(the asyncio server binds its own socket)"
            )
        self.spec = spec
        self.metrics = MetricsRegistry()
        self.traces = TraceStore(span_prefix=f"shard{spec.shard_id}")
        self.flight = FlightRecorder()
        self.ring = HashRing(spec.shards, replicas=spec.ring_replicas)
        self.registry = ServiceRegistry(metrics=self.metrics)
        for logical, physical in spec.registry.items():
            self.registry.register(logical, physical)
        self.journal = None
        if spec.journal_path:
            self.journal = MessageJournal(
                spec.journal_path, sync=spec.journal_sync, flight=self.flight
            )
        self.dispatcher = None
        self._loop_thread = None
        self._servers: list = []
        self._clients: list = []
        self.metrics.gauge(
            "shard_id", "which shard this process serves"
        ).set_function(lambda: spec.shard_id)

    # -- assembly ----------------------------------------------------------
    def _dispatcher_config(self) -> MsgDispatcherConfig:
        spec = self.spec
        return MsgDispatcherConfig(
            cx_threads=spec.cx_threads,
            ws_threads=spec.ws_threads,
            batch_size=spec.batch_size,
            pipeline_batches=spec.pipeline_batches,
            fast_path=spec.fast_path,
            dedupe_window=spec.dedupe_window,
            retry=ExponentialBackoff(
                max_attempts=spec.retry_attempts,
                base=spec.retry_base,
                max_delay=spec.retry_max_delay,
            ),
        )

    @property
    def own_address(self) -> str:
        spec = self.spec
        return (
            f"http://{spec.data_host}:{spec.direct_port}{spec.mount_prefix}"
        )

    def _build_app(self) -> SoapHttpApp:
        spec = self.spec
        app = SoapHttpApp(metrics=self.metrics)
        app.mount(spec.mount_prefix, self.dispatcher)
        intro = Introspection(
            metrics=self.metrics, traces=self.traces, flight=self.flight,
            title=f"shard {spec.shard_id}",
        )
        intro.add_health_source(
            f"shard{spec.shard_id}", self.dispatcher.health_snapshot
        )
        intro.add_source(f"shard{spec.shard_id}", lambda: self.dispatcher.stats)
        if self.journal is not None:
            intro.add_deadletter_source(
                f"shard{spec.shard_id}", self.journal.deadletter_snapshot
            )
        intro.mount(app)
        return app

    def _data_listener(self):
        spec = self.spec
        if spec.accept_mode == "pass":
            if spec.pass_fd is None:
                raise ValueError("accept_mode='pass' requires pass_fd")
            channel = socket.socket(fileno=spec.pass_fd)
            return FdReceiverListener(
                channel, Endpoint(spec.data_host, spec.data_port)
            )
        return TcpListener(
            Endpoint(spec.data_host, spec.data_port), reuse_port=True
        )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ShardWorker":
        if self.spec.runtime == "aio":
            self._start_aio()
        else:
            self._start_threaded()
        return self

    def _start_threaded(self) -> None:
        from repro.shard.dispatcher import ShardedMsgDispatcher

        spec = self.spec
        client = HttpClient(TcpConnector(), metrics=self.metrics)
        self._clients.append(client)
        self.dispatcher = ShardedMsgDispatcher(
            self.registry, client, self.own_address,
            mount_prefix=spec.mount_prefix,
            config=self._dispatcher_config(),
            metrics=self.metrics, traces=self.traces, flight=self.flight,
            durable=self.journal, recover=True,
            shard_id=spec.shard_id, ring=self.ring, peers=spec.peers,
        )
        app = self._build_app()
        self._servers.append(
            HttpServer(
                self._data_listener(), app.handle_request,
                workers=spec.server_workers,
                name=f"shard{spec.shard_id}-data", metrics=self.metrics,
            ).start()
        )
        self._servers.append(
            HttpServer(
                TcpListener(Endpoint(spec.data_host, spec.direct_port)),
                app.handle_request, workers=spec.server_workers,
                name=f"shard{spec.shard_id}-direct", metrics=self.metrics,
            ).start()
        )

    def _start_aio(self) -> None:
        from repro.aio import AioHttpClient, AioHttpServer, AioLoopThread
        from repro.shard.dispatcher import AioShardedMsgDispatcher

        spec = self.spec
        self._loop_thread = AioLoopThread(
            name=f"shard{spec.shard_id}-loop"
        ).start()

        async def boot():
            client = AioHttpClient(metrics=self.metrics)
            self._clients.append(client)
            dispatcher = AioShardedMsgDispatcher(
                self.registry, client, self.own_address,
                mount_prefix=spec.mount_prefix,
                config=self._dispatcher_config(),
                metrics=self.metrics, traces=self.traces, flight=self.flight,
                durable=self.journal, recover=True,
                shard_id=spec.shard_id, ring=self.ring, peers=spec.peers,
            )
            self.dispatcher = dispatcher
            app = self._build_app()
            data_server = await AioHttpServer(
                app.handle_request, host=spec.data_host, port=spec.data_port,
                reuse_port=True, name=f"shard{spec.shard_id}-data",
                metrics=self.metrics,
            ).start()
            direct_server = await AioHttpServer(
                app.handle_request, host=spec.data_host,
                port=spec.direct_port,
                name=f"shard{spec.shard_id}-direct", metrics=self.metrics,
            ).start()
            return data_server, direct_server

        self._servers.extend(self._loop_thread.run(boot()))

    def stop(self, drain: bool = True, timeout: float = 5.0) -> None:
        if self.dispatcher is not None:
            self.dispatcher.stop(drain=drain, timeout=timeout)
        for server in self._servers:
            if self._loop_thread is not None:
                self._loop_thread.run(server.stop())
            else:
                server.stop()
        self._servers.clear()
        for client in self._clients:
            client.close()
        self._clients.clear()
        if self._loop_thread is not None:
            self._loop_thread.stop()
            self._loop_thread = None
        if self.journal is not None:
            self.journal.close()

    # -- supervisor protocol ------------------------------------------------
    def ready_line(self) -> str:
        return json.dumps(
            {
                "ready": True,
                "shard": self.spec.shard_id,
                "pid": os.getpid(),
                "runtime": self.spec.runtime,
                "direct_port": self.spec.direct_port,
                "recovered": (
                    self.dispatcher.counters.get("recovered")
                    if self.dispatcher is not None
                    else 0
                ),
            },
            sort_keys=True,
        )


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: python -m repro.shard.worker '<spec json>'",
              file=sys.stderr)
        return 2
    text = argv[0]
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            text = handle.read()
    spec = ShardSpec.from_json(text)

    stop_event = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop_event.set())
    signal.signal(signal.SIGINT, lambda *_: stop_event.set())

    worker = ShardWorker(spec).start()
    print(worker.ready_line(), flush=True)
    try:
        stop_event.wait()
    finally:
        worker.stop(drain=True, timeout=5.0)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

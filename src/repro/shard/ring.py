"""Consistent-hash ring: destination name -> owning shard.

Every process that routes messages — each worker and any relay decision
— must agree on which shard owns a logical destination, across restarts
and across Python invocations.  That rules out the builtin ``hash()``
(randomized per process by PYTHONHASHSEED); the ring hashes with
BLAKE2b, so ownership is a pure function of (shard count, replicas,
key).

Virtual nodes (``replicas`` points per shard) smooth the key
distribution, and consistent hashing keeps most assignments stable when
the shard count changes — only the keys on arcs claimed by new points
move, which is what makes a future resize replay only a fraction of the
journals.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable

__all__ = ["HashRing"]


def _point(data: str) -> int:
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Maps string keys to shard ids, identically in every process."""

    def __init__(self, shards: int | Iterable[int], replicas: int = 64) -> None:
        if isinstance(shards, int):
            shard_ids = list(range(shards))
        else:
            shard_ids = sorted(set(shards))
        if not shard_ids:
            raise ValueError("a ring needs at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.shard_ids = shard_ids
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard_id in shard_ids:
            for replica in range(replicas):
                points.append((_point(f"shard{shard_id}:{replica}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, key: str) -> int:
        """The shard id owning ``key`` (first ring point at or after it)."""
        index = bisect.bisect_left(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> Counter:
        """Shard id -> how many of ``keys`` it owns (balance diagnostics)."""
        counts: Counter = Counter()
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={self.shard_ids!r}, replicas={self.replicas})"
        )

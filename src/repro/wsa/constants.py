"""WS-Addressing namespace constants (2004/08 member submission)."""

#: The namespace of the August 2004 W3C member submission referenced by the
#: paper ("W3C member submission. web services addressing, August 2004").
WSA_NS = "http://schemas.xmlsoap.org/ws/2004/08/addressing"

#: The anonymous endpoint URI: "reply on the same connection" (SOAP-RPC
#: semantics) or "no addressable endpoint" — exactly the situation of the
#: firewalled clients the paper's WS-MsgBox serves.
WSA_ANONYMOUS = f"{WSA_NS}/role/anonymous"

#: Fault action URI used on dispatcher-generated fault messages.
WSA_FAULT_ACTION = f"{WSA_NS}/fault"

"""The WS-Addressing message-information header block.

:class:`AddressingHeaders` is the decoded view the dispatcher works with;
it converts to and from the list of SOAP header elements carried by an
:class:`~repro.soap.Envelope`.  Cardinality rules from the 2004/08 spec
are enforced: ``To``/``Action``/``MessageID`` at most once, ``RelatesTo``
may repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressingError
from repro.soap.envelope import Envelope
from repro.wsa.constants import WSA_NS
from repro.wsa.epr import EndpointReference
from repro.xmlmini import Element, QName

_Q_TO = QName(WSA_NS, "To")
_Q_ACTION = QName(WSA_NS, "Action")
_Q_MSGID = QName(WSA_NS, "MessageID")
_Q_RELATES = QName(WSA_NS, "RelatesTo")
_Q_FROM = QName(WSA_NS, "From")
_Q_REPLYTO = QName(WSA_NS, "ReplyTo")
_Q_FAULTTO = QName(WSA_NS, "FaultTo")

_SINGLETON_TEXT = {_Q_TO: "to", _Q_ACTION: "action", _Q_MSGID: "message_id"}
_EPR_FIELDS = {_Q_FROM: "from_", _Q_REPLYTO: "reply_to", _Q_FAULTTO: "fault_to"}


@dataclass
class AddressingHeaders:
    """Decoded WS-Addressing headers of one message."""

    to: str | None = None
    action: str | None = None
    message_id: str | None = None
    relates_to: list[str] = field(default_factory=list)
    from_: EndpointReference | None = None
    reply_to: EndpointReference | None = None
    fault_to: EndpointReference | None = None
    #: Reference-property headers echoed from an EPR (kept verbatim).
    reference_headers: list[Element] = field(default_factory=list)

    # -- envelope mapping -------------------------------------------------
    def to_header_elements(self) -> list[Element]:
        out: list[Element] = []
        if self.to is not None:
            out.append(Element(_Q_TO, text=self.to))
        if self.action is not None:
            out.append(Element(_Q_ACTION, text=self.action))
        if self.message_id is not None:
            out.append(Element(_Q_MSGID, text=self.message_id))
        for rel in self.relates_to:
            out.append(Element(_Q_RELATES, text=rel))
        if self.from_ is not None:
            out.append(self.from_.to_element(_Q_FROM))
        if self.reply_to is not None:
            out.append(self.reply_to.to_element(_Q_REPLYTO))
        if self.fault_to is not None:
            out.append(self.fault_to.to_element(_Q_FAULTTO))
        out.extend(h.copy() for h in self.reference_headers)
        return out

    def attach(self, envelope: Envelope) -> Envelope:
        """Replace the envelope's WSA headers with this block (in place)."""
        envelope.remove_headers(WSA_NS)
        envelope.headers.extend(self.to_header_elements())
        return envelope

    @classmethod
    def from_envelope(cls, envelope: Envelope) -> "AddressingHeaders":
        """Decode the WSA headers of an envelope (ignores other headers)."""
        hdr = cls()
        seen: set[QName] = set()
        for el in envelope.find_headers(WSA_NS):
            name = el.name
            if name in _SINGLETON_TEXT:
                if name in seen:
                    raise AddressingError(f"duplicate {name.clark()} header")
                seen.add(name)
                setattr(hdr, _SINGLETON_TEXT[name], el.text.strip())
            elif name == _Q_RELATES:
                hdr.relates_to.append(el.text.strip())
            elif name in _EPR_FIELDS:
                if name in seen:
                    raise AddressingError(f"duplicate {name.clark()} header")
                seen.add(name)
                setattr(hdr, _EPR_FIELDS[name], EndpointReference.from_element(el))
            else:
                raise AddressingError(f"unknown WS-Addressing header {name.clark()}")
        return hdr

    def require_to(self) -> str:
        if not self.to:
            raise AddressingError("message has no wsa:To header")
        return self.to

    def require_message_id(self) -> str:
        if not self.message_id:
            raise AddressingError("message has no wsa:MessageID header")
        return self.message_id

    def copy(self) -> "AddressingHeaders":
        return AddressingHeaders(
            to=self.to,
            action=self.action,
            message_id=self.message_id,
            relates_to=list(self.relates_to),
            from_=self.from_.copy() if self.from_ else None,
            reply_to=self.reply_to.copy() if self.reply_to else None,
            fault_to=self.fault_to.copy() if self.fault_to else None,
            reference_headers=[h.copy() for h in self.reference_headers],
        )

"""Endpoint references: an address URI plus opaque reference properties.

Reference properties are how the mailbox id rides along with the
WS-MsgBox endpoint address: the client's ReplyTo EPR carries
``<mb:MailboxId>`` as a reference property, which the dispatcher echoes as
headers on the reply message per the WS-Addressing binding rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AddressingError
from repro.wsa.constants import WSA_NS, WSA_ANONYMOUS
from repro.xmlmini import Element, QName


@dataclass
class EndpointReference:
    """A WS-Addressing endpoint reference (address + reference properties)."""

    address: str
    reference_properties: list[Element] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.address:
            raise AddressingError("EPR address must be non-empty")

    @property
    def is_anonymous(self) -> bool:
        return self.address == WSA_ANONYMOUS

    @classmethod
    def anonymous(cls) -> "EndpointReference":
        return cls(WSA_ANONYMOUS)

    # -- XML mapping -----------------------------------------------------
    def to_element(self, name: QName) -> Element:
        el = Element(name)
        el.add(Element(QName(WSA_NS, "Address"), text=self.address))
        if self.reference_properties:
            props = Element(QName(WSA_NS, "ReferenceProperties"))
            props.children.extend(p.copy() for p in self.reference_properties)
            el.children.append(props)
        return el

    @classmethod
    def from_element(cls, el: Element) -> "EndpointReference":
        addr_el = el.find(QName(WSA_NS, "Address"))
        if addr_el is None:
            raise AddressingError(
                f"EPR element <{el.name.clark()}> has no wsa:Address"
            )
        address = addr_el.text.strip()
        if not address:
            raise AddressingError("EPR wsa:Address is empty")
        props_el = el.find(QName(WSA_NS, "ReferenceProperties"))
        props = (
            [p.copy() for p in props_el.element_children()]
            if props_el is not None
            else []
        )
        return cls(address=address, reference_properties=props)

    def copy(self) -> "EndpointReference":
        return EndpointReference(
            self.address, [p.copy() for p in self.reference_properties]
        )

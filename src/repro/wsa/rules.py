"""Pure WS-Addressing rewrite rules used by the MSG-Dispatcher.

The paper (Fig. 3): CxThreads "map logical address with physical address
of the WS and parse the WS-Addressing message of the request to modify
client's information with MSG-Dispatcher's return address".  These
functions implement exactly that transformation, with no I/O, so the same
rules drive the threaded dispatcher, the simulated dispatcher, and the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressingError
from repro.soap.envelope import Envelope
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import AddressingHeaders


@dataclass
class RewriteResult:
    """Outcome of a forwarding rewrite.

    ``envelope`` is the rewritten message to send to ``physical_to``.
    ``original_reply_to`` is where the *client* wanted replies; the
    dispatcher records it keyed by ``message_id`` so the response, which
    will arrive with RelatesTo = message_id, can be routed back.
    """

    envelope: Envelope
    physical_to: str
    message_id: str
    original_reply_to: EndpointReference | None
    original_fault_to: EndpointReference | None


def rewrite_for_forwarding(
    envelope: Envelope,
    physical_to: str,
    dispatcher_address: str,
    passthrough_reply_prefixes: tuple[str, ...] = (),
) -> RewriteResult:
    """Rewrite an inbound client message for forwarding to the service.

    - ``wsa:To`` becomes the physical service address.
    - ``wsa:ReplyTo``/``wsa:FaultTo`` are replaced with the dispatcher's own
      address, so the (possibly firewalled) service only ever talks back to
      the dispatcher.
    - Exception: a ReplyTo whose address starts with one of
      ``passthrough_reply_prefixes`` is left untouched.  The dispatcher
      uses this for its own co-located WS-MsgBox — it *knows* that address
      is publicly reachable, so the service can "send response messages to
      the WS-MsgBox mailbox" directly (paper §4.3.2) without a relay hop.
    - The client's original reply/fault EPRs are returned to the caller for
      correlation state in both cases.

    The input envelope is not mutated.
    """
    headers = AddressingHeaders.from_envelope(envelope)
    message_id = headers.require_message_id()
    headers.require_to()

    original_reply_to = headers.reply_to
    original_fault_to = headers.fault_to

    out = envelope.copy()
    new_headers = headers.copy()
    new_headers.to = physical_to
    passthrough = original_reply_to is not None and any(
        original_reply_to.address.startswith(p) for p in passthrough_reply_prefixes
    )
    if not passthrough:
        new_headers.reply_to = EndpointReference(dispatcher_address)
        if original_fault_to is not None:
            new_headers.fault_to = EndpointReference(dispatcher_address)
    # Either way the original EPRs are returned for correlation: even a
    # passed-through ReplyTo needs it when an RPC-style service answers
    # in-band and the dispatcher must translate that reply (Table 1 q3).
    new_headers.attach(out)
    return RewriteResult(
        envelope=out,
        physical_to=physical_to,
        message_id=message_id,
        original_reply_to=original_reply_to,
        original_fault_to=original_fault_to,
    )


def make_reply_headers(
    request_headers: AddressingHeaders,
    reply_message_id: str,
    action_suffix: str = "Response",
) -> AddressingHeaders:
    """Build the header block for a reply to ``request_headers``.

    Per WS-Addressing: reply goes to ``ReplyTo`` (or anonymous), carries
    ``RelatesTo`` = the request's MessageID, and echoes the ReplyTo EPR's
    reference properties as headers.
    """
    if request_headers.message_id is None:
        raise AddressingError("cannot reply to a message without MessageID")
    target = request_headers.reply_to or EndpointReference.anonymous()
    action = None
    if request_headers.action:
        action = request_headers.action + action_suffix
    return AddressingHeaders(
        to=target.address,
        action=action,
        message_id=reply_message_id,
        relates_to=[request_headers.message_id],
        reference_headers=[p.copy() for p in target.reference_properties],
    )


def relates_to_of(envelope: Envelope) -> list[str]:
    """RelatesTo URIs of a message (correlation keys for responses)."""
    return AddressingHeaders.from_envelope(envelope).relates_to

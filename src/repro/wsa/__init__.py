"""WS-Addressing (August 2004 member submission, as used by the paper).

Provides endpoint references, the message-information header block
(To/From/ReplyTo/FaultTo/Action/MessageID/RelatesTo), attachment to and
extraction from SOAP envelopes, and the pure rewrite rules the
MSG-Dispatcher applies when forwarding (retarget ``To`` to the physical
address, point ``ReplyTo`` back at the dispatcher or at a mailbox).
"""

from repro.wsa.constants import WSA_NS, WSA_ANONYMOUS
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import AddressingHeaders
from repro.wsa.rules import (
    RewriteResult,
    rewrite_for_forwarding,
    make_reply_headers,
    relates_to_of,
)

__all__ = [
    "WSA_NS",
    "WSA_ANONYMOUS",
    "EndpointReference",
    "AddressingHeaders",
    "RewriteResult",
    "rewrite_for_forwarding",
    "make_reply_headers",
    "relates_to_of",
]

"""Conversation sessions: ordered, deduplicated multi-turn exchanges.

Header blocks (namespace ``urn:repro:conversation``):

- ``<cv:ConversationId>`` — groups messages into one conversation;
- ``<cv:Seq>`` — the sender's per-conversation sequence number (1-based).

A :class:`ConversationPeer` owns a mailbox (its inbox) and an HTTP client
(its outbox).  ``poll()`` drains the mailbox and feeds messages into
per-conversation reassembly buffers; ``Conversation.receive()`` returns
messages strictly in sequence order regardless of arrival order, dropping
duplicates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.msgbox.client import MsgBoxClient
from repro.reliable.holdretry import DuplicateFilter
from repro.rt.client import HttpClient
from repro.soap import Envelope
from repro.util.clock import Clock, MonotonicClock
from repro.util.ids import IdGenerator
from repro.wsa import AddressingHeaders, EndpointReference
from repro.xmlmini import Element, QName

CONVERSATION_NS = "urn:repro:conversation"
Q_CONVERSATION_ID = QName(CONVERSATION_NS, "ConversationId")
Q_SEQ = QName(CONVERSATION_NS, "Seq")


@dataclass
class ConversationMessage:
    """One in-order turn delivered to the application."""

    conversation_id: str
    seq: int
    envelope: Envelope
    sender: EndpointReference | None
    message_id: str | None


@dataclass
class _ConversationState:
    conversation_id: str
    next_send_seq: int = 1
    next_recv_seq: int = 1
    last_remote_message_id: str | None = None
    #: out-of-order arrivals waiting for their predecessors
    pending: dict[int, ConversationMessage] = field(default_factory=dict)
    #: in-order messages ready for receive()
    ready: list[ConversationMessage] = field(default_factory=list)
    remote: EndpointReference | None = None


class Conversation:
    """Application handle for one conversation."""

    def __init__(self, peer: "ConversationPeer", state: _ConversationState) -> None:
        self._peer = peer
        self._state = state

    @property
    def id(self) -> str:
        return self._state.conversation_id

    @property
    def remote(self) -> EndpointReference | None:
        """The other side's reply EPR, once a message has arrived."""
        return self._state.remote

    def send(self, body: Element, to: EndpointReference | None = None) -> str:
        """Send the next turn; returns its MessageID.

        ``to`` defaults to the last known remote EPR (required for the
        first turn of an outbound conversation).
        """
        target = to or self._state.remote
        if target is None:
            raise ReproError(
                f"conversation {self.id}: no destination known yet — pass `to`"
            )
        message_id = self._peer._send_turn(self._state, body, target)
        if self._state.remote is None:
            self._state.remote = target  # remember the first destination
        return message_id

    def receive(self, timeout: float = 5.0, poll_interval: float = 0.05
                ) -> ConversationMessage:
        """Next in-order message; polls the mailbox until it arrives.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        """
        deadline = self._peer.clock.now() + timeout
        while True:
            with self._peer._lock:
                if self._state.ready:
                    return self._state.ready.pop(0)
            if self._peer.clock.now() >= deadline:
                raise TimeoutError(
                    f"conversation {self.id}: no message within {timeout}s"
                )
            self._peer.poll()
            self._peer.clock.sleep(poll_interval)

    def pending_out_of_order(self) -> int:
        with self._peer._lock:
            return len(self._state.pending)


class ConversationPeer:
    """A firewalled peer: mailbox inbox + outbound-HTTP outbox.

    ``mailbox`` must already be created (``MsgBoxClient.create()``); its
    EPR is advertised as ReplyTo on every outgoing turn.
    """

    def __init__(
        self,
        name: str,
        http: HttpClient,
        mailbox: MsgBoxClient,
        clock: Clock | None = None,
        dedup_window: float = 600.0,
    ) -> None:
        self.name = name
        self.http = http
        self.mailbox = mailbox
        self.clock = clock or MonotonicClock()
        self.ids = IdGenerator(f"cv-{name}")
        self._dedup = DuplicateFilter(window=dedup_window, clock=self.clock)
        self._conversations: dict[str, _ConversationState] = {}
        self._lock = threading.Lock()
        self.duplicates_dropped = 0

    # -- conversation management -----------------------------------------
    def start(self, conversation_id: str | None = None) -> Conversation:
        """Open a new outbound conversation."""
        cid = conversation_id or self.ids.next()
        with self._lock:
            if cid in self._conversations:
                raise ReproError(f"conversation {cid!r} already exists")
            state = _ConversationState(cid)
            self._conversations[cid] = state
        return Conversation(self, state)

    def conversation(self, conversation_id: str) -> Conversation:
        """Handle for a conversation (created on first sight if unknown)."""
        with self._lock:
            state = self._conversations.get(conversation_id)
            if state is None:
                state = _ConversationState(conversation_id)
                self._conversations[conversation_id] = state
        return Conversation(self, state)

    def conversations(self) -> list[str]:
        with self._lock:
            return sorted(self._conversations)

    # -- outbound ------------------------------------------------------------
    def _send_turn(
        self,
        state: _ConversationState,
        body: Element,
        target: EndpointReference,
    ) -> str:
        envelope = Envelope(body.copy())
        message_id = self.ids.next()
        with self._lock:
            seq = state.next_send_seq
            state.next_send_seq += 1
            relates = state.last_remote_message_id
        headers = AddressingHeaders(
            to=target.address,
            action=f"{CONVERSATION_NS}/turn",
            message_id=message_id,
            relates_to=[relates] if relates else [],
            reply_to=self.mailbox.epr(),
            reference_headers=[p.copy() for p in target.reference_properties],
        )
        headers.attach(envelope)
        envelope.headers.append(Element(Q_CONVERSATION_ID, text=state.conversation_id))
        envelope.headers.append(Element(Q_SEQ, text=str(seq)))
        response = self.http.post_envelope(target.address, envelope)
        if response.status >= 400:
            raise ReproError(
                f"conversation {state.conversation_id}: turn rejected "
                f"with HTTP {response.status}"
            )
        return message_id

    # -- inbound --------------------------------------------------------------
    def poll(self, max_messages: int = 32) -> int:
        """Drain the mailbox into conversation buffers; returns intake count."""
        envelopes = self.mailbox.take(max_messages=max_messages)
        accepted = 0
        for envelope in envelopes:
            if self._accept(envelope):
                accepted += 1
        return accepted

    def _accept(self, envelope: Envelope) -> bool:
        headers = AddressingHeaders.from_envelope(envelope)
        cid_el = envelope.find_header(Q_CONVERSATION_ID)
        seq_el = envelope.find_header(Q_SEQ)
        if cid_el is None or seq_el is None:
            return False  # not conversation traffic; ignore
        try:
            seq = int(seq_el.text.strip())
        except ValueError:
            return False
        if headers.message_id and self._dedup.seen(headers.message_id):
            with self._lock:
                self.duplicates_dropped += 1
            return False

        cid = cid_el.text.strip()
        message = ConversationMessage(
            conversation_id=cid,
            seq=seq,
            envelope=envelope,
            sender=headers.reply_to,
            message_id=headers.message_id,
        )
        with self._lock:
            state = self._conversations.get(cid)
            if state is None:
                state = _ConversationState(cid)
                self._conversations[cid] = state
            if headers.reply_to is not None and not headers.reply_to.is_anonymous:
                state.remote = headers.reply_to
            if headers.message_id:
                state.last_remote_message_id = headers.message_id
            if seq < state.next_recv_seq or seq in state.pending:
                self.duplicates_dropped += 1
                return False  # stale retransmission
            state.pending[seq] = message
            while state.next_recv_seq in state.pending:
                state.ready.append(state.pending.pop(state.next_recv_seq))
                state.next_recv_seq += 1
        return True

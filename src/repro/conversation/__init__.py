"""Long-running conversations over one-way messages (the paper's goal).

The paper's abstract promises "reliable and long running conversations
through firewalls between Web Service peers that have no accessible
network endpoints".  The substrate below (WS-MsgBox + WS-Addressing)
makes individual one-way messages possible; this package adds the
*conversation* semantics on top:

- a **conversation id** header groups messages into one logical exchange;
- per-conversation **sequence numbers** give total order — out-of-order
  arrivals (mailbox polling is batchy) are buffered and released in order;
- **duplicate suppression** by MessageID makes at-least-once transports
  (hold/retry redelivery) look effectively-once;
- `RelatesTo` chains each turn to the previous one.

See ``examples/firewalled_peers.py`` for the hand-rolled version of this
pattern and :class:`ConversationPeer` for the packaged one.
"""

from repro.conversation.session import (
    CONVERSATION_NS,
    Conversation,
    ConversationPeer,
    ConversationMessage,
)

__all__ = [
    "CONVERSATION_NS",
    "Conversation",
    "ConversationPeer",
    "ConversationMessage",
]

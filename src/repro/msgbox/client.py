"""Client-side helper for WS-MsgBox (Fig. 2 choreography).

Wraps the RPC operations and provides the poll loop a firewalled client
runs: create a mailbox once, use its EPR as ``wsa:ReplyTo`` on outgoing
requests, then ``poll`` until the expected responses arrive.
"""

from __future__ import annotations

import base64

from repro.errors import MailboxError, SoapFaultError
from repro.msgbox.service import MSGBOX_NS, make_mailbox_epr
from repro.rt.client import HttpClient
from repro.soap import (
    Envelope,
    RpcRequest,
    build_rpc_request,
    parse_rpc_response,
)
from repro.util.clock import Clock, MonotonicClock
from repro.wsa import EndpointReference


class MsgBoxClient:
    """Talks RPC to a WS-MsgBox service endpoint."""

    def __init__(
        self,
        http: HttpClient,
        service_url: str,
        clock: Clock | None = None,
    ) -> None:
        self.http = http
        self.service_url = service_url
        self.clock = clock or MonotonicClock()
        self.mailbox_id: str | None = None
        self.owner_token: str | None = None

    # -- lifecycle ----------------------------------------------------------
    def create(self) -> str:
        """Create a mailbox; remembers id and owner token."""
        reply = self._call("create", [])
        mailbox_id = reply.result("mailboxId")
        if not mailbox_id:
            raise MailboxError("create returned no mailboxId")
        self.mailbox_id = mailbox_id
        self.owner_token = reply.result("ownerToken")
        return mailbox_id

    def destroy(self) -> None:
        self._call("destroy", self._auth_params())
        self.mailbox_id = None
        self.owner_token = None

    def epr(self) -> EndpointReference:
        """The EPR to advertise as ReplyTo (address + MailboxId property)."""
        if self.mailbox_id is None:
            raise MailboxError("create() a mailbox first")
        return make_mailbox_epr(self.service_url, self.mailbox_id)

    # -- message retrieval -------------------------------------------------
    def peek(self) -> int:
        reply = self._call("peek", self._auth_params())
        return int(reply.result("count") or "0")

    def take(self, max_messages: int = 10, wait: float = 0.0) -> list[Envelope]:
        """Take up to ``max_messages``; ``wait > 0`` long-polls server-side."""
        params = self._auth_params() + [("maxMessages", str(max_messages))]
        if wait > 0:
            params.append(("waitSeconds", f"{wait:.3f}"))
        reply = self._call("take", params)
        out: list[Envelope] = []
        for name, value in reply.results:
            if name == "message":
                out.append(Envelope.from_bytes(base64.b64decode(value)))
        return out

    def poll(
        self,
        expected: int = 1,
        timeout: float = 5.0,
        interval: float = 0.05,
    ) -> list[Envelope]:
        """Poll until ``expected`` messages arrive or ``timeout`` elapses."""
        deadline = self.clock.now() + timeout
        received: list[Envelope] = []
        while len(received) < expected:
            received.extend(self.take(max_messages=expected - len(received)))
            if len(received) >= expected:
                break
            if self.clock.now() >= deadline:
                break
            self.clock.sleep(interval)
        return received

    # -- plumbing ----------------------------------------------------------
    def _auth_params(self) -> list[tuple[str, str]]:
        if self.mailbox_id is None:
            raise MailboxError("create() a mailbox first")
        params = [("mailboxId", self.mailbox_id)]
        if self.owner_token:
            params.append(("ownerToken", self.owner_token))
        return params

    def _call(self, op: str, params: list[tuple[str, str]]):
        envelope = build_rpc_request(RpcRequest(MSGBOX_NS, op, params))
        reply = self.http.call_soap(self.service_url, envelope)
        if reply is None:
            raise MailboxError(f"WS-MsgBox {op} returned no response")
        try:
            return parse_rpc_response(reply)
        except SoapFaultError as exc:
            raise MailboxError(f"WS-MsgBox {op} failed: {exc.reason}") from exc

"""Mailbox storage: bounded per-mailbox FIFO with message expiry.

The paper's WS-MsgBox held messages in memory until the client fetched
them and freed "memory space in the WS-MsgBox service implementation" on
destroy.  This store adds the quotas the original lacked (per-mailbox
message/byte limits, global mailbox limit) because unbounded buffering is
exactly what made the original fragile.  Passing ``durable=`` a
:class:`~repro.store.MessageJournal` additionally journals every deposit
before it is acknowledged and marks it on take, so a crash loses no
undelivered mailbox contents — :meth:`MailboxStore.recover` rebuilds the
mailboxes from the journal.
"""

from __future__ import annotations

import collections
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import MailboxNotFound, MailboxQuotaExceeded
from repro.store.journal import ABSORBED, DEAD, DELIVERED
from repro.util.clock import Clock, MonotonicClock
from repro.util.ids import IdGenerator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.store import MessageJournal


@dataclass
class StoredMessage:
    """One deposited message (opaque envelope bytes + bookkeeping)."""

    data: bytes
    deposited_at: float
    expires_at: float | None = None
    #: sequence number in the durable journal, when there is one
    journal_seq: int | None = None


@dataclass
class _Waiter:
    """Handle for one registered long-poll arrival callback."""

    mailbox_id: str
    callback: Callable[[], None]


@dataclass
class _Mailbox:
    mailbox_id: str
    created_at: float
    messages: collections.deque[StoredMessage] = field(
        default_factory=collections.deque
    )
    bytes_used: int = 0
    deposits: int = 0
    takes: int = 0


class MailboxStore:
    """Thread-safe mailbox table."""

    def __init__(
        self,
        max_mailboxes: int = 10_000,
        max_messages_per_box: int = 1_000,
        max_bytes_per_box: int = 8 * 1024 * 1024,
        message_ttl: float | None = None,
        clock: Clock | None = None,
        ids: IdGenerator | None = None,
        durable: "MessageJournal | None" = None,
    ) -> None:
        self.max_mailboxes = max_mailboxes
        self.max_messages_per_box = max_messages_per_box
        self.max_bytes_per_box = max_bytes_per_box
        self.message_ttl = message_ttl
        self.clock = clock or MonotonicClock()
        self._ids = ids or IdGenerator("mb")
        self.durable = durable
        self._boxes: dict[str, _Mailbox] = {}
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)
        #: one-shot long-poll waiters keyed by mailbox id.  Each callback
        #: fires (outside the lock) at most once, on the next deposit,
        #: recovery restore, or destroy of that mailbox — the asyncio
        #: runtime parks a loop wakeup here instead of blocking a thread
        #: in :meth:`wait_for_message`.
        self._waiters: dict[str, list[_Waiter]] = {}

    # -- long-poll waiters -------------------------------------------------
    def add_arrival_waiter(
        self, mailbox_id: str, callback: Callable[[], None]
    ) -> object:
        """Register a one-shot callback for the next event on a mailbox.

        The callback fires after the next :meth:`deposit`, :meth:`recover`
        restore, or :meth:`destroy` touching ``mailbox_id`` — it signals
        "look again", not "a message is yours" (another taker may win the
        race, and destroy wakes waiters so they can observe
        :class:`~repro.errors.MailboxNotFound`).  Callbacks run outside
        the store lock on the depositor's thread and must not block;
        thread-hopping (``loop.call_soon_threadsafe``) is the caller's
        job.  Returns a handle for :meth:`remove_arrival_waiter`.
        """
        handle = _Waiter(mailbox_id, callback)
        with self._lock:
            self._waiters.setdefault(mailbox_id, []).append(handle)
        return handle

    def remove_arrival_waiter(self, handle: object) -> None:
        """Deregister a waiter (idempotent — fired waiters are gone)."""
        if not isinstance(handle, _Waiter):
            return
        with self._lock:
            bucket = self._waiters.get(handle.mailbox_id)
            if bucket is None:
                return
            try:
                bucket.remove(handle)
            except ValueError:
                return
            if not bucket:
                del self._waiters[handle.mailbox_id]

    def _pop_waiters(self, mailbox_id: str) -> list["_Waiter"]:
        """Under the lock: detach every waiter for a mailbox."""
        return self._waiters.pop(mailbox_id, [])

    @staticmethod
    def _fire_waiters(waiters: list["_Waiter"]) -> None:
        """Outside the lock: invoke detached waiters, swallowing errors."""
        for waiter in waiters:
            try:
                waiter.callback()
            except Exception:  # noqa: BLE001 - a dead waiter can't block deposits
                pass

    # -- lifecycle (Fig. 2: steps 1 and 4) -------------------------------
    def create(self) -> str:
        """Create a mailbox; returns its unguessable id."""
        with self._lock:
            if len(self._boxes) >= self.max_mailboxes:
                raise MailboxQuotaExceeded(
                    f"mailbox limit {self.max_mailboxes} reached"
                )
            mailbox_id = self._ids.next_token(128)
            self._boxes[mailbox_id] = _Mailbox(mailbox_id, self.clock.now())
            return mailbox_id

    def destroy(self, mailbox_id: str) -> None:
        with self._lock:
            box = self._boxes.pop(mailbox_id, None)
            if box is None:
                raise MailboxNotFound(mailbox_id)
            remaining = list(box.messages)
            waiters = self._pop_waiters(mailbox_id)
        # wake long-pollers so they observe MailboxNotFound promptly
        self._fire_waiters(waiters)
        if self.durable is not None:
            # the client chose to discard what was left; retire the
            # records so recovery does not resurrect a destroyed mailbox
            for msg in remaining:
                if msg.journal_seq is not None:
                    self.durable.mark(
                        msg.journal_seq, ABSORBED, reason="mailbox_destroyed"
                    )

    def exists(self, mailbox_id: str) -> bool:
        with self._lock:
            return mailbox_id in self._boxes

    # -- deposit / take (Fig. 2: steps 2 and 3) -----------------------------
    def deposit(self, mailbox_id: str, data: bytes) -> None:
        now = self.clock.now()
        jseq: int | None = None
        if self.durable is not None:
            # journal before ack (and before the quota checks — a rejected
            # deposit is retired below, an accepted one survives a crash)
            jseq = self.durable.append(
                None, mailbox_id, data, kind="mailbox",
                expires_at=(
                    self.durable.wall_now() + self.message_ttl
                    if self.message_ttl
                    else None
                ),
            )
        try:
            with self._lock:
                box = self._boxes.get(mailbox_id)
                if box is None:
                    raise MailboxNotFound(mailbox_id)
                self._expire(box, now)
                if len(box.messages) >= self.max_messages_per_box:
                    raise MailboxQuotaExceeded(
                        f"mailbox {mailbox_id[:8]}… message quota exceeded"
                    )
                if box.bytes_used + len(data) > self.max_bytes_per_box:
                    raise MailboxQuotaExceeded(
                        f"mailbox {mailbox_id[:8]}… byte quota exceeded"
                    )
                expires = now + self.message_ttl if self.message_ttl else None
                box.messages.append(
                    StoredMessage(data, now, expires, journal_seq=jseq)
                )
                box.bytes_used += len(data)
                box.deposits += 1
                self._arrival.notify_all()
                waiters = self._pop_waiters(mailbox_id)
        except (MailboxNotFound, MailboxQuotaExceeded):
            if jseq is not None:
                self.durable.mark(jseq, ABSORBED, reason="rejected")
            raise
        self._fire_waiters(waiters)

    def take(self, mailbox_id: str, max_messages: int = 10) -> list[bytes]:
        """Remove and return up to ``max_messages`` oldest messages."""
        if max_messages <= 0:
            raise ValueError("max_messages must be positive")
        now = self.clock.now()
        with self._lock:
            box = self._boxes.get(mailbox_id)
            if box is None:
                raise MailboxNotFound(mailbox_id)
            self._expire(box, now)
            out: list[bytes] = []
            taken_seqs: list[int] = []
            while box.messages and len(out) < max_messages:
                msg = box.messages.popleft()
                box.bytes_used -= len(msg.data)
                if msg.journal_seq is not None:
                    taken_seqs.append(msg.journal_seq)
                out.append(msg.data)
            box.takes += 1
        if self.durable is not None:
            for seq in taken_seqs:
                self.durable.mark(seq, DELIVERED)
        return out

    def wait_for_message(self, mailbox_id: str, timeout: float) -> bool:
        """Block until the mailbox has a message (long-poll support).

        Returns True when at least one message is present, False on
        timeout.  Raises :class:`~repro.errors.MailboxNotFound` if the
        mailbox does not exist (checked before and after the wait — a
        destroy during the wait wakes nothing, so the timeout covers it).
        """
        deadline = self.clock.now() + timeout
        with self._arrival:
            while True:
                box = self._boxes.get(mailbox_id)
                if box is None:
                    raise MailboxNotFound(mailbox_id)
                self._expire(box, self.clock.now())
                if box.messages:
                    return True
                remaining = deadline - self.clock.now()
                if remaining <= 0:
                    return False
                self._arrival.wait(min(remaining, 0.25))

    def peek_count(self, mailbox_id: str) -> int:
        with self._lock:
            box = self._boxes.get(mailbox_id)
            if box is None:
                raise MailboxNotFound(mailbox_id)
            self._expire(box, self.clock.now())
            return len(box.messages)

    def _expire(self, box: _Mailbox, now: float) -> None:
        while box.messages:
            head = box.messages[0]
            if head.expires_at is None or head.expires_at > now:
                break
            box.messages.popleft()
            box.bytes_used -= len(head.data)
            if self.durable is not None and head.journal_seq is not None:
                self.durable.mark(head.journal_seq, DEAD, reason="expired")

    # -- crash recovery ----------------------------------------------------
    def recover(self) -> int:
        """Rebuild mailboxes and their undelivered contents from the
        journal (idempotent: already-present records are skipped).

        Mailboxes are recreated under their original ids — a client
        holding a pre-crash mailbox address keeps polling the same URL.
        Wall-clock expiry deadlines on disk are converted back onto this
        store's clock; already-expired messages are dead-lettered.
        Returns the number of messages restored.
        """
        if self.durable is None:
            return 0
        wall = self.durable.wall_now()
        now = self.clock.now()
        restored = 0
        for rec in self.durable.undelivered(kind="mailbox"):
            expires: float | None = None
            if rec.expires_at is not None:
                remaining = rec.expires_at - wall
                if remaining <= 0:
                    self.durable.mark(rec.seq, DEAD, reason="expired")
                    continue
                expires = now + remaining
            with self._lock:
                box = self._boxes.get(rec.target)
                if box is None:
                    box = _Mailbox(rec.target, now)
                    self._boxes[rec.target] = box
                if any(m.journal_seq == rec.seq for m in box.messages):
                    continue
                box.messages.append(
                    StoredMessage(rec.body, now, expires, journal_seq=rec.seq)
                )
                box.bytes_used += len(rec.body)
                self._arrival.notify_all()
                waiters = self._pop_waiters(rec.target)
            self._fire_waiters(waiters)
            restored += 1
        return restored

    # -- introspection -----------------------------------------------------
    def mailbox_count(self) -> int:
        with self._lock:
            return len(self._boxes)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(b.bytes_used for b in self._boxes.values())

    def stats(self, mailbox_id: str) -> dict[str, int]:
        with self._lock:
            box = self._boxes.get(mailbox_id)
            if box is None:
                raise MailboxNotFound(mailbox_id)
            return {
                "pending": len(box.messages),
                "bytes": box.bytes_used,
                "deposits": box.deposits,
                "takes": box.takes,
            }

"""The WS-MsgBox SOAP service.

Two kinds of traffic arrive here:

- **RPC operations** from mailbox owners (interface ``urn:repro:msgbox``):
  ``create``, ``take``, ``peek``, ``destroy``.  "All interactions between
  clients and the WS-MsgBox are RPC, because RPC is typically well
  supported from a client behind firewalls."
- **Deposits**: one-way messages routed to a mailbox EPR.  The mailbox id
  arrives either as the ``<mb:MailboxId>`` header (the EPR reference
  property echoed by the dispatcher) or as the last path segment of the
  deposit URL.  Deposits are stored verbatim and answered 202.

The paper's scalability bug is reproduced behind ``delivery_mode``:

    "The WSMB was spawning too many threads.  For even relatively small
    numbers of connecting clients (50), if the number of messages sent is
    high then WS-MsgBox server creates a new thread for each message and
    each thread tries to send a reply message. ... That leads to
    OutOfMemoryExceptions as each thread has local stack allocated."

``delivery_mode="thread-per-message"`` spawns an unbounded thread per
deposit acknowledgement and charges each live thread a simulated stack
allocation against a simulated heap; crossing the heap limit raises a
simulated ``OutOfMemoryError`` that kills the service, exactly like the
JVM did.  ``delivery_mode="pooled"`` (the re-design the paper says they
were working on) uses a bounded pool with load-shedding instead.
"""

from __future__ import annotations

import base64
import logging
import threading
from typing import Callable

from repro.errors import MailboxError, MailboxNotFound, SoapError
from repro.msgbox.security import MailboxSecurity
from repro.msgbox.store import MailboxStore
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import TraceStore, default_trace_store, extract_trace
from repro.rt.service import RequestContext
from repro.util.clock import Clock, MonotonicClock
from repro.soap import (
    Envelope,
    RpcResponse,
    build_rpc_response,
    parse_rpc_request,
)
from repro.util.concurrency import BoundedExecutor, RejectedExecution
from repro.util.stats import Counter
from repro.wsa import EndpointReference
from repro.xmlmini import Element, QName

MSGBOX_NS = "urn:repro:msgbox"
Q_MAILBOX_ID = QName(MSGBOX_NS, "MailboxId")


class SimulatedOutOfMemory(MailboxError):
    """The modelled JVM heap was exhausted by per-message thread stacks."""


def make_mailbox_epr(service_url: str, mailbox_id: str) -> EndpointReference:
    """EPR a client uses as ReplyTo: deposit URL + MailboxId ref property."""
    address = service_url.rstrip("/") + "/deposit/" + mailbox_id
    prop = Element(Q_MAILBOX_ID, text=mailbox_id)
    return EndpointReference(address, reference_properties=[prop])


class MsgBoxService:
    """SOAP facade over :class:`~repro.msgbox.store.MailboxStore`."""

    def __init__(
        self,
        store: MailboxStore | None = None,
        security: MailboxSecurity | None = None,
        base_url: str = "",
        delivery_mode: str = "pooled",
        ack_sender: Callable[[bytes], None] | None = None,
        ack_workers: int = 8,
        heap_limit_bytes: int = 64 * 1024 * 1024,
        thread_stack_bytes: int = 512 * 1024,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        traces: TraceStore | None = None,
    ) -> None:
        """``clock`` sets the timebase of recorded trace spans — pass the
        deployment's shared clock (sim clock under simnet) so a trace's
        spans stay in one clock domain."""
        if delivery_mode not in ("pooled", "thread-per-message", "none"):
            raise ValueError(f"unknown delivery_mode {delivery_mode!r}")
        self.store = store or MailboxStore()
        self.clock = clock or MonotonicClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else default_trace_store()
        self._log = component_logger("msgbox")
        self._m_deposits = self.metrics.counter(
            "msgbox_deposits_total", "one-way messages deposited into mailboxes"
        )
        self._m_takes = self.metrics.counter(
            "msgbox_takes_total", "take operations served"
        )
        self._m_taken = self.metrics.counter(
            "msgbox_messages_taken_total", "messages handed to polling owners"
        )
        self.metrics.gauge(
            "msgbox_mailboxes", "live mailboxes in the store"
        ).set_function(lambda: self.store.mailbox_count())
        self.security = security
        self.base_url = base_url
        self.delivery_mode = delivery_mode
        self.ack_sender = ack_sender
        #: cap on the ``waitSeconds`` long-poll parameter (a held request
        #: occupies a server worker; keep it below HTTP timeouts)
        self.max_wait_seconds = 20.0
        self.heap_limit_bytes = heap_limit_bytes
        self.thread_stack_bytes = thread_stack_bytes
        self.counters = Counter()
        self._dead_reason: str | None = None
        self._lock = threading.Lock()
        self._ack_pool: BoundedExecutor | None = None
        if ack_sender is not None and delivery_mode != "none":
            policy = (
                "unbounded" if delivery_mode == "thread-per-message" else "reject"
            )
            self._ack_pool = BoundedExecutor(
                workers=0 if policy == "unbounded" else ack_workers,
                queue_size=0 if policy == "unbounded" else ack_workers * 4,
                policy=policy,
                name="msgbox-ack",
            )

    # -- failure state (the reproduced bug) -----------------------------
    @property
    def dead(self) -> bool:
        with self._lock:
            return self._dead_reason is not None

    def _check_alive(self) -> None:
        with self._lock:
            if self._dead_reason is not None:
                raise MailboxError(
                    f"WS-MsgBox crashed: {self._dead_reason} "
                    "(restart the service)"
                )

    def _charge_thread_memory(self) -> None:
        """Model the JVM: every live ack thread owns a stack allocation."""
        assert self._ack_pool is not None
        live = self._ack_pool.live_threads()
        used = live * self.thread_stack_bytes
        if used > self.heap_limit_bytes:
            with self._lock:
                if self._dead_reason is None:
                    self._dead_reason = (
                        f"OutOfMemoryError: {live} delivery threads x "
                        f"{self.thread_stack_bytes}B stack > heap "
                        f"{self.heap_limit_bytes}B"
                    )
            self.counters.inc("oom_crashes")
            raise SimulatedOutOfMemory(self._dead_reason or "OOM")

    # -- SoapService entry point ----------------------------------------
    def handle(self, envelope: Envelope, ctx: RequestContext) -> Envelope | None:
        self._check_alive()
        body = envelope.body
        if body is not None and body.name.ns == MSGBOX_NS:
            return self._handle_rpc(envelope, ctx)
        return self._handle_deposit(envelope, ctx)

    def _wait_for_message(self, mailbox_id: str, timeout: float) -> bool:
        """Long-poll wait seam.  The threaded service blocks its worker
        thread here; the asyncio subclass has already awaited the arrival
        before the take runs and overrides this with a no-op."""
        return self.store.wait_for_message(mailbox_id, timeout)

    # -- RPC operations (create/take/peek/destroy) ------------------------
    def _handle_rpc(self, envelope: Envelope, ctx: RequestContext) -> Envelope:
        call = parse_rpc_request(envelope)
        op = call.operation
        if op == "create":
            mailbox_id = self.store.create()
            self.counters.inc("creates")
            results = [("mailboxId", mailbox_id)]
            if self.security is not None and self.security.enabled:
                results.append(("ownerToken", self.security.mint(mailbox_id)))
            if self.base_url:
                results.append(
                    ("depositAddress", make_mailbox_epr(self.base_url, mailbox_id).address)
                )
        elif op in ("take", "peek", "destroy"):
            mailbox_id = call.require_param("mailboxId")
            if self.security is not None:
                self.security.check(mailbox_id, call.param("ownerToken"))
            if op == "take":
                limit = int(call.param("maxMessages", "10") or "10")
                # long poll: hold the request until a message arrives (or
                # the wait budget runs out) instead of returning empty —
                # saves the firewalled client a storm of empty polls
                wait_s = float(call.param("waitSeconds", "0") or "0")
                if wait_s > 0:
                    self._wait_for_message(
                        mailbox_id, min(wait_s, self.max_wait_seconds)
                    )
                messages = self.store.take(mailbox_id, max_messages=limit)
                self.counters.inc("takes")
                self.counters.inc("messages_taken", len(messages))
                self._m_takes.inc()
                self._m_taken.inc(len(messages))
                log_event(
                    self._log, logging.DEBUG, "take",
                    mailbox=mailbox_id, messages=len(messages),
                )
                results = [
                    ("message", base64.b64encode(m).decode("ascii"))
                    for m in messages
                ]
                results.append(("remaining", str(self.store.peek_count(mailbox_id))))
            elif op == "peek":
                results = [("count", str(self.store.peek_count(mailbox_id)))]
            else:
                self.store.destroy(mailbox_id)
                self.counters.inc("destroys")
                results = [("status", "ok")]
        else:
            raise SoapError(f"unknown WS-MsgBox operation {op!r}")
        return build_rpc_response(
            RpcResponse(MSGBOX_NS, op, results), version=envelope.version
        )

    # -- deposits -----------------------------------------------------------
    def _handle_deposit(self, envelope: Envelope, ctx: RequestContext) -> None:
        t_arrival = self.clock.now()
        mailbox_id = self._extract_mailbox_id(envelope, ctx)
        if mailbox_id is None:
            raise MailboxNotFound(
                "deposit carries no MailboxId header and no id in path"
            )
        data = envelope.to_bytes()
        self.store.deposit(mailbox_id, data)
        self.counters.inc("deposits")
        self._m_deposits.inc()
        trace = extract_trace(envelope)
        if trace is not None:
            self.traces.record(
                trace.trace_id, "deposit", "msgbox",
                t_arrival, self.clock.now(),
                parent_id=trace.parent_span_id, mailbox=mailbox_id,
            )
        log_event(
            self._log, logging.DEBUG, "deposit",
            trace=trace.trace_id if trace else None, mailbox=mailbox_id,
        )
        self._send_ack(data)
        return None

    @staticmethod
    def _extract_mailbox_id(envelope: Envelope, ctx: RequestContext) -> str | None:
        for h in envelope.headers:
            if h.name == Q_MAILBOX_ID:
                return h.text.strip()
        marker = "/deposit/"
        idx = ctx.path.find(marker)
        if idx >= 0:
            tail = ctx.path[idx + len(marker):]
            if tail:
                return tail.split("/", 1)[0]
        return None

    def _send_ack(self, deposited: bytes) -> None:
        """Dispatch the acknowledgement per the configured delivery mode."""
        if self.ack_sender is None or self._ack_pool is None:
            return
        sender = self.ack_sender

        def task() -> None:
            try:
                sender(deposited)
                self.counters.inc("acks_sent")
            except Exception:  # noqa: BLE001 - ack failures are counted
                self.counters.inc("acks_failed")

        if self.delivery_mode == "thread-per-message":
            self._ack_pool.submit(task)
            self._charge_thread_memory()
        else:
            try:
                self._ack_pool.submit(task)
            except RejectedExecution:
                self.counters.inc("acks_shed")  # graceful load shedding

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        out = self.counters.as_dict()
        if self._ack_pool is not None:
            out["ack_peak_threads"] = self._ack_pool.peak_threads
        return out

"""Mailbox owner tokens (paper future work §4.4).

"We also plan to add security to WS-MsgBox: currently the message box has
unique hard to guess address but that is the only protection."

Scheme: on create, the service mints an owner token = HMAC-SHA256 of the
mailbox id under a service-private secret.  ``take``/``destroy`` (the
operations that affect the owner) must present the token; ``deposit``
stays open, since anyone may send you mail — the unguessable id already
gates deposits.  Tokens are stateless: verification recomputes the HMAC,
so the store needs no extra per-mailbox state.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import MailboxAuthError


class MailboxSecurity:
    """Stateless owner-token mint/verify for mailbox operations."""

    def __init__(self, secret: bytes, enabled: bool = True) -> None:
        if not secret:
            raise ValueError("secret must be non-empty")
        self._secret = secret
        self.enabled = enabled

    def mint(self, mailbox_id: str) -> str:
        return hmac.new(
            self._secret, mailbox_id.encode(), hashlib.sha256
        ).hexdigest()

    def check(self, mailbox_id: str, token: str | None) -> None:
        """Raise :class:`~repro.errors.MailboxAuthError` on a bad token.

        No-op when security is disabled (the paper's original posture).
        """
        if not self.enabled:
            return
        if not token:
            raise MailboxAuthError("owner token required")
        if not hmac.compare_digest(self.mint(mailbox_id), token):
            raise MailboxAuthError("owner token invalid")

"""WS-MsgBox: the post-office mailbox service (paper §3, Fig. 2).

A Web Service client with no accessible network endpoint (applet, NATed
host) creates a mailbox, hands out the mailbox EPR as its
``wsa:ReplyTo``, and later *polls* the mailbox over plain RPC — which
always works outbound through firewalls.  Lifecycle: create (1) →
messages deposited (2) → client takes messages (3) → destroy (4).

Modules: :mod:`~repro.msgbox.store` (bounded storage with expiry),
:mod:`~repro.msgbox.security` (owner tokens — the paper's future work;
the original relied only on unguessable addresses),
:mod:`~repro.msgbox.service` (the SOAP facade, including the paper's
thread-per-message delivery bug as a reproducible mode), and
:mod:`~repro.msgbox.client` (polling helper).
"""

from repro.msgbox.store import MailboxStore, StoredMessage
from repro.msgbox.security import MailboxSecurity
from repro.msgbox.service import MsgBoxService, MSGBOX_NS
from repro.msgbox.client import MsgBoxClient

__all__ = [
    "MailboxStore",
    "StoredMessage",
    "MailboxSecurity",
    "MsgBoxService",
    "MSGBOX_NS",
    "MsgBoxClient",
]

"""Pooling HTTP client for the threaded runtime.

Keeps one small pool of persistent connections per endpoint (the paper's
WsThreads hold "an open connection for a predefined time with a specified
WS").  A connection is reused only when the previous exchange left it at a
message boundary; anything suspicious is discarded and the request retried
once on a fresh connection.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import (
    ConnectionClosed,
    ConnectionTimeout,
    HttpParseError,
    SoapError,
    TransportError,
    XmlError,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.http.wire import ResponseParser, serialize_request
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.soap import Envelope
from repro.transport.base import Connector, Endpoint, Stream, parse_http_url

_RECV_CHUNK = 64 * 1024


@dataclass
class _PooledConn:
    stream: Stream
    endpoint: Endpoint


class HttpClient:
    """Blocking HTTP client with per-endpoint connection reuse."""

    def __init__(
        self,
        connector: Connector,
        connect_timeout: float = 5.0,
        response_timeout: float = 30.0,
        pool_per_endpoint: int = 4,
        user_agent: str = "repro-client/1.0",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._connector = connector
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self._pool_per_endpoint = pool_per_endpoint
        self._user_agent = user_agent
        self._pools: dict[Endpoint, list[Stream]] = {}
        self._lock = threading.Lock()
        self._closed = False
        registry = metrics if metrics is not None else default_registry()
        self._m_requests = registry.counter(
            "rt_client_requests_total", "HTTP exchanges completed by the client"
        )
        self._m_request_time = registry.histogram(
            "rt_client_request_seconds",
            "wall time of one client HTTP exchange",
            bucket_width=0.001,
        )

    # -- connection pool -------------------------------------------------
    def _checkout(self, endpoint: Endpoint) -> tuple[Stream, bool]:
        """Return (stream, reused)."""
        with self._lock:
            pool = self._pools.get(endpoint)
            if pool:
                return pool.pop(), True
        return (
            self._connector.connect(endpoint, timeout=self.connect_timeout),
            False,
        )

    def _checkin(self, endpoint: Endpoint, stream: Stream) -> None:
        with self._lock:
            if self._closed:
                stream.close()
                return
            pool = self._pools.setdefault(endpoint, [])
            if len(pool) < self._pool_per_endpoint:
                pool.append(stream)
                return
        stream.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            streams = [s for pool in self._pools.values() for s in pool]
            self._pools.clear()
        for s in streams:
            s.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request execution -------------------------------------------------
    def request(self, url: str, request: HttpRequest) -> HttpResponse:
        """Send one request to ``url``'s endpoint and read the response.

        The request's ``target`` is overwritten with the URL's path.
        Retries exactly once on a stale pooled connection.
        """
        endpoint, path = parse_http_url(url)
        request.target = path
        request.headers.set("Host", str(endpoint))
        if "User-Agent" not in request.headers:
            request.headers.set("User-Agent", self._user_agent)

        t_start = time.monotonic()
        stream, reused = self._checkout(endpoint)
        try:
            response = self._exchange(endpoint, stream, request)
            self._m_requests.inc()
            self._m_request_time.observe(time.monotonic() - t_start)
            return response
        except (ConnectionClosed, HttpParseError, TransportError):
            stream.close()
            if not reused:
                raise
        # stale pooled connection: one retry on a fresh one
        stream = self._connector.connect(endpoint, timeout=self.connect_timeout)
        try:
            response = self._exchange(endpoint, stream, request)
            self._m_requests.inc()
            self._m_request_time.observe(time.monotonic() - t_start)
            return response
        except BaseException:
            stream.close()
            raise

    def _exchange(
        self, endpoint: Endpoint, stream: Stream, request: HttpRequest
    ) -> HttpResponse:
        stream.send(serialize_request(request))
        parser = ResponseParser()
        if request.method == "HEAD":
            parser.expect_no_body = True
        while True:
            message = parser.next_message()
            if message is not None:
                response: HttpResponse = message  # type: ignore[assignment]
                if response.keep_alive and parser.idle:
                    self._checkin(endpoint, stream)
                else:
                    stream.close()
                return response
            data = stream.recv(_RECV_CHUNK, timeout=self.response_timeout)
            if not data:
                parser.feed_eof()
                tail = parser.next_message()
                if tail is not None:
                    stream.close()
                    return tail  # type: ignore[return-value]
                raise ConnectionClosed("server closed before full response")
            parser.feed(data)

    # -- SOAP conveniences ---------------------------------------------------
    def post_envelope(self, url: str, envelope: Envelope) -> HttpResponse:
        headers = Headers()
        headers.set("Content-Type", envelope.version.content_type)
        req = HttpRequest("POST", "/", headers=headers, body=envelope.to_bytes())
        return self.request(url, req)

    def call_soap(self, url: str, envelope: Envelope) -> Envelope | None:
        """POST an envelope; parse the reply envelope (None for 202/204).

        Raises :class:`~repro.errors.SoapError` if the response is not a
        SOAP message; fault envelopes are returned, not raised — callers
        decide (the dispatcher must *relay* faults, not swallow them).
        """
        response = self.post_envelope(url, envelope)
        if response.status in (202, 204) or not response.body:
            return None
        try:
            return Envelope.from_bytes(response.body)
        except (XmlError, SoapError) as exc:
            raise SoapError(
                f"non-SOAP response (HTTP {response.status}) from {url}: {exc}"
            ) from exc

"""Pooling HTTP client for the threaded runtime.

Keeps one small pool of persistent connections per endpoint (the paper's
WsThreads hold "an open connection for a predefined time with a specified
WS").  A connection is reused only when the previous exchange left it at a
message boundary; anything suspicious is discarded and the request retried
once on a fresh connection.

Two access patterns:

- :meth:`HttpClient.request` — one blocking request/response exchange,
  connection borrowed from the pool for its duration.
- :meth:`HttpClient.lease` — check a connection out for *exclusive* use
  (a WsThread holding its destination), then :meth:`ConnectionLease.pipeline`
  a whole drained batch as one write burst and read the responses in
  order (HTTP/1.1 pipelining).  Several messages then ride one connection
  as one round trip instead of one round trip each — the paper's "more
  efficient than opening multiple short lived connections", taken at its
  word.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import (
    ConnectionClosed,
    ConnectionTimeout,
    HttpParseError,
    ReproError,
    SoapError,
    TransportError,
    XmlError,
)
from repro.http import Headers, HttpRequest, HttpResponse
from repro.http.wire import ResponseParser, serialize_request, serialize_request_burst
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.soap import Envelope
from repro.transport.base import Connector, Endpoint, Stream, parse_http_url

_RECV_CHUNK = 64 * 1024


@dataclass
class _PooledConn:
    stream: Stream
    endpoint: Endpoint


class HttpClient:
    """Blocking HTTP client with per-endpoint connection reuse."""

    def __init__(
        self,
        connector: Connector,
        connect_timeout: float = 5.0,
        response_timeout: float = 30.0,
        pool_per_endpoint: int = 4,
        user_agent: str = "repro-client/1.0",
        metrics: MetricsRegistry | None = None,
        overload_retries: int = 0,
        retry_after_cap: float = 30.0,
    ) -> None:
        self._connector = connector
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self._pool_per_endpoint = pool_per_endpoint
        self._user_agent = user_agent
        #: how many times :meth:`request` re-sends after a 503 that names
        #: a ``Retry-After`` delay (0 = return the 503 to the caller)
        self.overload_retries = overload_retries
        #: never sleep longer than this per 503, whatever the server asks
        self.retry_after_cap = retry_after_cap
        self._pools: dict[Endpoint, list[Stream]] = {}
        self._lock = threading.Lock()
        self._closed = False
        registry = metrics if metrics is not None else default_registry()
        self._m_requests = registry.counter(
            "rt_client_requests_total", "HTTP exchanges completed by the client"
        )
        self._m_request_time = registry.histogram(
            "rt_client_request_seconds",
            "wall time of one client HTTP exchange",
            bucket_width=0.001,
        )
        reuse = registry.counter(
            "rt_client_conn_reuse_total", "connection checkouts, by outcome"
        )
        self._m_reuse_reused = reuse.labels(outcome="reused")
        self._m_reuse_fresh = reuse.labels(outcome="fresh")
        self._m_reuse_stale = reuse.labels(outcome="stale_retry")
        self._m_pipeline_bursts = registry.counter(
            "rt_client_pipeline_bursts_total",
            "pipelined write bursts issued on leased connections",
        )
        self._m_pipeline_replayed = registry.counter(
            "rt_client_pipeline_replayed_total",
            "pipelined requests replayed serially after a cut-short burst",
        )
        self._m_overload_waits = registry.counter(
            "rt_client_overload_waits_total",
            "503 responses the client slept out per the server's Retry-After",
        )

    # -- connection pool -------------------------------------------------
    def _checkout(self, endpoint: Endpoint) -> tuple[Stream, bool]:
        """Return (stream, reused)."""
        with self._lock:
            pool = self._pools.get(endpoint)
            if pool:
                self._m_reuse_reused.inc()
                return pool.pop(), True
        self._m_reuse_fresh.inc()
        return (
            self._connector.connect(endpoint, timeout=self.connect_timeout),
            False,
        )

    def _checkin(self, endpoint: Endpoint, stream: Stream) -> None:
        with self._lock:
            if self._closed:
                stream.close()
                return
            pool = self._pools.setdefault(endpoint, [])
            if len(pool) < self._pool_per_endpoint:
                pool.append(stream)
                return
        stream.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            streams = [s for pool in self._pools.values() for s in pool]
            self._pools.clear()
        for s in streams:
            s.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request execution -------------------------------------------------
    def prepare(self, url: str, request: HttpRequest) -> Endpoint:
        """Point ``request`` at ``url``: target, Host, User-Agent.

        Returns the parsed endpoint.  Used by :meth:`request` and by
        callers that batch prepared requests for a :class:`ConnectionLease`.
        """
        endpoint, path = parse_http_url(url)
        request.target = path
        request.headers.set("Host", str(endpoint))
        if "User-Agent" not in request.headers:
            request.headers.set("User-Agent", self._user_agent)
        return endpoint

    def request(self, url: str, request: HttpRequest) -> HttpResponse:
        """Send one request to ``url``'s endpoint and read the response.

        The request's ``target`` is overwritten with the URL's path.
        Retries exactly once on a stale pooled connection.  With
        ``overload_retries > 0`` a 503 carrying ``Retry-After`` is slept
        out (capped at ``retry_after_cap``) and the request re-sent, up to
        that many times; the final response is returned either way.
        """
        endpoint = self.prepare(url, request)
        response = self._request_prepared(endpoint, request)
        for _ in range(self.overload_retries):
            if response.status != 503:
                break
            delay = self._retry_after_of(response)
            if delay is None:
                break
            self._m_overload_waits.inc()
            time.sleep(min(delay, self.retry_after_cap))
            response = self._request_prepared(endpoint, request)
        return response

    @staticmethod
    def _retry_after_of(response: HttpResponse) -> float | None:
        """Parse a delay-seconds ``Retry-After`` header (None if absent,
        unparsable, or negative; HTTP-date form is not supported)."""
        raw = response.headers.get("Retry-After")
        if raw is None:
            return None
        try:
            delay = float(raw.strip())
        except ValueError:
            return None
        return delay if delay >= 0 else None

    def _request_prepared(
        self, endpoint: Endpoint, request: HttpRequest
    ) -> HttpResponse:
        t_start = time.monotonic()
        stream, reused = self._checkout(endpoint)
        try:
            response = self._exchange(endpoint, stream, request)
            self._m_requests.inc()
            self._m_request_time.observe(time.monotonic() - t_start)
            return response
        except ConnectionTimeout:
            # Deliberately not retried, even on a reused connection: the
            # server may still be processing the request, so a replay on a
            # fresh connection risks delivering it twice.  Staleness shows
            # up as an immediate close/reset, never as a silent deadline.
            stream.close()
            raise
        except (ConnectionClosed, HttpParseError, TransportError):
            stream.close()
            if not reused:
                raise
        # stale pooled connection: one retry on a fresh one
        self._m_reuse_stale.inc()
        stream = self._connector.connect(endpoint, timeout=self.connect_timeout)
        try:
            response = self._exchange(endpoint, stream, request)
            self._m_requests.inc()
            self._m_request_time.observe(time.monotonic() - t_start)
            return response
        except BaseException:
            stream.close()
            raise

    # -- connection leases & pipelining ------------------------------------
    def lease(self, url: str) -> "ConnectionLease":
        """Check a connection to ``url``'s endpoint out for exclusive use.

        The lease holds one pooled (or freshly opened) connection that no
        concurrent :meth:`request` call can touch until
        :meth:`ConnectionLease.release` returns it.  This is the WsThread
        contract: one persistent connection per destination, drained
        batches ride it as pipelined bursts.
        """
        endpoint, _path = parse_http_url(url)
        return ConnectionLease(self, endpoint)

    def pipeline(
        self, url: str, requests: Sequence[HttpRequest]
    ) -> "list[HttpResponse | ReproError]":
        """Send ``requests`` to ``url`` as one pipelined burst.

        Every request is prepared against ``url`` (same target path), the
        burst rides a temporary lease, and the result list is aligned with
        the input: each slot holds the :class:`HttpResponse` or the
        exception that request ended with.
        """
        prepared = list(requests)
        for req in prepared:
            self.prepare(url, req)
        lease = self.lease(url)
        try:
            return lease.pipeline(prepared)
        finally:
            lease.release()

    def _exchange(
        self, endpoint: Endpoint, stream: Stream, request: HttpRequest
    ) -> HttpResponse:
        stream.send(serialize_request(request))
        parser = ResponseParser()
        if request.method == "HEAD":
            parser.expect_no_body = True
        while True:
            message = parser.next_message()
            if message is not None:
                response: HttpResponse = message  # type: ignore[assignment]
                if response.keep_alive and parser.idle:
                    self._checkin(endpoint, stream)
                else:
                    stream.close()
                return response
            data = stream.recv(_RECV_CHUNK, timeout=self.response_timeout)
            if not data:
                parser.feed_eof()
                tail = parser.next_message()
                if tail is not None:
                    stream.close()
                    return tail  # type: ignore[return-value]
                raise ConnectionClosed("server closed before full response")
            parser.feed(data)

    # -- SOAP conveniences ---------------------------------------------------
    def post_envelope(self, url: str, envelope: Envelope) -> HttpResponse:
        headers = Headers()
        headers.set("Content-Type", envelope.version.content_type)
        req = HttpRequest("POST", "/", headers=headers, body=envelope.to_bytes())
        return self.request(url, req)

    def call_soap(self, url: str, envelope: Envelope) -> Envelope | None:
        """POST an envelope; parse the reply envelope (None for 202/204).

        Raises :class:`~repro.errors.SoapError` if the response is not a
        SOAP message; fault envelopes are returned, not raised — callers
        decide (the dispatcher must *relay* faults, not swallow them).
        """
        response = self.post_envelope(url, envelope)
        if response.status in (202, 204) or not response.body:
            return None
        try:
            return Envelope.from_bytes(response.body)
        except (XmlError, SoapError) as exc:
            raise SoapError(
                f"non-SOAP response (HTTP {response.status}) from {url}: {exc}"
            ) from exc


class ConnectionLease:
    """Exclusive checkout of one connection to an endpoint.

    Created by :meth:`HttpClient.lease`.  The leased stream is removed
    from the shared pool, so nothing else can interleave bytes on it;
    :meth:`release` returns it (if still at a clean message boundary) or
    discards it.

    :meth:`pipeline` is the drain-path workhorse: it serialises a batch of
    prepared requests back-to-back, writes them as **one burst**, then
    reads the responses in order.  When the burst is cut short — the
    server closes mid-burst, or answers with ``Connection: close`` — the
    undelivered tail is *replayed serially* (each tail request exactly
    once, on ordinary pooled connections).  A response timeout poisons the
    tail instead of replaying it: a slow server may still be processing
    those requests, and replaying would deliver them twice.
    """

    def __init__(self, client: HttpClient, endpoint: Endpoint) -> None:
        self._client = client
        self.endpoint = endpoint
        self._stream, self.reused = client._checkout(endpoint)
        self._healthy = True
        self._released = False

    # -- lifecycle ---------------------------------------------------------
    def release(self) -> None:
        """Return the connection to the pool (healthy) or discard it."""
        if self._released:
            return
        self._released = True
        stream, self._stream = self._stream, None
        if stream is None:
            return
        if self._healthy:
            self._client._checkin(self.endpoint, stream)
        else:
            stream.close()

    def __enter__(self) -> "ConnectionLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def _demote(self) -> None:
        """The leased stream is no longer usable; close and forget it."""
        self._healthy = False
        stream, self._stream = self._stream, None
        if stream is not None:
            stream.close()

    # -- pipelined burst ---------------------------------------------------
    def pipeline(
        self, requests: "Iterable[HttpRequest]"
    ) -> "list[HttpResponse | ReproError]":
        """One write burst of already-prepared requests; responses in order.

        Returns a list aligned with ``requests``: an :class:`HttpResponse`
        per answered request, or the exception that request ended with.
        Never raises for per-request failures — callers keep per-item
        retry/hold semantics.
        """
        if self._released:
            raise ReproError("pipeline on a released lease")
        batch = list(requests)
        if not batch:
            return []
        results: "list[HttpResponse | ReproError | None]" = [None] * len(batch)
        self._client._m_pipeline_bursts.inc()
        try:
            self._stream.send(serialize_request_burst(batch))
        except (ConnectionClosed, TransportError):
            # nothing read back yet: the whole burst is the tail
            self._demote()
            return self._replay_tail(batch, results, 0)
        parser = ResponseParser()
        done = 0
        while done < len(batch):
            message = parser.next_message()
            if message is not None:
                results[done] = message
                done += 1
                self._client._m_requests.inc()
                if not message.keep_alive:
                    # server demotes us to serial: no more responses will
                    # arrive on this connection
                    self._demote()
                    return self._replay_tail(batch, results, done)
                continue
            try:
                data = self._stream.recv(
                    _RECV_CHUNK, timeout=self._client.response_timeout
                )
            except ConnectionTimeout as exc:
                # the tail may still be processed: poison, don't replay
                self._demote()
                for i in range(done, len(batch)):
                    results[i] = exc
                return results  # type: ignore[return-value]
            except (ConnectionClosed, TransportError):
                self._demote()
                return self._replay_tail(batch, results, done)
            if not data:
                tail = self._finish_on_eof(parser)
                if tail is not None and done < len(batch):
                    results[done] = tail
                    done += 1
                    self._client._m_requests.inc()
                self._demote()
                return self._replay_tail(batch, results, done)
            try:
                parser.feed(data)
            except HttpParseError:
                self._demote()
                return self._replay_tail(batch, results, done)
        if not parser.idle:
            # trailing bytes past the last response: not a clean boundary
            self._demote()
        return results  # type: ignore[return-value]

    @staticmethod
    def _finish_on_eof(parser: ResponseParser) -> HttpResponse | None:
        """EOF may legally complete a read-until-close response."""
        try:
            parser.feed_eof()
        except HttpParseError:
            return None
        return parser.next_message()  # type: ignore[return-value]

    def _replay_tail(
        self,
        batch: "list[HttpRequest]",
        results: "list[HttpResponse | ReproError | None]",
        start: int,
    ) -> "list[HttpResponse | ReproError]":
        """Serial fallback for the undelivered tail, one attempt each."""
        if start < len(batch):
            self._client._m_pipeline_replayed.inc(len(batch) - start)
        for i in range(start, len(batch)):
            try:
                results[i] = self._client._request_prepared(
                    self.endpoint, batch[i]
                )
            except ReproError as exc:
                results[i] = exc
        return results  # type: ignore[return-value]

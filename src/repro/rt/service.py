"""SOAP service hosting: the bridge between HTTP and envelopes.

A :class:`SoapService` receives a parsed envelope and returns a reply
envelope (RPC style), or ``None`` for accepted one-way messages (the HTTP
layer then answers ``202 Accepted`` — the messaging pattern of the
MSG-Dispatcher).  :class:`SoapHttpApp` routes by URL path prefix, so one
server can host a dispatcher, a registry browser, and a mailbox service on
different paths exactly as the paper co-locates them.
"""

from __future__ import annotations

import inspect
import traceback
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Protocol

from repro.errors import OverloadedError, ReproError, SoapError, XmlError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.soap import Envelope, Fault, fastpath_counter, parse_envelope
from repro.soap.constants import SoapVersion


@dataclass
class RequestContext:
    """Per-request information handed to services."""

    path: str
    http_request: HttpRequest | None = None
    #: transport-level peer identity, when the server knows it
    peer: str | None = None
    #: free-form slots services/middleware may use (e.g. SSO principal)
    attributes: dict[str, object] = field(default_factory=dict)


class SoapService(Protocol):
    """Anything that can process a SOAP envelope."""

    def handle(self, envelope: Envelope, ctx: RequestContext) -> Envelope | None:
        """Process one message; return the reply envelope or None (one-way)."""
        ...


class FunctionService:
    """Adapter turning a plain callable into a :class:`SoapService`."""

    def __init__(
        self, fn: Callable[[Envelope, RequestContext], Envelope | None]
    ) -> None:
        self._fn = fn

    def handle(self, envelope: Envelope, ctx: RequestContext) -> Envelope | None:
        return self._fn(envelope, ctx)


def soap_response(envelope: Envelope, status: int = 200) -> HttpResponse:
    """Wrap a reply envelope into an HTTP response."""
    body = envelope.to_bytes()
    headers = Headers()
    headers.set("Content-Type", envelope.version.content_type)
    return HttpResponse(status=status, headers=headers, body=body)


def soap_fault_response(
    fault: Fault,
    status: int = 500,
    version: SoapVersion = SoapVersion.V11,
) -> HttpResponse:
    """HTTP response carrying a SOAP fault envelope."""
    envelope = Envelope(fault.to_element(version), version=version)
    return soap_response(envelope, status=status)


class SoapHttpApp:
    """HTTP request handler that dispatches SOAP posts to mounted services.

    Mounting is by path prefix; the longest matching prefix wins.  ``GET``
    requests are delegated to optional page handlers (used by the registry's
    browsable Yellow-Pages listing).
    """

    def __init__(
        self,
        server_header: str = "repro-wsd/1.0",
        accept_binary: bool = False,
        fast_path: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """``accept_binary=True`` additionally accepts binary-XML envelopes
        (``application/x-repro-binxml``) — the protocol-extension future
        work; replies to binary callers are encoded in kind.

        ``fast_path=True`` (the default) parses text envelopes with the
        zero-copy scanner (:func:`repro.soap.parse_envelope`): headers
        become Elements, the Body stays an unparsed byte slice until a
        service actually reads it.  Outcomes are counted on the
        ``soap_fastpath_total`` metric of ``metrics``."""
        self._services: list[tuple[str, SoapService]] = []
        self._pages: list[tuple[str, Callable[[HttpRequest], HttpResponse]]] = []
        self._raw: list[tuple[str, Callable[[HttpRequest], HttpResponse]]] = []
        self._server_header = server_header
        self._accept_binary = accept_binary
        self._fast_path = fast_path
        registry = metrics if metrics is not None else default_registry()
        self._m_fastpath = fastpath_counter(registry)

    def mount(self, prefix: str, service: SoapService) -> None:
        if not prefix.startswith("/"):
            raise ValueError("mount prefix must start with '/'")
        self._services.append((prefix, service))
        self._services.sort(key=lambda item: len(item[0]), reverse=True)

    def mount_page(
        self, prefix: str, handler: Callable[[HttpRequest], HttpResponse]
    ) -> None:
        if not prefix.startswith("/"):
            raise ValueError("mount prefix must start with '/'")
        self._pages.append((prefix, handler))
        self._pages.sort(key=lambda item: len(item[0]), reverse=True)

    def mount_raw(
        self, prefix: str, handler: Callable[[HttpRequest], HttpResponse]
    ) -> None:
        """Mount a non-SOAP ``POST`` handler (e.g. the span-report
        endpoint): checked before SOAP service lookup, so operator-plane
        JSON traffic can share the server with envelope traffic."""
        if not prefix.startswith("/"):
            raise ValueError("mount prefix must start with '/'")
        self._raw.append((prefix, handler))
        self._raw.sort(key=lambda item: len(item[0]), reverse=True)

    def _lookup(self, path: str) -> SoapService | None:
        for prefix, service in self._services:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/") or (
                prefix.endswith("/") and path.startswith(prefix)
            ):
                return service
        return None

    # -- HttpServer handler entry point ----------------------------------
    def handle_request(
        self, request: HttpRequest, peer: str | None = None
    ) -> "HttpResponse | Awaitable[HttpResponse]":
        """Route one request.  Always returns an :class:`HttpResponse` for
        sync services; returns an awaitable only when a mounted service
        itself returned one (async-aware servers must await it)."""
        path = request.target.split("?", 1)[0]
        if request.method == "GET":
            for prefix, handler in self._pages:
                if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                    return handler(request)
            return HttpResponse(status=404, body=b"not found")
        if request.method != "POST":
            return HttpResponse(status=405, body=b"SOAP endpoints accept POST")
        for prefix, handler in self._raw:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                return handler(request)

        service = self._lookup(path)
        if service is None:
            return soap_fault_response(
                Fault("Client", f"no service mounted at {path}"), status=404
            )
        content_type = request.headers.get("Content-Type")
        binary_caller = False
        try:
            if self._accept_binary:
                from repro.soap.binxml import BINXML_CONTENT_TYPE, sniff_and_parse

                binary_caller = bool(
                    (content_type and BINXML_CONTENT_TYPE in content_type)
                    or request.body.startswith(b"BX1")
                )
            if binary_caller:
                envelope = sniff_and_parse(request.body, content_type)
            else:
                envelope = parse_envelope(
                    request.body,
                    counter=self._m_fastpath,
                    fast=self._fast_path,
                )
        except (XmlError, SoapError) as exc:
            return soap_fault_response(
                Fault("Client", f"malformed SOAP request: {exc}"), status=400
            )
        ctx = RequestContext(path=path, http_request=request, peer=peer)
        try:
            reply = service.handle(envelope, ctx)
        except Exception as exc:  # noqa: BLE001 - fault barrier at HTTP edge
            return self._fault_response(exc, envelope.version)
        if inspect.isawaitable(reply):
            # A mounted service chose the asyncio escape hatch: it returned
            # a coroutine instead of blocking (e.g. a long-poll take on the
            # event loop).  The sync contract is unchanged for every other
            # caller; only an async-aware server (AioHttpServer) will see —
            # and must await — a coroutine here, with the same fault
            # barrier applied to the awaited result.
            return self._finish_async(reply, envelope.version, binary_caller)
        return self._reply_response(reply, envelope.version, binary_caller)

    def _fault_response(
        self, exc: BaseException, version: SoapVersion
    ) -> HttpResponse:
        """The service fault barrier, shared by sync and async paths."""
        if isinstance(exc, OverloadedError):
            # Admission control shed the request: the client should back
            # off and retry, so the fault rides a 503 with Retry-After
            # rather than a hard 500.
            response = soap_fault_response(
                Fault("Server", str(exc)), status=503, version=version
            )
            response.headers.set("Retry-After", f"{exc.retry_after:g}")
            return response
        if isinstance(exc, ReproError):
            return soap_fault_response(
                Fault("Server", str(exc)), status=500, version=version
            )
        detail = traceback.format_exc(limit=5)
        return soap_fault_response(
            Fault("Server", f"internal error: {exc}", detail=detail),
            status=500,
            version=version,
        )

    def _reply_response(
        self,
        reply: "Envelope | None",
        version: SoapVersion,
        binary_caller: bool,
    ) -> HttpResponse:
        if reply is None:
            return HttpResponse(status=202)
        status = 500 if reply.is_fault() else 200
        if binary_caller:
            from repro.soap.binxml import BINXML_CONTENT_TYPE, encode_envelope

            headers = Headers()
            headers.set("Content-Type", BINXML_CONTENT_TYPE)
            return HttpResponse(
                status=status, headers=headers, body=encode_envelope(reply)
            )
        return soap_response(reply, status=status)

    async def _finish_async(
        self,
        pending: "object",
        version: SoapVersion,
        binary_caller: bool,
    ) -> HttpResponse:
        try:
            reply = await pending  # type: ignore[misc]
        except Exception as exc:  # noqa: BLE001 - same barrier as the sync path
            return self._fault_response(exc, version)
        return self._reply_response(reply, version, binary_caller)

"""Threaded runtime: HTTP server/client and SOAP service hosting.

This is the "real" execution environment: services run behind an
:class:`HttpServer` (acceptor thread + bounded worker pool) and talk to
each other through a pooling :class:`HttpClient`.  Transports are
pluggable (in-process or real TCP), so the whole dispatcher stack can run
inside one Python process or across localhost sockets unchanged.
"""

from repro.rt.server import HttpServer
from repro.rt.client import ConnectionLease, HttpClient
from repro.rt.service import (
    RequestContext,
    SoapService,
    SoapHttpApp,
    FunctionService,
    soap_response,
    soap_fault_response,
)

__all__ = [
    "HttpServer",
    "HttpClient",
    "ConnectionLease",
    "RequestContext",
    "SoapService",
    "SoapHttpApp",
    "FunctionService",
    "soap_response",
    "soap_fault_response",
]

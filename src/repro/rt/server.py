"""Threaded HTTP/1.1 server: acceptor thread + bounded worker pool.

Connection lifecycle mirrors the paper's servlet-container assumptions:
each accepted connection is served by one pooled worker that loops
request→response while the client keeps the connection alive, bounded by
an idle timeout.  The pool size bounds concurrency; when it is saturated,
new connections queue in the executor (policy "block") — backpressure
rather than thread explosion.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import (
    ConnectionTimeout,
    HttpParseError,
    TransportError,
)
from repro.http import HttpRequest, HttpResponse
from repro.http.wire import RequestParser, serialize_response
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.transport.base import Listener, Stream
from repro.util.concurrency import BoundedExecutor, RejectedExecution

Handler = Callable[[HttpRequest, str | None], HttpResponse]

_RECV_CHUNK = 64 * 1024


class HttpServer:
    """Serve HTTP over any :class:`~repro.transport.base.Listener`."""

    def __init__(
        self,
        listener: Listener,
        handler: Handler,
        workers: int = 16,
        keep_alive_timeout: float = 15.0,
        name: str = "http",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._listener = listener
        self._handler = handler
        self._keep_alive_timeout = keep_alive_timeout
        self._pool = BoundedExecutor(workers, queue_size=0, name=f"{name}-worker")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{name}-accept", daemon=True
        )
        self._running = False
        # Monitoring counters, deliberately lock-free.  _connections_served
        # has a single writer (the acceptor thread), so plain increments
        # are exact.  _requests_served is bumped by many workers; under
        # CPython's GIL a racy `+=` can at worst lose the odd increment —
        # acceptable for a monitoring counter and not worth a lock
        # acquisition per request on the serve path.
        self._connections_served = 0
        self._requests_served = 0
        # live-callback gauges: zero cost on the serve path
        registry = metrics if metrics is not None else default_registry()
        registry.gauge(
            "rt_http_connections_served", "connections accepted, by server"
        ).labels(server=name).set_function(lambda: self.connections_served)
        registry.gauge(
            "rt_http_requests_served", "requests answered, by server"
        ).labels(server=name).set_function(lambda: self.requests_served)

    # -- lifecycle ----------------------------------------------------------
    @property
    def endpoint(self):
        return self._listener.endpoint

    @property
    def url(self) -> str:
        return f"http://{self._listener.endpoint}"

    def start(self) -> "HttpServer":
        self._running = True
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        self._listener.close()
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "HttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- metrics ----------------------------------------------------------
    @property
    def connections_served(self) -> int:
        return self._connections_served

    @property
    def requests_served(self) -> int:
        return self._requests_served

    # -- internals ----------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                stream = self._listener.accept(timeout=0.5)
            except ConnectionTimeout:
                continue
            except TransportError:
                return  # listener closed
            self._connections_served += 1
            try:
                self._pool.submit(lambda s=stream: self._serve_connection(s))
            except RejectedExecution:
                stream.close()

    def _serve_connection(self, stream: Stream) -> None:
        parser = RequestParser()
        try:
            while self._running:
                request = self._read_request(stream, parser)
                if request is None or not self._running:
                    return  # idle expiry, client EOF, or server stopped
                response = self._handler(request, None)
                if not request.keep_alive:
                    response.headers.set("Connection", "close")
                stream.send(serialize_response(response))
                self._requests_served += 1
                if not request.keep_alive or not response.keep_alive:
                    return
        except (TransportError, HttpParseError):
            return  # drop the connection; client sees reset/EOF
        finally:
            stream.close()

    def _read_request(
        self, stream: Stream, parser: RequestParser
    ) -> HttpRequest | None:
        while True:
            message = parser.next_message()
            if message is not None:
                return message  # type: ignore[return-value]
            try:
                data = stream.recv(_RECV_CHUNK, timeout=self._keep_alive_timeout)
            except ConnectionTimeout:
                return None  # idle keep-alive expiry
            if not data:
                if parser.idle:
                    return None
                raise HttpParseError("connection closed mid-request")
            parser.feed(data)

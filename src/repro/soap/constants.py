"""SOAP namespace constants and version descriptor."""

from __future__ import annotations

import enum

SOAP11_NS = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP12_NS = "http://www.w3.org/2003/05/soap-envelope"

#: HTTP content types per version (1.1 uses text/xml + SOAPAction header,
#: 1.2 uses application/soap+xml with an action parameter).
SOAP11_CONTENT_TYPE = "text/xml; charset=utf-8"
SOAP12_CONTENT_TYPE = "application/soap+xml; charset=utf-8"


class SoapVersion(enum.Enum):
    """The two SOAP envelope dialects the dispatcher understands."""

    V11 = SOAP11_NS
    V12 = SOAP12_NS

    @property
    def ns(self) -> str:
        return self.value

    @property
    def content_type(self) -> str:
        return SOAP11_CONTENT_TYPE if self is SoapVersion.V11 else SOAP12_CONTENT_TYPE

    @classmethod
    def from_ns(cls, ns: str) -> "SoapVersion":
        for v in cls:
            if v.value == ns:
                return v
        raise ValueError(f"not a SOAP envelope namespace: {ns!r}")

"""SOAP 1.1 / 1.2 messaging framework subset.

Implements the envelope model the WS-Dispatcher operates on: Envelope =
optional Header (a list of header blocks) + Body (one payload element or a
Fault).  Both SOAP 1.1 (``http://schemas.xmlsoap.org/soap/envelope/``) and
SOAP 1.2 (``http://www.w3.org/2003/05/soap-envelope``) namespaces are
supported, mirroring the paper's XSUL modules ("SOAP 1.1 and 1.2
wrapping/unwrapping; RPC style wrapping").
"""

from repro.soap.constants import SOAP11_NS, SOAP12_NS, SoapVersion
from repro.soap.envelope import Envelope
from repro.soap.lazy import (
    KNOWN_HEADER_NAMESPACES,
    LazyEnvelope,
    fastpath_counter,
    parse_envelope,
)
from repro.soap.fault import Fault
from repro.soap.rpc import (
    RpcRequest,
    RpcResponse,
    build_rpc_request,
    build_rpc_response,
    parse_rpc_request,
    parse_rpc_response,
)

__all__ = [
    "SOAP11_NS",
    "SOAP12_NS",
    "SoapVersion",
    "Envelope",
    "LazyEnvelope",
    "KNOWN_HEADER_NAMESPACES",
    "parse_envelope",
    "fastpath_counter",
    "Fault",
    "RpcRequest",
    "RpcResponse",
    "build_rpc_request",
    "build_rpc_response",
    "parse_rpc_request",
    "parse_rpc_response",
]

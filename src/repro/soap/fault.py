"""SOAP Fault representation covering both the 1.1 and 1.2 shapes.

SOAP 1.1: ``<Fault><faultcode>..<faultstring>..<detail>``  (unnamespaced
children).  SOAP 1.2: ``<Fault><Code><Value>..</Code><Reason><Text>..``
(namespaced children).  The dispatcher generates faults when routing
fails (unknown logical address, destination unreachable, timeout) and
relays faults produced by services.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SoapError
from repro.soap.constants import SoapVersion
from repro.xmlmini import Element, QName

#: Standard fault codes (the local part; prefixed per version on the wire).
CODE_CLIENT = "Client"  # 1.2: Sender
CODE_SERVER = "Server"  # 1.2: Receiver
CODE_VERSION_MISMATCH = "VersionMismatch"

_V12_CODE_MAP = {CODE_CLIENT: "Sender", CODE_SERVER: "Receiver"}
_V12_CODE_UNMAP = {v: k for k, v in _V12_CODE_MAP.items()}


@dataclass
class Fault:
    """Version-independent fault: canonical code, reason, optional detail."""

    code: str
    reason: str
    detail: str | None = None

    def to_element(self, version: SoapVersion = SoapVersion.V11) -> Element:
        ns = version.ns
        fault = Element(QName(ns, "Fault"))
        if version is SoapVersion.V11:
            fault.add(Element(QName(None, "faultcode"), text=f"soapenv:{self.code}"))
            fault.add(Element(QName(None, "faultstring"), text=self.reason))
            if self.detail is not None:
                detail = Element(QName(None, "detail"))
                detail.add(Element(QName(None, "message"), text=self.detail))
                fault.children.append(detail)
        else:
            code = Element(QName(ns, "Code"))
            wire_code = _V12_CODE_MAP.get(self.code, self.code)
            code.add(Element(QName(ns, "Value"), text=f"soapenv:{wire_code}"))
            fault.children.append(code)
            reason = Element(QName(ns, "Reason"))
            reason.add(Element(QName(ns, "Text"), text=self.reason))
            fault.children.append(reason)
            if self.detail is not None:
                detail = Element(QName(ns, "Detail"))
                detail.add(Element(QName(None, "message"), text=self.detail))
                fault.children.append(detail)
        return fault

    @classmethod
    def from_element(cls, el: Element) -> "Fault":
        if el.name.local != "Fault" or el.name.ns is None:
            raise SoapError(f"not a Fault element: {el.name.clark()}")
        version = SoapVersion.from_ns(el.name.ns)
        if version is SoapVersion.V11:
            code_el = el.find(QName(None, "faultcode"))
            string_el = el.find(QName(None, "faultstring"))
            if code_el is None or string_el is None:
                raise SoapError("SOAP 1.1 Fault missing faultcode/faultstring")
            code = code_el.text.strip()
            code = code.rpartition(":")[2]  # strip any prefix
            detail_el = el.find(QName(None, "detail"))
            detail = detail_el.full_text().strip() if detail_el is not None else None
            return cls(code=code, reason=string_el.text.strip(), detail=detail or None)
        ns = version.ns
        code_el = el.find(QName(ns, "Code"))
        reason_el = el.find(QName(ns, "Reason"))
        if code_el is None or reason_el is None:
            raise SoapError("SOAP 1.2 Fault missing Code/Reason")
        value = code_el.require(QName(ns, "Value")).text.strip().rpartition(":")[2]
        value = _V12_CODE_UNMAP.get(value, value)
        text_el = reason_el.find(QName(ns, "Text"))
        reason = text_el.text.strip() if text_el is not None else ""
        detail_el = el.find(QName(ns, "Detail"))
        detail = detail_el.full_text().strip() if detail_el is not None else None
        return cls(code=value, reason=reason, detail=detail or None)

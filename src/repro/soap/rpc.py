"""SOAP-RPC style wrapping/unwrapping (section 7 of SOAP 1.1).

An RPC request body is ``<m:opName xmlns:m=iface>`` containing one child
element per parameter; the response is ``<m:opNameResponse>`` with one
``<return>``-style child per result.  Parameters are carried as strings —
the echo workloads and registry/mailbox operations in this reproduction
only need string typing, matching the paper's test messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SoapError
from repro.soap.constants import SoapVersion
from repro.soap.envelope import Envelope
from repro.soap.fault import Fault
from repro.xmlmini import Element, QName


@dataclass
class RpcRequest:
    """Decoded RPC call: interface namespace, operation, ordered params."""

    interface_ns: str
    operation: str
    params: list[tuple[str, str]] = field(default_factory=list)

    def param(self, name: str, default: str | None = None) -> str | None:
        for k, v in self.params:
            if k == name:
                return v
        return default

    def require_param(self, name: str) -> str:
        value = self.param(name)
        if value is None:
            raise SoapError(f"RPC call {self.operation!r} missing param {name!r}")
        return value


@dataclass
class RpcResponse:
    """Decoded RPC result: operation echo plus ordered result values."""

    interface_ns: str
    operation: str
    results: list[tuple[str, str]] = field(default_factory=list)

    def result(self, name: str, default: str | None = None) -> str | None:
        for k, v in self.results:
            if k == name:
                return v
        return default


def _build_wrapper(
    ns: str, wrapper_name: str, items: list[tuple[str, str]]
) -> Element:
    wrapper = Element(QName(ns, wrapper_name))
    for name, value in items:
        wrapper.add(Element(QName(None, name), text=value))
    return wrapper


def build_rpc_request(
    req: RpcRequest,
    headers: list[Element] | None = None,
    version: SoapVersion = SoapVersion.V11,
) -> Envelope:
    """Wrap an :class:`RpcRequest` into an envelope."""
    body = _build_wrapper(req.interface_ns, req.operation, req.params)
    return Envelope(body, headers=headers, version=version)


def build_rpc_response(
    resp: RpcResponse,
    headers: list[Element] | None = None,
    version: SoapVersion = SoapVersion.V11,
) -> Envelope:
    """Wrap an :class:`RpcResponse`; the wrapper is ``<op>Response``."""
    body = _build_wrapper(
        resp.interface_ns, resp.operation + "Response", resp.results
    )
    return Envelope(body, headers=headers, version=version)


def _unwrap(body: Element) -> list[tuple[str, str]]:
    items: list[tuple[str, str]] = []
    for child in body.element_children():
        items.append((child.name.local, child.full_text()))
    return items


def parse_rpc_request(envelope: Envelope) -> RpcRequest:
    """Decode an envelope as an RPC call."""
    body = envelope.body
    if body is None:
        raise SoapError("RPC request envelope has an empty body")
    if envelope.is_fault():
        fault = Fault.from_element(body)
        raise SoapError(f"expected RPC request, got fault: {fault.reason}")
    if body.name.ns is None:
        raise SoapError("RPC wrapper element must be namespace-qualified")
    return RpcRequest(
        interface_ns=body.name.ns,
        operation=body.name.local,
        params=_unwrap(body),
    )


def parse_rpc_response(envelope: Envelope) -> RpcResponse:
    """Decode an envelope as an RPC result; raises on fault bodies."""
    body = envelope.body
    if body is None:
        raise SoapError("RPC response envelope has an empty body")
    if envelope.is_fault():
        fault = Fault.from_element(body)
        from repro.errors import SoapFaultError

        raise SoapFaultError(fault.code, fault.reason, fault.detail)
    if body.name.ns is None:
        raise SoapError("RPC response wrapper must be namespace-qualified")
    op = body.name.local
    if op.endswith("Response"):
        op = op[: -len("Response")]
    return RpcResponse(
        interface_ns=body.name.ns,
        operation=op,
        results=_unwrap(body),
    )

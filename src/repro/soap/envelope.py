"""SOAP envelope construction and parsing.

An :class:`Envelope` owns a list of header blocks (arbitrary
:class:`~repro.xmlmini.Element` trees, e.g. WS-Addressing headers) and one
body payload element (or a Fault).  The dispatcher forwards envelopes
whole, rewriting only addressing headers, so the model keeps unknown
headers and payloads byte-faithful through a parse/serialize round trip.
"""

from __future__ import annotations

from repro.errors import SoapError
from repro.soap.constants import SoapVersion
from repro.xmlmini import Element, QName, parse, write_document


class Envelope:
    """A SOAP message: headers + one body element.

    ``body`` may be None only for an empty-body message (used by some
    one-way acknowledgements).
    """

    __slots__ = ("version", "headers", "body")

    def __init__(
        self,
        body: Element | None,
        headers: list[Element] | None = None,
        version: SoapVersion = SoapVersion.V11,
    ) -> None:
        self.version = version
        self.headers: list[Element] = list(headers or [])
        self.body = body

    # -- header access -------------------------------------------------------
    def find_header(self, name: QName) -> Element | None:
        """First header block with the given qualified name, or None."""
        for h in self.headers:
            if h.name == name:
                return h
        return None

    def find_headers(self, ns: str) -> list[Element]:
        """All header blocks whose name lives in namespace ``ns``."""
        return [h for h in self.headers if h.name.ns == ns]

    def remove_headers(self, ns: str) -> list[Element]:
        """Remove and return all header blocks in namespace ``ns``."""
        removed = [h for h in self.headers if h.name.ns == ns]
        self.headers = [h for h in self.headers if h.name.ns != ns]
        return removed

    def copy(self) -> "Envelope":
        return Envelope(
            self.body.copy() if self.body is not None else None,
            headers=[h.copy() for h in self.headers],
            version=self.version,
        )

    # -- XML mapping -------------------------------------------------------
    def to_element(self) -> Element:
        ns = self.version.ns
        root = Element(QName(ns, "Envelope"))
        if self.headers:
            header = Element(QName(ns, "Header"))
            header.children.extend(self.headers)
            root.children.append(header)
        body = Element(QName(ns, "Body"))
        if self.body is not None:
            body.children.append(self.body)
        root.children.append(body)
        return root

    def to_bytes(self) -> bytes:
        """Wire form: XML declaration + UTF-8 encoded document."""
        return write_document(self.to_element())

    @classmethod
    def from_element(cls, root: Element) -> "Envelope":
        if root.name.local != "Envelope" or root.name.ns is None:
            raise SoapError(f"root element is not a SOAP Envelope: {root.name.clark()}")
        try:
            version = SoapVersion.from_ns(root.name.ns)
        except ValueError as exc:
            raise SoapError(str(exc)) from None
        ns = version.ns

        headers: list[Element] = []
        body_el: Element | None = None
        seen_body = False
        for child in root.element_children():
            if child.name == QName(ns, "Header"):
                if headers or seen_body:
                    raise SoapError("Header must appear once, before Body")
                headers = list(child.element_children())
            elif child.name == QName(ns, "Body"):
                if seen_body:
                    raise SoapError("duplicate Body element")
                seen_body = True
                elems = list(child.element_children())
                if len(elems) > 1:
                    raise SoapError("Body must contain at most one element")
                body_el = elems[0] if elems else None
            else:
                raise SoapError(f"unexpected envelope child {child.name.clark()}")
        if not seen_body:
            raise SoapError("envelope has no Body")
        return cls(body_el, headers=headers, version=version)

    @classmethod
    def from_bytes(cls, data: bytes | str) -> "Envelope":
        return cls.from_element(parse(data))

    # -- fault helpers ---------------------------------------------------
    def is_fault(self) -> bool:
        """True when the body element is a SOAP Fault of this version."""
        return (
            self.body is not None
            and self.body.name == QName(self.version.ns, "Fault")
        )

    def __repr__(self) -> str:
        body = self.body.name.clark() if self.body is not None else None
        return (
            f"Envelope({self.version.name}, headers={len(self.headers)}, "
            f"body={body!r})"
        )

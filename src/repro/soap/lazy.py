"""Zero-copy envelope: parsed headers over an unparsed Body slice.

The dispatchers are header processors — they read and rewrite the
WS-Addressing (and tracing) header blocks and forward the Body *verbatim*,
never looking inside it.  :class:`LazyEnvelope` exploits that: the
document is scanned (:func:`~repro.xmlmini.scan.scan_envelope`) rather
than parsed, only the Header region becomes an Element tree, and
:meth:`LazyEnvelope.to_bytes` re-serializes *only* the headers, splicing
them between the untouched preamble and Body byte slices of the original
message.  A 256 KB payload costs the same header work as a 256 B one.

``LazyEnvelope`` mirrors the :class:`~repro.soap.envelope.Envelope`
header API (``headers``, ``find_header``, ``find_headers``,
``remove_headers``, ``copy``, ``is_fault``, ``version``) so
``repro.wsa.rules.rewrite_for_forwarding`` and the tracing helpers work
on either without knowing which they hold.  ``.body`` parses the Body
slice on first access — touching it forfeits the savings for this
message but keeps inspectors and services working unmodified.

Anything the scanner cannot prove safe raises
:class:`~repro.errors.FastPathUnsupported`; :func:`parse_envelope` is the
front door that counts the outcome (``soap_fastpath_total{outcome=…}``)
and falls back to the full parse.
"""

from __future__ import annotations

from repro.errors import FastPathUnsupported, SoapError, XmlError, XmlParseError
from repro.soap.constants import SOAP11_NS, SOAP12_NS, SoapVersion
from repro.soap.envelope import Envelope
from repro.wsa.constants import WSA_NS
from repro.xmlmini import Element, QName, serialize
from repro.xmlmini.parser import parse_fragment
from repro.xmlmini.scan import EnvelopeScan, scan_envelope

#: Header namespaces this stack understands end to end.  A header block
#: carrying ``mustUnderstand`` in any *other* namespace forces the slow
#: path: the full pipeline (not the splicer) must decide whether to fault.
#: "urn:repro:obs" is repro.obs.trace.TRACE_NS, spelled out to keep this
#: leaf module import-light (tests assert the two stay in sync).
KNOWN_HEADER_NAMESPACES = frozenset({WSA_NS, "urn:repro:obs"})

_SOAP_NAMESPACES = (SOAP11_NS, SOAP12_NS)
_MUST_UNDERSTAND_TRUE = ("1", "true")


class LazyEnvelope:
    """A scanned SOAP message: live header Elements + opaque Body bytes.

    Construct via :meth:`from_bytes` (or :func:`parse_envelope`).  Headers
    are real, mutable :class:`~repro.xmlmini.Element` trees; the Body is a
    byte slice of the original message, parsed only if ``.body`` is read.
    """

    __slots__ = ("version", "headers", "_scan", "_body", "_body_parsed")

    def __init__(
        self,
        scan: EnvelopeScan,
        headers: list[Element],
        version: SoapVersion,
    ) -> None:
        self.version = version
        self.headers = headers
        self._scan = scan
        self._body: Element | None = None
        self._body_parsed = False

    @classmethod
    def from_bytes(cls, data: bytes | bytearray | memoryview | str) -> "LazyEnvelope":
        """Scan ``data`` into a LazyEnvelope.

        Raises :class:`~repro.errors.FastPathUnsupported` when the message
        cannot be proven safe for splice-forwarding (the caller should fall
        back to :meth:`Envelope.from_bytes`, which is the arbiter of
        validity).
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        try:
            scan = scan_envelope(data)
        except FastPathUnsupported as exc:
            child = getattr(exc, "child_name", None)
            if (
                child is not None
                and child.local in ("Header", "Body")
                and child.ns in _SOAP_NAMESPACES
            ):
                raise FastPathUnsupported(
                    "version_mismatch",
                    f"{child.local} in {child.ns} inside a different-version envelope",
                ) from None
            raise
        if scan.root_name.local != "Envelope" or scan.root_name.ns is None:
            raise FastPathUnsupported(
                "not_envelope", f"root is {scan.root_name.clark()}"
            )
        try:
            version = SoapVersion.from_ns(scan.root_name.ns)
        except ValueError:
            raise FastPathUnsupported(
                "not_envelope", f"root namespace {scan.root_name.ns!r}"
            ) from None
        if scan.body_children > 1:
            # the slow path rejects multi-child bodies; never splice one
            raise FastPathUnsupported("structure", "Body has multiple children")
        headers = (
            list(scan.header.element_children()) if scan.header is not None else []
        )
        mu = QName(version.ns, "mustUnderstand")
        for block in headers:
            value = block.attrs.get(mu)
            if (
                value is not None
                and value.strip() in _MUST_UNDERSTAND_TRUE
                and block.name.ns not in KNOWN_HEADER_NAMESPACES
            ):
                raise FastPathUnsupported(
                    "mustunderstand",
                    f"unknown mustUnderstand header {block.name.clark()}",
                )
        return cls(scan, headers, version)

    # -- header access (same contract as Envelope) ---------------------------
    def find_header(self, name: QName) -> Element | None:
        """First header block with the given qualified name, or None."""
        for h in self.headers:
            if h.name == name:
                return h
        return None

    def find_headers(self, ns: str) -> list[Element]:
        """All header blocks whose name lives in namespace ``ns``."""
        return [h for h in self.headers if h.name.ns == ns]

    def remove_headers(self, ns: str) -> list[Element]:
        """Remove and return all header blocks in namespace ``ns``."""
        removed = [h for h in self.headers if h.name.ns == ns]
        self.headers = [h for h in self.headers if h.name.ns != ns]
        return removed

    def copy(self) -> "LazyEnvelope":
        """Independent header copy over the same (immutable) scanned bytes."""
        return LazyEnvelope(
            self._scan, [h.copy() for h in self.headers], self.version
        )

    # -- body ----------------------------------------------------------------
    @property
    def body(self) -> Element | None:
        """The Body payload element, parsed from the slice on first access."""
        if not self._body_parsed:
            self._body = self._parse_body()
            self._body_parsed = True
        return self._body

    @property
    def body_bytes(self) -> memoryview:
        """The whole ``<Body>…</Body>`` region, zero-copy."""
        return self._scan.body_view

    def _parse_body(self) -> Element | None:
        scan = self._scan
        if scan.body_children == 0:
            return None
        try:
            text = scan.data[scan.body_start : scan.body_end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise XmlParseError(f"Body is not valid UTF-8: {exc}") from None
        body_el = parse_fragment(text, scan.scope)
        elems = list(body_el.element_children())
        return elems[0] if elems else None

    def is_fault(self) -> bool:
        """True when the body element is a SOAP Fault of this version —
        answered from the scan, without parsing the Body."""
        return self._scan.body_first_child == QName(self.version.ns, "Fault")

    # -- conversions ---------------------------------------------------------
    def materialize(self) -> Envelope:
        """Full DOM form (parses the Body).  The result shares this
        envelope's header/body Elements — treat it as taking ownership."""
        return Envelope(self.body, headers=list(self.headers), version=self.version)

    def to_element(self) -> Element:
        return self.materialize().to_element()

    def to_bytes(self) -> bytes:
        """Wire form by byte splicing.

        Only the (rewritten) headers are serialized; everything else —
        XML declaration, Envelope start tag with all its namespace
        declarations, the whole Body, the Envelope end tag — is the
        original bytes, copied once into the output and never re-encoded.
        """
        scan = self._scan
        if not self.headers:
            if scan.splice_start == scan.tail_start:
                return scan.data  # no headers before, none now: verbatim
            return scan.data[: scan.splice_start] + scan.data[scan.tail_start :]
        header = Element(QName(self.version.ns, "Header"))
        header.children.extend(self.headers)
        text = serialize(header)
        if scan.scope.get(None) is not None:
            # The spliced fragment sits inside the root's scope, and the
            # root declares a *default* namespace the serializer knows
            # nothing about (it only ever emits prefixed names).  Reset it
            # on the Header so unprefixed names inside stay unnamespaced.
            cut = text.index(" ") if " " in text[: text.index(">")] else text.index(">")
            text = text[:cut] + ' xmlns=""' + text[cut:]
        return b"".join(
            (
                memoryview(scan.data)[: scan.splice_start],
                text.encode("utf-8"),
                memoryview(scan.data)[scan.tail_start :],
            )
        )

    def __repr__(self) -> str:
        body = (
            self._scan.body_first_child.clark()
            if self._scan.body_first_child is not None
            else None
        )
        return (
            f"LazyEnvelope({self.version.name}, headers={len(self.headers)}, "
            f"body={body!r}, body_bytes={self._scan.body_end - self._scan.body_start})"
        )


def parse_envelope(
    data: bytes | bytearray | memoryview | str,
    counter=None,
    fast: bool = True,
) -> "LazyEnvelope | Envelope":
    """Parse wire bytes, preferring the zero-copy fast path.

    ``counter`` is a labelled-counter family (``soap_fastpath_total``):
    every call records exactly one outcome — ``fast`` on success,
    ``disabled`` when ``fast=False``, or the scanner's bail-out reason
    (``doctype``, ``encoding``, ``malformed``, ``structure``,
    ``mustunderstand``, ``version_mismatch``, ``trailing_content``,
    ``not_envelope``, ``unsupported``) when it falls back.  Invalid
    documents raise the slow path's usual ``XmlError``/``SoapError``.
    """
    if fast:
        try:
            envelope = LazyEnvelope.from_bytes(data)
        except FastPathUnsupported as exc:
            if counter is not None:
                counter.labels(outcome=exc.reason).inc()
        else:
            if counter is not None:
                counter.labels(outcome="fast").inc()
            return envelope
    elif counter is not None:
        counter.labels(outcome="disabled").inc()
    if isinstance(data, (bytearray, memoryview)):
        data = bytes(data)
    return Envelope.from_bytes(data)


def fastpath_counter(metrics):
    """The ``soap_fastpath_total`` counter family on ``metrics``."""
    return metrics.counter(
        "soap_fastpath_total",
        "zero-copy envelope parses, by outcome (fast / disabled / bail-out reason)",
    )

"""Binary XML codec (paper §2 future work).

"Our WSD currently only supports SOAP/XML messages but extensions to
other protocols, such as binary XML, may be an interesting topic to
investigate in future work."

This module investigates exactly that: a compact, self-contained binary
encoding of the :mod:`repro.xmlmini` infoset, so the dispatcher can carry
the same envelopes with less bandwidth and cheaper parsing.  The format
(``application/x-repro-binxml``) is a token stream:

- header: magic ``BX1`` + varint string-table size + the UTF-8 string
  table (each entry varint-length-prefixed).  Names, namespace URIs and
  attribute values all intern into the table, so the repeated SOAP/WSA
  URIs that dominate envelope bytes are stored once.
- body tokens: ``ELEM ns local nattrs [name-ref value-ref]* nchildren``
  then the children (elements or ``TEXT ref``), depth-first.

Everything is varint-indexed into the string table; there is no escaping,
entity handling, or whitespace — which is where both the size and speed
savings come from.

>>> from repro.workload.echo import make_echo_request
>>> from repro.soap.binxml import encode_element, decode_element
>>> tree = make_echo_request().to_element()
>>> decode_element(encode_element(tree)) == tree
True
"""

from __future__ import annotations

from repro.errors import XmlError
from repro.xmlmini import Element, QName

#: content type advertised for binary-encoded envelopes
BINXML_CONTENT_TYPE = "application/x-repro-binxml"

_MAGIC = b"BX1"
_TOK_ELEM = 0x01
_TOK_TEXT = 0x02
#: string-table index reserved for "no namespace"
_NO_NS = 0


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise XmlError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise XmlError("truncated varint in binary XML")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 35:
            raise XmlError("varint too large in binary XML")


class _StringTable:
    """Interning writer: every distinct string is stored once."""

    def __init__(self) -> None:
        self._index: dict[str, int] = {"": _NO_NS}
        self.entries: list[str] = [""]

    def ref(self, text: str) -> int:
        idx = self._index.get(text)
        if idx is None:
            idx = len(self.entries)
            self._index[text] = idx
            self.entries.append(text)
        return idx


def _collect(el: Element, table: _StringTable, body: bytearray) -> None:
    body.append(_TOK_ELEM)
    _write_varint(body, table.ref(el.name.ns or ""))
    _write_varint(body, table.ref(el.name.local))
    _write_varint(body, len(el.attrs))
    for name, value in el.attrs.items():
        _write_varint(body, table.ref(name.ns or ""))
        _write_varint(body, table.ref(name.local))
        _write_varint(body, table.ref(value))
    children = [c for c in el.children if not (isinstance(c, str) and not c)]
    _write_varint(body, len(children))
    for child in children:
        if isinstance(child, str):
            body.append(_TOK_TEXT)
            _write_varint(body, table.ref(child))
        else:
            _collect(child, table, body)


def encode_element(root: Element) -> bytes:
    """Encode an element tree to the binary format."""
    table = _StringTable()
    body = bytearray()
    _collect(root, table, body)

    out = bytearray(_MAGIC)
    _write_varint(out, len(table.entries))
    for entry in table.entries:
        raw = entry.encode("utf-8")
        _write_varint(out, len(raw))
        out.extend(raw)
    out.extend(body)
    return bytes(out)


def _decode_node(data: bytes, pos: int, table: list[str]) -> tuple[Element, int]:
    if pos >= len(data) or data[pos] != _TOK_ELEM:
        raise XmlError("expected element token in binary XML")
    pos += 1
    ns_ref, pos = _read_varint(data, pos)
    local_ref, pos = _read_varint(data, pos)
    try:
        ns = table[ns_ref] or None
        local = table[local_ref]
    except IndexError:
        raise XmlError("string-table reference out of range") from None
    el = Element(QName(ns, local))
    nattrs, pos = _read_varint(data, pos)
    for _ in range(nattrs):
        ans_ref, pos = _read_varint(data, pos)
        aname_ref, pos = _read_varint(data, pos)
        avalue_ref, pos = _read_varint(data, pos)
        try:
            el.attrs[QName(table[ans_ref] or None, table[aname_ref])] = table[
                avalue_ref
            ]
        except IndexError:
            raise XmlError("string-table reference out of range") from None
    nchildren, pos = _read_varint(data, pos)
    for _ in range(nchildren):
        if pos >= len(data):
            raise XmlError("truncated binary XML body")
        if data[pos] == _TOK_TEXT:
            ref, pos = _read_varint(data, pos + 1)
            try:
                el.children.append(table[ref])
            except IndexError:
                raise XmlError("string-table reference out of range") from None
        else:
            child, pos = _decode_node(data, pos, table)
            el.children.append(child)
    return el, pos


def decode_element(data: bytes) -> Element:
    """Decode the binary format back to an element tree."""
    if not data.startswith(_MAGIC):
        raise XmlError("not a binary XML document (bad magic)")
    pos = len(_MAGIC)
    table_size, pos = _read_varint(data, pos)
    if table_size < 1 or table_size > 1_000_000:
        raise XmlError(f"implausible string table size {table_size}")
    table: list[str] = []
    for _ in range(table_size):
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise XmlError("truncated string table in binary XML")
        try:
            table.append(data[pos:end].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise XmlError(f"bad UTF-8 in string table: {exc}") from None
        pos = end
    root, pos = _decode_node(data, pos, table)
    if pos != len(data):
        raise XmlError("trailing bytes after binary XML document")
    return root


# -- envelope-level conveniences ------------------------------------------

def encode_envelope(envelope) -> bytes:
    """Binary wire form of a SOAP envelope."""
    return encode_element(envelope.to_element())


def decode_envelope(data: bytes):
    """Parse a binary-encoded SOAP envelope."""
    from repro.soap.envelope import Envelope

    return Envelope.from_element(decode_element(data))


def sniff_and_parse(body: bytes, content_type: str | None = None):
    """Parse an envelope from either encoding.

    Dispatch by content type when given; otherwise by the magic bytes.
    This is the hook a protocol-extended dispatcher uses to accept both.
    """
    from repro.soap.envelope import Envelope

    if content_type is not None and BINXML_CONTENT_TYPE in content_type:
        return decode_envelope(body)
    if body.startswith(_MAGIC):
        return decode_envelope(body)
    return Envelope.from_bytes(body)

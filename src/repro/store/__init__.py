"""Durable store-and-forward: the write-ahead message journal.

The paper's future-work list puts the dispatcher's reliability story in a
database ("messages stored in DB with expiration time"); this package is
that database.  :class:`MessageJournal` is an append-only SQLite journal
of every message a durable component has accepted responsibility for —
see :mod:`repro.store.journal` for the state machine, the group-commit
write path, and the dead-letter queue.
"""

from repro.store.journal import (
    ABSORBED,
    DEAD,
    DELIVERED,
    ENQUEUED,
    JournalRecord,
    MessageJournal,
    discover_shard_journals,
    merged_recovery_report,
    shard_journal_path,
)

__all__ = [
    "ABSORBED",
    "DEAD",
    "DELIVERED",
    "ENQUEUED",
    "JournalRecord",
    "MessageJournal",
    "discover_shard_journals",
    "merged_recovery_report",
    "shard_journal_path",
]

"""Append-only write-ahead message journal (paper future work §4.4).

The paper is explicit that the dispatcher's reliability story ends in a
database: "messages stored in DB with expiration time".  This module is
that database — an append-only journal of every message a durable
component has taken responsibility for, built on the standard library's
SQLite exactly like :class:`~repro.util.sqldb.SqliteMap` (no external
dependencies).

Each record moves through a tiny state machine::

    enqueued ──► delivered   (destination confirmed receipt)
             ──► absorbed    (consumed internally: duplicate suppressed,
                              handed to a durable hold store, rejected
                              before the 202 ack, ...)
             ──► dead        (poison: retries exhausted, expired,
                              unroutable, ... — the dead-letter queue)

Transitions are monotonic: a record leaves ``enqueued`` exactly once and
terminal states never change, so replaying a mark is a no-op.

Durability vs. throughput is the ``sync`` knob:

- ``"group"`` (default) — an :meth:`append` blocks until its record is
  committed, but concurrent appenders share one transaction (one fsync):
  the classic group commit.  A small gathering window
  (``group_window``) lets a burst of writers pile onto the same commit.
- ``"always"`` — every append commits immediately
  (``PRAGMA synchronous=FULL``); the slow, maximally-paranoid mode.
- ``"lazy"`` — appends never block; the buffer is committed when it
  reaches ``flush_threshold`` ops or on :meth:`flush`.  Used by the
  deterministic simulation (no real threads, no real disks) and by
  benchmarks measuring the journaling ceiling.

State *marks* (delivered/absorbed/dead) are always buffered and never
block, in every mode: losing a mark in a crash only means the message is
replayed on recovery, and the receiving side's
:class:`~repro.reliable.holdretry.DuplicateFilter` absorbs the replay.
That asymmetry — fsync the intake, batch the bookkeeping — is what keeps
the fast path fast (see ``benchmarks/bench_journal.py``).

Every record carries a CRC over its identifying fields and body.  The
recovery scan (:meth:`undelivered`) validates it and *skips* records
that fail — a torn final write after a hard crash surfaces as one
``dead(corrupt)`` entry, never as a recovery crash.

Expiry deadlines are stored as wall-clock times (``now_fn``, default
:func:`time.time`) so they survive restarts — unlike the monotonic
clocks the in-memory stores use, which restart from an arbitrary zero.
"""

from __future__ import annotations

import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import JournalError

#: record states
ENQUEUED = "enqueued"
DELIVERED = "delivered"
ABSORBED = "absorbed"
DEAD = "dead"

_TERMINAL = (DELIVERED, ABSORBED, DEAD)
_SYNC_MODES = ("group", "always", "lazy")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal (
    seq        INTEGER PRIMARY KEY,
    message_id TEXT NOT NULL,
    kind       TEXT NOT NULL,
    target     TEXT NOT NULL,
    body       BLOB NOT NULL,
    crc        INTEGER NOT NULL,
    state      TEXT NOT NULL DEFAULT 'enqueued',
    attempts   INTEGER NOT NULL DEFAULT 0,
    expires_at REAL,
    reason     TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS journal_state_idx ON journal(state);
CREATE INDEX IF NOT EXISTS journal_mid_idx ON journal(message_id);
"""

_COLUMNS = (
    "seq, message_id, kind, target, body, crc, state, attempts, "
    "expires_at, reason, created_at, updated_at"
)


def _crc(message_id: str, kind: str, target: str, body: bytes) -> int:
    check = zlib.crc32(message_id.encode("utf-8"))
    check = zlib.crc32(kind.encode("utf-8"), check)
    check = zlib.crc32(target.encode("utf-8"), check)
    return zlib.crc32(body, check)


@dataclass
class JournalRecord:
    """One journaled message (decoded row)."""

    seq: int
    message_id: str
    kind: str
    target: str
    body: bytes
    state: str
    attempts: int
    expires_at: float | None
    reason: str | None
    created_at: float
    updated_at: float


class MessageJournal:
    """The durable store-and-forward journal.

    ``path=":memory:"`` gives a private in-memory database — still the
    real SQL machinery, used by tests and by the simulation (where the
    journal *object* plays the disk that survives a simulated host
    crash).  A filesystem path survives process death, which is what the
    SIGKILL crash-recovery test exercises.

    ``now_fn`` supplies wall-clock time for record stamps and expiry
    deadlines; the simulation injects its own clock for determinism.
    """

    def __init__(
        self,
        path: str = ":memory:",
        sync: str = "group",
        group_window: float = 0.002,
        flush_threshold: int = 128,
        now_fn: Callable[[], float] | None = None,
        flight: "object | None" = None,
    ) -> None:
        if sync not in _SYNC_MODES:
            raise JournalError(f"unknown sync mode {sync!r}; use one of {_SYNC_MODES}")
        self.path = path
        self.sync = sync
        self.group_window = group_window
        self.flush_threshold = flush_threshold
        self.now_fn = now_fn or time.time
        if flight is None:
            from repro.obs.flight import default_flight_recorder

            flight = default_flight_recorder()
        #: flight recorder for state transitions worth a postmortem
        #: (dead-letter marks, buffered writes lost to a crash)
        self.flight = flight
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._db_lock = threading.Lock()
        with self._db_lock:
            # WAL keeps readers off the writers' backs on real files (a
            # silent no-op for :memory:); FULL sync only in paranoid mode.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                "PRAGMA synchronous=" + ("FULL" if sync == "always" else "NORMAL")
            )
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute("SELECT MAX(seq) FROM journal").fetchone()
        self._seq = int(row[0] or 0)
        #: group-commit state: buffered ops, tickets, and the leader flag
        self._cond = threading.Condition()
        self._pending: list[tuple[str, tuple]] = []
        self._op = 0
        self._committed = 0
        self._committing = False
        self._closed = False
        #: observability counters (monotonic, in-memory)
        self._n_appended = 0
        self._n_commits = 0
        self._n_committed_ops = 0
        self._n_corrupt_skipped = 0

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self.flush()
        with self._cond:
            self._closed = True
        with self._db_lock:
            self._conn.close()

    def __enter__(self) -> "MessageJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def wall_now(self) -> float:
        """The journal's wall-clock time (expiry deadlines live on it)."""
        return self.now_fn()

    # -- write path --------------------------------------------------------
    def append(
        self,
        message_id: str | None,
        target: str,
        body: bytes,
        kind: str = "inbound",
        expires_at: float | None = None,
    ) -> int:
        """Journal one message; returns its sequence number.

        In ``group``/``always`` modes the call blocks until the record is
        committed — the caller may then ack the message ("journal before
        ack").  ``message_id=None`` synthesizes a per-record id (such
        messages cannot be deduplicated on redelivery, matching the
        hold store's rule).
        """
        with self._cond:
            if self._closed:
                raise JournalError("append on a closed journal")
            self._seq += 1
            seq = self._seq
            mid = message_id or f"jrnl:{seq}"
            now = self.now_fn()
            self._pending.append((
                "INSERT INTO journal(" + _COLUMNS + ") "
                "VALUES(?,?,?,?,?,?,?,0,?,NULL,?,?)",
                (
                    seq, mid, kind, target, body,
                    _crc(mid, kind, target, body),
                    ENQUEUED, expires_at, now, now,
                ),
            ))
            self._op += 1
            ticket = self._op
            self._n_appended += 1
        if self.sync == "lazy":
            self._maybe_flush()
        else:
            self._ensure_committed(ticket, gather=(self.sync == "group"))
        return seq

    def mark(self, seq: int, state: str, reason: str | None = None) -> None:
        """Record a transition out of ``enqueued`` (buffered, never blocks).

        Terminal states are sticky — the SQL guard only matches records
        still ``enqueued``, so repeated or conflicting marks are no-ops.
        """
        if state not in _TERMINAL:
            raise JournalError(f"cannot mark state {state!r}")
        with self._cond:
            if self._closed:
                return
            self._pending.append((
                "UPDATE journal SET state=?, reason=?, updated_at=? "
                "WHERE seq=? AND state=?",
                (state, reason, self.now_fn(), seq, ENQUEUED),
            ))
            self._op += 1
        if state == DEAD:
            self.flight.record(
                "journal-dead", "journal", t=self.now_fn(),
                seq=seq, reason=reason,
            )
        self._maybe_flush()

    def note_attempt(self, seq: int) -> None:
        """Count one delivery attempt against a record (buffered)."""
        with self._cond:
            if self._closed:
                return
            self._pending.append((
                "UPDATE journal SET attempts=attempts+1, updated_at=? WHERE seq=?",
                (self.now_fn(), seq),
            ))
            self._op += 1
        self._maybe_flush()

    def flush(self) -> None:
        """Commit everything buffered so far (blocks until durable)."""
        with self._cond:
            if self._closed:
                return
            ticket = self._op
            if self._committed >= ticket:
                return
        self._ensure_committed(ticket, gather=False)

    def drop_unflushed(self) -> int:
        """Crash-simulation hook: discard buffered, uncommitted operations.

        This is exactly what process death does to the lazy buffer; the
        deterministic simulation and tests call it instead of killing a
        real process.  Returns the number of operations lost.
        """
        with self._cond:
            dropped = len(self._pending)
            self._pending.clear()
            self._committed = self._op
        if dropped:
            self.flight.record(
                "journal-lost-writes", "journal", t=self.now_fn(),
                dropped=dropped,
            )
        return dropped

    # -- group commit ------------------------------------------------------
    def _maybe_flush(self) -> None:
        with self._cond:
            if len(self._pending) < self.flush_threshold or self._committing:
                return
            ticket = self._op
        self._ensure_committed(ticket, gather=False)

    def _ensure_committed(self, ticket: int, gather: bool) -> None:
        """Block until op ``ticket`` is committed; the first arrival
        becomes the commit leader and flushes the whole buffer in one
        transaction (one fsync shared by every waiter)."""
        while True:
            with self._cond:
                if self._committed >= ticket:
                    return
                if self._committing:
                    self._cond.wait(0.05)
                    continue
                self._committing = True
            if gather and self.group_window > 0:
                time.sleep(self.group_window)
            self._commit_buffer()

    def _commit_buffer(self) -> None:
        with self._cond:
            ops, self._pending = self._pending, []
            top = self._op
        try:
            if ops:
                with self._db_lock, self._conn:
                    for sql, params in ops:
                        self._conn.execute(sql, params)
                self._n_commits += 1
                self._n_committed_ops += len(ops)
        finally:
            with self._cond:
                self._committed = max(self._committed, top)
                self._committing = False
                self._cond.notify_all()

    # -- read path ---------------------------------------------------------
    def _rows(self, where: str, params: tuple = ()) -> list[tuple]:
        self.flush()
        with self._db_lock:
            return self._conn.execute(
                f"SELECT {_COLUMNS} FROM journal WHERE {where} ORDER BY seq",
                params,
            ).fetchall()

    @staticmethod
    def _decode(row: tuple) -> JournalRecord:
        return JournalRecord(
            seq=row[0], message_id=row[1], kind=row[2], target=row[3],
            body=bytes(row[4] or b""), state=row[6], attempts=row[7],
            expires_at=row[8], reason=row[9], created_at=row[10],
            updated_at=row[11],
        )

    def undelivered(self, kind: str | None = None) -> list[JournalRecord]:
        """Every checksum-valid record still ``enqueued``, in order.

        Records whose CRC does not match their fields — a torn write from
        a crash mid-commit — are skipped, counted, and dead-lettered as
        ``corrupt`` rather than crashing recovery.
        """
        if kind is None:
            rows = self._rows("state=?", (ENQUEUED,))
        else:
            rows = self._rows("state=? AND kind=?", (ENQUEUED, kind))
        out: list[JournalRecord] = []
        for row in rows:
            rec = self._decode(row)
            if _crc(rec.message_id, rec.kind, rec.target, rec.body) != row[5]:
                self._n_corrupt_skipped += 1
                self.mark(rec.seq, DEAD, reason="corrupt")
                continue
            out.append(rec)
        return out

    def get(self, seq: int) -> JournalRecord | None:
        rows = self._rows("seq=?", (seq,))
        return self._decode(rows[0]) if rows else None

    def pending_count(self) -> int:
        self.flush()
        with self._db_lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM journal WHERE state=?", (ENQUEUED,)
            ).fetchone()[0]

    def counts(self) -> dict[str, int]:
        """Record counts by state."""
        self.flush()
        with self._db_lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM journal GROUP BY state"
            ).fetchall()
        return {state: n for state, n in rows}

    # -- dead-letter queue -------------------------------------------------
    def dead_letters(self, limit: int = 100) -> list[JournalRecord]:
        """Most recent dead records (newest first)."""
        self.flush()
        with self._db_lock:
            rows = self._conn.execute(
                f"SELECT {_COLUMNS} FROM journal WHERE state=? "
                "ORDER BY seq DESC LIMIT ?",
                (DEAD, limit),
            ).fetchall()
        return [self._decode(row) for row in rows]

    def dead_counts(self) -> dict[str, int]:
        """Dead-letter counts keyed by reason."""
        self.flush()
        with self._db_lock:
            rows = self._conn.execute(
                "SELECT COALESCE(reason, 'unknown'), COUNT(*) FROM journal "
                "WHERE state=? GROUP BY reason",
                (DEAD,),
            ).fetchall()
        return {reason: n for reason, n in rows}

    def deadletter_snapshot(self, limit: int = 20) -> dict:
        """The ``GET /deadletters`` payload: counts plus recent entries."""
        recent = [
            {
                "seq": rec.seq,
                "message_id": rec.message_id,
                "kind": rec.kind,
                "target": rec.target,
                "reason": rec.reason,
                "attempts": rec.attempts,
                "bytes": len(rec.body),
                "created_at": rec.created_at,
                "updated_at": rec.updated_at,
            }
            for rec in self.dead_letters(limit)
        ]
        by_reason = self.dead_counts()
        return {
            "total": sum(by_reason.values()),
            "by_reason": by_reason,
            "recent": recent,
        }

    # -- maintenance -------------------------------------------------------
    def checkpoint(self, keep_dead: bool = True) -> dict[str, int]:
        """Flush, then drop terminal records the journal no longer needs.

        Delivered/absorbed records exist only so a crash between delivery
        and mark can be resolved; once committed they are garbage.  Dead
        records are kept by default (they *are* the dead-letter queue);
        ``keep_dead=False`` purges them too.
        """
        self.flush()
        states = (DELIVERED, ABSORBED) if keep_dead else _TERMINAL
        marks = ",".join("?" for _ in states)
        with self._db_lock, self._conn:
            cursor = self._conn.execute(
                f"DELETE FROM journal WHERE state IN ({marks})", states
            )
            removed = cursor.rowcount
        return {
            "removed": removed,
            "pending": self.pending_count(),
            "dead": 0 if not keep_dead else self.counts().get(DEAD, 0),
        }

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        with self._cond:
            buffered = len(self._pending)
        return {
            "appended": self._n_appended,
            "commits": self._n_commits,
            "committed_ops": self._n_committed_ops,
            "buffered_ops": buffered,
            "corrupt_skipped": self._n_corrupt_skipped,
        }


# -- sharded journals ------------------------------------------------------
#
# The shard supervisor gives every dispatcher worker its own journal file
# in one directory: journal-shard0.db, journal-shard1.db, ...  Each worker
# recovers only its own file at boot, so a single-shard crash replays only
# that shard's backlog; the supervisor uses discovery to report the merged
# pending picture across a full restart.

SHARD_JOURNAL_PREFIX = "journal-shard"


def shard_journal_path(directory: str, shard_id: int) -> str:
    """The canonical journal path for ``shard_id`` under ``directory``."""
    import os

    return os.path.join(directory, f"{SHARD_JOURNAL_PREFIX}{shard_id}.db")


def discover_shard_journals(directory: str) -> dict[int, str]:
    """Map shard id -> journal path for every shard journal on disk.

    Used for merged recovery on supervisor restart: the set of files is
    the authoritative record of which shards had taken responsibility
    for messages, independent of the shard count the supervisor restarts
    with.
    """
    import os
    import re

    pattern = re.compile(
        rf"^{re.escape(SHARD_JOURNAL_PREFIX)}(\d+)\.db$"
    )
    found: dict[int, str] = {}
    try:
        names = os.listdir(directory)
    except OSError:
        return found
    for name in names:
        match = pattern.match(name)
        if match:
            found[int(match.group(1))] = os.path.join(directory, name)
    return found


def merged_recovery_report(directory: str) -> dict[int, int]:
    """Pending (enqueued) record count per shard journal in ``directory``.

    Read-only: opens each journal just long enough to count, so it is
    safe to call from the supervisor while workers own the files.
    """
    report: dict[int, int] = {}
    for shard_id, path in sorted(discover_shard_journals(directory).items()):
        try:
            conn = sqlite3.connect(path)
            try:
                row = conn.execute(
                    "SELECT COUNT(*) FROM journal WHERE state = ?",
                    (ENQUEUED,),
                ).fetchone()
                report[shard_id] = int(row[0]) if row else 0
            finally:
                conn.close()
        except sqlite3.Error:
            report[shard_id] = -1  # unreadable: surfaced, not hidden
    return report

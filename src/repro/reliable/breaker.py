"""Per-destination circuit breakers for the dispatcher delivery path.

The paper's MSG-Dispatcher keeps a FIFO queue and a persistent connection
per destination; when a destination dies, every queued message would
otherwise burn a full connect timeout (Table 1's ~21 s) before failing.
A breaker sits between the WsThread drain path and the HTTP client:

```
            failure threshold reached
  CLOSED ────────────────────────────────▶ OPEN
    ▲                                        │
    │ probe succeeds                         │ open_for elapsed
    │                                        ▼
    └──────────────────────────────────  HALF_OPEN
                 probe fails ───────────────▶ (back to OPEN)
```

- **closed**: traffic flows; failures are sampled in a rolling window.
  The breaker trips on ``consecutive_failures`` in a row *or* on a
  failure rate ≥ ``failure_rate`` once ``min_samples`` outcomes landed
  inside ``window`` seconds.
- **open**: every ``allow()`` is denied for ``open_for`` seconds — the
  dispatcher parks messages in the :class:`~repro.reliable.holdretry.
  HoldRetryStore` instead of burning delivery attempts.
- **half-open**: up to ``half_open_probes`` trial deliveries pass
  through; one success closes the breaker, one failure re-opens it.

All time comes from an injected :class:`~repro.util.clock.Clock`, so the
same state machine runs on wall-clock threads, the simulation kernel, and
ManualClock tests — deterministically.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.transport.base import parse_http_url
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.util.clock import Clock, MonotonicClock


class BreakerState:
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class BreakerOpenError(ReproError):
    """Delivery refused locally: the destination's breaker is open."""


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds for one destination's breaker.

    ``consecutive_failures`` trips fast on a hard-down destination;
    ``failure_rate`` over the rolling ``window`` catches flapping or
    lossy destinations that intersperse occasional successes.
    """

    consecutive_failures: int = 5
    failure_rate: float = 0.5
    window: float = 30.0
    min_samples: int = 10
    open_for: float = 5.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.consecutive_failures < 1:
            raise ValueError("consecutive_failures must be >= 1")
        if not 0.0 < self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in (0, 1]")
        if self.window <= 0 or self.open_for <= 0:
            raise ValueError("window and open_for must be positive")
        if self.min_samples < 1 or self.half_open_probes < 1:
            raise ValueError("min_samples and half_open_probes must be >= 1")


class CircuitBreaker:
    """The closed → open → half-open state machine for one destination."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Clock | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock or MonotonicClock()
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive = 0
        self._samples: deque[tuple[float, bool]] = deque()
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.transitions = 0

    # -- public surface ----------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open(self.clock.now())
            return self._state

    def allow(self) -> bool:
        """May a delivery attempt proceed right now?

        In half-open state each True answer hands out one probe ticket;
        the caller must report the outcome via :meth:`record_success` or
        :meth:`record_failure` to return it.
        """
        now = self.clock.now()
        with self._lock:
            self._maybe_half_open(now)
            if self._state == BreakerState.OPEN:
                return False
            if self._state == BreakerState.HALF_OPEN:
                if self._probes_inflight >= self.config.half_open_probes:
                    return False
                self._probes_inflight += 1
                return True
            return True

    def record_success(self) -> None:
        now = self.clock.now()
        with self._lock:
            if self._state == BreakerState.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition(BreakerState.CLOSED)
                return
            if self._state == BreakerState.CLOSED:
                self._consecutive = 0
                self._push_sample(now, True)

    def record_failure(self) -> None:
        now = self.clock.now()
        with self._lock:
            if self._state == BreakerState.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._opened_at = now
                self._transition(BreakerState.OPEN)
                return
            if self._state != BreakerState.CLOSED:
                return
            self._consecutive += 1
            self._push_sample(now, False)
            if self._consecutive >= self.config.consecutive_failures:
                self._trip(now)
                return
            total = len(self._samples)
            if total >= self.config.min_samples:
                failures = sum(1 for _, ok in self._samples if not ok)
                if failures / total >= self.config.failure_rate:
                    self._trip(now)

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open(self.clock.now())
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "window_samples": len(self._samples),
                "transitions": self.transitions,
            }

    # -- internals (call under lock) ---------------------------------------
    def _maybe_half_open(self, now: float) -> None:
        if (
            self._state == BreakerState.OPEN
            and now - self._opened_at >= self.config.open_for
        ):
            self._probes_inflight = 0
            self._transition(BreakerState.HALF_OPEN)

    def _trip(self, now: float) -> None:
        self._opened_at = now
        self._transition(BreakerState.OPEN)

    def _push_sample(self, now: float, ok: bool) -> None:
        self._samples.append((now, ok))
        cutoff = now - self.config.window
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def _transition(self, to: str) -> None:
        if to == self._state:
            return
        from_state, self._state = self._state, to
        self.transitions += 1
        if to == BreakerState.CLOSED:
            self._consecutive = 0
            self._samples.clear()
        if self._on_transition is not None:
            self._on_transition(from_state, to)


_STATE_GAUGE = {BreakerState.CLOSED: 0.0, BreakerState.OPEN: 1.0,
                BreakerState.HALF_OPEN: 2.0}


class BreakerRegistry:
    """One :class:`CircuitBreaker` per destination key (``host:port``).

    The registry is the integration surface: dispatchers call
    :meth:`allow` / :meth:`record`, balancers call :meth:`url_allowed`
    to exclude open destinations from selection, and the introspection
    surface renders :meth:`snapshot`.  Metrics:

    - ``rt_breaker_state{dest}`` — 0 closed, 1 open, 2 half-open
    - ``rt_breaker_transitions_total{dest,to}``
    - ``rt_breaker_rejected_total{dest}`` — attempts denied by allow()
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        """``flight`` records every state transition as a
        ``breaker-<to_state>`` event — breaker trips are the flight
        recorder's bread and butter."""
        self.config = config or BreakerConfig()
        self.clock = clock or MonotonicClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self.flight = flight if flight is not None else default_flight_recorder()
        self._m_state = self.metrics.gauge(
            "rt_breaker_state",
            "circuit state per destination (0=closed, 1=open, 2=half_open)",
        )
        self._m_transitions = self.metrics.counter(
            "rt_breaker_transitions_total", "breaker state transitions"
        )
        self._m_rejected = self.metrics.counter(
            "rt_breaker_rejected_total",
            "delivery attempts denied by an open breaker",
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self.rejected = 0

    def breaker_for(self, dest: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(dest)
            if breaker is None:
                def note(from_state: str, to: str, _dest: str = dest) -> None:
                    self._m_transitions.labels(dest=_dest, to=to).inc()
                    self._m_state.labels(dest=_dest).set(_STATE_GAUGE[to])
                    self.flight.record(
                        f"breaker-{to}", "breaker", t=self.clock.now(),
                        dest=_dest, from_state=from_state,
                    )

                breaker = CircuitBreaker(self.config, self.clock, note)
                self._m_state.labels(dest=dest).set(0.0)
                self._breakers[dest] = breaker
            return breaker

    def allow(self, dest: str) -> bool:
        if self.breaker_for(dest).allow():
            return True
        with self._lock:
            self.rejected += 1
        self._m_rejected.labels(dest=dest).inc()
        return False

    def record(self, dest: str, ok: bool) -> None:
        breaker = self.breaker_for(dest)
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()

    def state(self, dest: str) -> str:
        return self.breaker_for(dest).state

    # -- balancer integration ---------------------------------------------
    def url_allowed(self, url: str) -> bool:
        """Health predicate over physical URLs: False while the breaker
        for that endpoint is open (half-open destinations stay eligible
        so probes have traffic to ride on)."""
        try:
            endpoint, _path = parse_http_url(url)
        except ReproError:
            return True
        key = str(endpoint)
        with self._lock:
            breaker = self._breakers.get(key)
        if breaker is None:
            return True
        return breaker.state != BreakerState.OPEN

    # -- introspection -----------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            breakers = dict(self._breakers)
            rejected = self.rejected
        per_dest = {dest: b.snapshot() for dest, b in sorted(breakers.items())}
        by_state = {"closed": 0, "open": 0, "half_open": 0}
        for snap in per_dest.values():
            by_state[snap["state"]] += 1
        return {
            "destinations": per_dest,
            "states": by_state,
            "rejected": rejected,
        }

    @property
    def stats(self) -> dict[str, int]:
        snap = self.snapshot()
        return {
            "destinations": len(snap["destinations"]),
            "open": snap["states"]["open"],
            "half_open": snap["states"]["half_open"],
            "rejected": snap["rejected"],
        }

"""Reliable delivery (paper future work §4.4).

"We would like also to improve forwarding service by adding hold/retry on
delivery to simple one way messaging (HTTP) with messages stored in DB
with expiration time.  This work would be related with use of
WS-ReliableMessaging."

:mod:`repro.reliable.policy` defines retry schedules;
:mod:`repro.reliable.holdretry` implements the store — held messages with
expiration, at-least-once redelivery, and MessageID-based duplicate
suppression on the receiving side.
"""

from repro.reliable.policy import RetryPolicy, ExponentialBackoff, FixedDelay
from repro.reliable.holdretry import HeldMessage, HoldRetryStore, DuplicateFilter
from repro.reliable.breaker import (
    BreakerConfig,
    BreakerOpenError,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
)

__all__ = [
    "RetryPolicy",
    "ExponentialBackoff",
    "FixedDelay",
    "HeldMessage",
    "HoldRetryStore",
    "DuplicateFilter",
    "BreakerConfig",
    "BreakerOpenError",
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
]

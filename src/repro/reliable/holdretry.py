"""Hold/retry store: at-least-once delivery with expiration.

The store holds messages that could not be delivered, redelivers them on a
policy-driven schedule, and expires them after a deadline (the paper:
"messages stored in DB with expiration time").  In-memory is the default;
passing ``durable=`` a :class:`~repro.store.MessageJournal` makes held
messages survive a crash — they are journaled on intake, marked on
delivery, dead-lettered on expiry, and :meth:`HoldRetryStore.restore`
reloads the survivors on restart.  Expiry deadlines are kept on the
store's own clock in memory but on the journal's wall clock on disk,
because monotonic clocks restart from an arbitrary zero and would
resurrect long-dead deadlines.  Because redelivery makes duplicates
possible, the receiving side pairs it with :class:`DuplicateFilter`,
which suppresses repeated ``wsa:MessageID`` values inside a sliding
window.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import DeliveryExpired
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.reliable.policy import RetryPolicy, ExponentialBackoff
from repro.store.journal import DEAD, DELIVERED
from repro.util.clock import Clock, MonotonicClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.metrics import MetricsRegistry
    from repro.store import MessageJournal


@dataclass
class HeldMessage:
    """One message awaiting (re)delivery."""

    message_id: str
    target_url: str
    envelope_bytes: bytes
    expires_at: float
    attempts: int = 0
    next_attempt_at: float = 0.0
    #: sequence number in the durable journal, when there is one
    journal_seq: int | None = None


@dataclass
class _StoreStats:
    held: int = 0
    delivered: int = 0
    expired: int = 0
    attempts: int = 0
    restored: int = 0


class HoldRetryStore:
    """Store-and-forward buffer with retry scheduling and expiration.

    ``deliver`` is the transmission function (returns normally on success,
    raises on failure); the store never touches the network itself, so the
    threaded dispatcher, the simulator, and tests can all drive it.
    """

    def __init__(
        self,
        deliver: Callable[[HeldMessage], None] | None = None,
        policy: RetryPolicy | None = None,
        default_ttl: float = 300.0,
        clock: Clock | None = None,
        durable: "MessageJournal | None" = None,
        metrics: "MetricsRegistry | None" = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        self._deliver = deliver
        self.policy = policy or ExponentialBackoff(jitter=True)
        self.default_ttl = default_ttl
        self.clock = clock or MonotonicClock()
        self._durable = durable
        self.flight = flight if flight is not None else default_flight_recorder()
        self._m_dead = (
            metrics.counter(
                "dispatcher_deadletter_total",
                "Messages moved to the dead-letter queue, by reason",
            )
            if metrics is not None
            else None
        )
        self._held: dict[str, HeldMessage] = {}
        #: MessageIDs claimed by take_due() and not yet resolved — the
        #: expiry scan must not touch these, or a message whose redelivery
        #: is in flight could be counted both delivered and expired.
        self._inflight: set[str] = set()
        self._lock = threading.Lock()
        self._stats = _StoreStats()

    def bind_deliver(self, deliver: Callable[[HeldMessage], None]) -> None:
        """Late-bind the transmission function (for dispatcher wiring
        where the dispatcher itself is the deliverer)."""
        self._deliver = deliver

    @property
    def durable(self) -> "MessageJournal | None":
        """The backing journal, or None for a memory-only store."""
        return self._durable

    def _dead_letter(self, msg: HeldMessage, reason: str) -> None:
        if self._durable is not None and msg.journal_seq is not None:
            self._durable.mark(msg.journal_seq, DEAD, reason=reason)
        if self._m_dead is not None:
            self._m_dead.labels(reason=reason).inc()
        self.flight.record(
            "hold-expired", "holdretry", t=self.clock.now(),
            message_id=msg.message_id, reason=reason,
            dest=msg.target_url, attempts=msg.attempts,
        )

    # -- intake ----------------------------------------------------------
    def hold(
        self,
        message_id: str,
        target_url: str,
        envelope_bytes: bytes,
        ttl: float | None = None,
    ) -> HeldMessage:
        """Accept a message for later delivery (idempotent per MessageID)."""
        now = self.clock.now()
        ttl_s = ttl if ttl is not None else self.default_ttl
        with self._lock:
            existing = self._held.get(message_id)
            if existing is not None:
                return existing
            msg = HeldMessage(
                message_id=message_id,
                target_url=target_url,
                envelope_bytes=envelope_bytes,
                expires_at=now + ttl_s,
                next_attempt_at=now,
            )
            self._held[message_id] = msg
            self._stats.held += 1
        if self._durable is not None:
            # Journaled outside the lock — a group commit may block.  The
            # deadline is recorded on the journal's wall clock so it still
            # means something after a restart (the store clock does not).
            msg.journal_seq = self._durable.append(
                message_id,
                target_url,
                envelope_bytes,
                kind="held",
                expires_at=self._durable.wall_now() + ttl_s,
            )
        return msg

    # -- claim API ----------------------------------------------------------
    # The split-phase protocol external drivers (dispatchers, simulation
    # pump processes) use: take_due() claims messages, then each claim is
    # resolved with exactly one of complete() / reschedule().  Claimed
    # messages are invisible to the expiry scan, so a message can never be
    # counted both delivered and expired even when a redelivery races its
    # TTL.
    def take_due(self, now: float | None = None) -> list[HeldMessage]:
        """Claim every due, unclaimed message for delivery.

        Expired (and retry-exhausted) unclaimed messages are dropped and
        counted here.  Each returned message has had its attempt counted;
        resolve it with :meth:`complete` or :meth:`reschedule`.
        """
        if now is None:
            now = self.clock.now()
        due: list[HeldMessage] = []
        with self._lock:
            for mid in list(self._held):
                if mid in self._inflight:
                    continue
                msg = self._held[mid]
                if msg.expires_at <= now:
                    del self._held[mid]
                    self._stats.expired += 1
                    self._dead_letter(msg, "expired")
                    continue
                if msg.next_attempt_at <= now:
                    msg.attempts += 1
                    self._stats.attempts += 1
                    if self._durable is not None and msg.journal_seq is not None:
                        self._durable.note_attempt(msg.journal_seq)
                    self._inflight.add(mid)
                    due.append(msg)
        return due

    def complete(self, message_id: str) -> bool:
        """Resolve a claim as delivered.  Idempotent; returns False when
        the message is not held (already completed, expired, or never
        taken)."""
        with self._lock:
            self._inflight.discard(message_id)
            msg = self._held.pop(message_id, None)
            if msg is None:
                return False
            self._stats.delivered += 1
        if self._durable is not None and msg.journal_seq is not None:
            self._durable.mark(msg.journal_seq, DELIVERED)
        return True

    def reschedule(self, message_id: str, now: float | None = None) -> bool:
        """Resolve a claim as failed: re-queue per policy, or expire when
        the retry budget or TTL is exhausted.  Returns True when the
        message remains held for another attempt."""
        if now is None:
            now = self.clock.now()
        with self._lock:
            self._inflight.discard(message_id)
            msg = self._held.get(message_id)
            if msg is None:
                return False
            if msg.expires_at <= now or not self.policy.should_retry(msg.attempts):
                del self._held[message_id]
                self._stats.expired += 1
                self._dead_letter(
                    msg,
                    "expired" if msg.expires_at <= now else "retries_exhausted",
                )
                return False
            msg.next_attempt_at = now + self.policy.delay_before(msg.attempts + 1)
            return True

    def is_held(self, message_id: str) -> bool:
        with self._lock:
            return message_id in self._held

    # -- recovery ------------------------------------------------------------
    def restore(self) -> int:
        """Reload undelivered held messages from the journal (idempotent).

        Wall-clock deadlines on disk are converted back to deadlines on
        this store's clock (``remaining = expires_at - wall_now()``), so a
        restart neither extends nor truncates a message's TTL.  Records
        whose deadline passed while the process was down are dead-lettered
        here rather than resurrected.  Returns the number restored.
        """
        if self._durable is None:
            return 0
        wall = self._durable.wall_now()
        now = self.clock.now()
        restored = 0
        for rec in self._durable.undelivered(kind="held"):
            remaining = (
                rec.expires_at - wall
                if rec.expires_at is not None
                else self.default_ttl
            )
            msg = HeldMessage(
                message_id=rec.message_id,
                target_url=rec.target,
                envelope_bytes=rec.body,
                expires_at=now + remaining,
                attempts=rec.attempts,
                next_attempt_at=now,
                journal_seq=rec.seq,
            )
            if remaining <= 0:
                self._stats.expired += 1
                self._dead_letter(msg, "expired")
                continue
            with self._lock:
                if rec.message_id in self._held:
                    continue
                self._held[rec.message_id] = msg
                self._stats.held += 1
                self._stats.restored += 1
            restored += 1
        return restored

    # -- pump ---------------------------------------------------------------
    def pump(self) -> dict[str, int]:
        """Attempt every due message once; returns a summary.

        Call periodically (a dispatcher maintenance thread, a simulation
        process, or a test loop).  Expired messages are dropped and counted;
        exhausted-retry messages expire immediately.  Requires a bound
        ``deliver`` function; drivers that transmit themselves should use
        :meth:`take_due` / :meth:`complete` / :meth:`reschedule` directly.
        """
        now = self.clock.now()
        due = self.take_due(now)
        if self._deliver is None:
            for msg in due:
                self.reschedule(msg.message_id, now)
            return {"due": len(due), "delivered": 0, "failed": len(due)}
        delivered = failed = 0
        for msg in due:
            try:
                self._deliver(msg)
            except Exception:  # noqa: BLE001 - any failure means retry
                failed += 1
                self.reschedule(msg.message_id, now)
                continue
            delivered += 1
            self.complete(msg.message_id)
        return {"due": len(due), "delivered": delivered, "failed": failed}

    def run_until_empty(self, timeout: float) -> None:
        """Pump until the store drains; raises DeliveryExpired on timeout."""
        deadline = self.clock.now() + timeout
        while self.pending() > 0:
            if self.clock.now() >= deadline:
                raise DeliveryExpired(
                    f"{self.pending()} messages still held after {timeout}s"
                )
            self.pump()
            self.clock.sleep(0.01)

    # -- introspection -----------------------------------------------------
    def pending(self) -> int:
        with self._lock:
            return len(self._held)

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "held": self._stats.held,
                "delivered": self._stats.delivered,
                "expired": self._stats.expired,
                "attempts": self._stats.attempts,
                "restored": self._stats.restored,
            }


class DuplicateFilter:
    """Sliding-window duplicate suppression keyed by ``wsa:MessageID``.

    ``seen`` returns True for a MessageID observed within ``window``
    seconds — the receiver should drop the message (at-least-once becomes
    effectively-once for idempotent windows).
    """

    def __init__(self, window: float = 600.0, clock: Clock | None = None) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.clock = clock or MonotonicClock()
        self._seen: dict[str, float] = {}
        self._lock = threading.Lock()

    def seen(self, message_id: str) -> bool:
        now = self.clock.now()
        with self._lock:
            # amortized cleanup: purge expired entries when the table grows
            if len(self._seen) > 4096:
                cutoff = now - self.window
                for mid in [m for m, t in self._seen.items() if t < cutoff]:
                    del self._seen[mid]
            stamp = self._seen.get(message_id)
            if stamp is not None and now - stamp < self.window:
                return True
            self._seen[message_id] = now
            return False

    def size(self) -> int:
        with self._lock:
            return len(self._seen)

"""Retry policies for message delivery."""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass


class RetryPolicy:
    """Decides whether and when to retry a failed delivery attempt.

    ``attempts`` counts tries already made (1 = the initial attempt
    failed).  ``delay_before(n)`` is the pause before making attempt ``n``.
    """

    def should_retry(self, attempts: int) -> bool:
        raise NotImplementedError

    def delay_before(self, attempt: int) -> float:
        raise NotImplementedError


@dataclass
class FixedDelay(RetryPolicy):
    """Retry up to ``max_attempts`` total tries with a constant pause."""

    max_attempts: int = 3
    delay: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")

    def should_retry(self, attempts: int) -> bool:
        return attempts < self.max_attempts

    def delay_before(self, attempt: int) -> float:
        return self.delay


@dataclass
class ExponentialBackoff(RetryPolicy):
    """Exponential backoff: base * factor**(attempt-2), capped.

    With ``jitter=True`` the schedule becomes *decorrelated jitter*
    (``delay = uniform(base, prev_delay * factor)``, capped), so a burst
    of messages that failed together does not retry in lock-step and
    hammer the recovering destination as one synchronized storm.  Jitter
    defaults off: the deterministic schedule is what the simulation (and
    the existing tests) rely on.  Pass ``seed`` for a reproducible
    jittered sequence.
    """

    max_attempts: int = 5
    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 5.0
    jitter: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base < 0 or self.factor < 1.0 or self.max_delay < 0:
            raise ValueError("invalid backoff parameters")
        self._rng = random.Random(self.seed)
        self._prev_delay = 0.0
        self._jitter_lock = threading.Lock()

    def should_retry(self, attempts: int) -> bool:
        return attempts < self.max_attempts

    def delay_before(self, attempt: int) -> float:
        if attempt <= 1:
            return 0.0
        if not self.jitter:
            return min(self.base * self.factor ** (attempt - 2), self.max_delay)
        with self._jitter_lock:
            prev = self._prev_delay if self._prev_delay > 0 else self.base
            hi = max(self.base, min(prev * self.factor, self.max_delay))
            delay = self._rng.uniform(self.base, hi)
            self._prev_delay = delay
            return delay

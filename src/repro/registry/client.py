"""Client-side failover over a set of registry replicas.

:class:`ReplicatedRegistryClient` is a drop-in for the dispatchers'
``registry`` slot (threaded, simnet, and aio alike — they only call
``lookup``/``resolve``): reads and writes sweep the replica set in a
seeded-shuffled preference order, each replica guarded by its own
circuit breaker (:class:`~repro.reliable.breaker.BreakerRegistry`, so
replica health shows up as ``rt_breaker_state{dest=<peer>}`` and flight
``breaker-*`` events), with decorrelated-jitter retry between full
passes.  The PR 2 TTL read-through cache sits on top, with the
single-flight stampede protection of
:class:`~repro.util.concurrency.SingleFlight` on the miss path.

Failure taxonomy: a replica that cannot answer
(:class:`~repro.errors.RegistryUnavailable`, transport failures) is
skipped and charged to its breaker.  A replica that *answers* with
"unknown service" is healthy but may be stale — a peer that just
rejoined from disk has not pulled recent registrations yet — so the
sweep continues, and :class:`~repro.errors.UnknownServiceError` is
raised only once every reachable replica agrees (availability bias: any
single converged replica can satisfy the lookup).  Only when no replica
answers at all does the client raise
:class:`~repro.errors.RegistryUnavailable` — which the dispatchers park
on (``hold_registry_unavailable``) rather than dead-letter.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.core.registry import ServiceRecord
from repro.errors import (
    RegistryError,
    RegistryUnavailable,
    ReproError,
    UnknownServiceError,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.reliable.breaker import BreakerConfig, BreakerRegistry
from repro.reliable.policy import ExponentialBackoff, RetryPolicy
from repro.util.clock import Clock, MonotonicClock
from repro.util.concurrency import SingleFlight


class ReplicatedRegistryClient:
    """Fronts N registry replicas with failover, breakers, retry, cache.

    ``replicas`` maps replica name → any registry-shaped handle
    (:class:`~repro.registry.replica.RegistryReplica`, a plain
    :class:`~repro.core.registry.ServiceRegistry`, or a remote proxy);
    the handle's methods raise :class:`RegistryUnavailable` / transport
    errors when that replica cannot answer.

    ``max_passes`` bounds full sweeps per call; between passes the retry
    policy's decorrelated-jitter delay is slept on ``clock``.  Simulation
    callers pass ``max_passes=1`` — there the hold store, not a blocking
    sleep, provides the retry.
    """

    def __init__(
        self,
        replicas: "dict[str, object] | Iterable[tuple[str, object]]",
        seed: int | None = None,
        cache_ttl: float = 5.0,
        breaker_config: BreakerConfig | None = None,
        retry: RetryPolicy | None = None,
        max_passes: int = 3,
        clock: Clock | None = None,
        selector: Callable[[ServiceRecord], str] | None = None,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        self._replicas = dict(replicas)
        if not self._replicas:
            raise RegistryError("ReplicatedRegistryClient needs >=1 replica")
        if max_passes < 1:
            raise RegistryError("max_passes must be >= 1")
        self.max_passes = max_passes
        self.clock = clock or MonotonicClock()
        self.metrics = metrics if metrics is not None else default_registry()
        self._selector = selector or (lambda record: record.physical[0])
        #: fixed per-client preference order: a seeded shuffle spreads
        #: load across replicas fleet-wide while keeping each client's
        #: sweep (and therefore each seeded run) deterministic
        self._order = sorted(self._replicas)
        random.Random(seed).shuffle(self._order)
        self.retry = retry if retry is not None else ExponentialBackoff(
            max_attempts=max_passes, base=0.02, max_delay=1.0,
            jitter=True, seed=seed,
        )
        self.breakers = BreakerRegistry(
            config=breaker_config
            or BreakerConfig(consecutive_failures=2, open_for=1.0),
            clock=self.clock, metrics=self.metrics, flight=flight,
        )
        cache_counter = self.metrics.counter(
            "registry_cache_total", "lookup cache outcomes, by outcome"
        )
        self._m_cache_hits = cache_counter.labels(outcome="hit")
        self._m_cache_misses = cache_counter.labels(outcome="miss")
        self._m_cache_coalesced = cache_counter.labels(outcome="coalesced")
        self._m_failover = self.metrics.counter(
            "registry_client_failover_total",
            "lookup attempts that skipped past a failed replica",
        )
        self._cache_ttl = cache_ttl
        self._cache: dict[str, tuple[ServiceRecord, float]] = {}
        self._miss_flight: SingleFlight[ServiceRecord] = SingleFlight()

    # -- reads -------------------------------------------------------------
    def lookup(self, logical: str) -> ServiceRecord:
        """Resolve through cache → single-flight → replica sweep."""
        if self._cache_ttl > 0:
            entry = self._cache.get(logical)
            if entry is not None:
                record, deadline = entry
                if deadline >= self.clock.now() and record.enabled:
                    self._m_cache_hits.inc()
                    return record
                self._cache.pop(logical, None)
            coalesced = False
            try:
                record, coalesced = self._miss_flight.run(
                    logical, lambda: self._sweep(lambda h: h.lookup(logical))
                )
            finally:
                outcome = (
                    self._m_cache_coalesced if coalesced else self._m_cache_misses
                )
                outcome.inc()
            if not coalesced:
                self._cache[logical] = (
                    record, self.clock.now() + self._cache_ttl
                )
            return record
        return self._sweep(lambda h: h.lookup(logical))

    def resolve(self, logical: str) -> str:
        record = self.lookup(logical)
        return self._selector(record)

    # -- writes (forwarded to the first replica that accepts; gossip
    #    propagates them to the rest) --------------------------------------
    def register(
        self,
        logical: str,
        physical: str | list[str],
        metadata: dict[str, str] | None = None,
    ) -> ServiceRecord:
        record = self._sweep(
            lambda h: h.register(logical, physical, metadata=metadata)
        )
        self._cache.pop(logical, None)
        return record

    def unregister(self, logical: str) -> bool:
        existed = self._sweep(lambda h: h.unregister(logical))
        self._cache.pop(logical, None)
        return existed

    def set_enabled(self, logical: str, enabled: bool) -> None:
        self._sweep(lambda h: h.set_enabled(logical, enabled))
        self._cache.pop(logical, None)

    # -- the failover sweep ------------------------------------------------
    def _sweep(self, op: Callable[[object], object]):
        """Apply ``op`` to replicas in preference order until one answers.

        Unavailable replicas are skipped, charged to their breakers, and
        — after ``max_passes`` full sweeps with backoff — surfaced as one
        :class:`RegistryUnavailable`.  :class:`UnknownServiceError` keeps
        the sweep going (the answering replica may be stale) and is
        raised once a full pass ends with every reachable replica
        agreeing the name is unknown."""
        last_error: Exception | None = None
        for attempt in range(self.max_passes):
            if attempt:
                self.clock.sleep(self.retry.delay_before(attempt + 1))
            unknown: UnknownServiceError | None = None
            for name in self._order:
                if not self.breakers.allow(name):
                    continue
                try:
                    result = op(self._replicas[name])
                except UnknownServiceError as exc:
                    # healthy answer, possibly stale — a peer that has
                    # converged further may still know the name
                    self.breakers.record(name, True)
                    unknown = exc
                    continue
                except RegistryUnavailable as exc:
                    self.breakers.record(name, False)
                    self._m_failover.inc()
                    last_error = exc
                    continue
                except RegistryError:
                    # the replica answered; the *request* is bad — not a
                    # replica failure, so don't charge the breaker or sweep on
                    raise
                except ReproError as exc:
                    self.breakers.record(name, False)
                    self._m_failover.inc()
                    last_error = exc
                    continue
                self.breakers.record(name, True)
                return result
            if unknown is not None:
                # every replica that answered says unknown: authoritative
                # enough — retry passes are for outages, not staleness
                raise unknown
        raise RegistryUnavailable(
            f"no registry replica answered after {self.max_passes} pass(es) "
            f"over {len(self._order)} replica(s)"
        ) from last_error

    # -- introspection -----------------------------------------------------
    @property
    def replica_names(self) -> list[str]:
        """The failover preference order (shuffled once per client)."""
        return list(self._order)

    def cache_stats(self) -> dict[str, float]:
        hits = float(self._m_cache_hits.get())
        misses = float(self._m_cache_misses.get())
        coalesced = float(self._m_cache_coalesced.get())
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "coalesced": coalesced,
            "hit_rate": hits / total if total else 0.0,
        }

    def health_snapshot(self) -> dict:
        """Per-replica health for ``GET /health`` (register via
        ``Introspection.add_health_source("registry", ...)``)."""
        replicas = {}
        for name in self._order:
            handle = self._replicas[name]
            entry: dict = {"breaker": self.breakers.state(name)}
            snap = getattr(handle, "snapshot", None)
            if callable(snap):
                entry.update(snap())
            else:
                entry["available"] = bool(getattr(handle, "available", True))
                try:
                    entry["entries"] = len(handle)
                except TypeError:
                    pass
            replicas[name] = entry
        return {
            "order": list(self._order),
            "replicas": replicas,
            "cache": self.cache_stats(),
        }

"""Replicated, gossip-synced service discovery (ROADMAP item 2).

The package splits along the paper's registry seam:

- :mod:`repro.registry.replica` — one peer's version-vectored,
  journal-backed entry store (LWW-per-field merge, tombstones);
- :mod:`repro.registry.gossip` — the anti-entropy exchange: digest
  compare, delta sync, HTTP endpoint, threaded and simulated drivers;
- :mod:`repro.registry.client` — replica failover for the dispatchers:
  shuffled preference order, per-replica breakers, jittered retry, TTL
  cache with single-flight misses.
"""

from repro.registry.client import ReplicatedRegistryClient
from repro.registry.gossip import (
    GOSSIP_PATH,
    GossipDaemon,
    GossipHandler,
    SimGossipPeer,
    sync_pair,
)
from repro.registry.replica import REGISTRY_KIND, RegistryReplica

__all__ = [
    "GOSSIP_PATH",
    "GossipDaemon",
    "GossipHandler",
    "REGISTRY_KIND",
    "RegistryReplica",
    "ReplicatedRegistryClient",
    "SimGossipPeer",
    "sync_pair",
]

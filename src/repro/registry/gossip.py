"""Anti-entropy gossip between registry replicas.

One *round* is a push-pull digest exchange initiated by replica A against
peer B, needing at most two POSTs:

1. A sends its digest (``{"peer", "vv"}``).  B replies with its own
   vector plus every entry A's vector does not dominate.
2. A merges the reply.  If A now holds stamps *B* lacks, A POSTs them;
   B merges and replies with its updated vector.

After a round the initiator compares vectors: equality means the pair is
converged (flight event ``gossip-converged`` on the divergent→converged
edge).  Transport failures flip the peer's health edge (``replica-down``
/ ``replica-rejoin`` events) and feed ``registry_replica_lag_seconds``.

The wire format is deterministic JSON (sorted keys, entries sorted by
logical name) on the operator plane — like span reports, gossip is
co-operating-process traffic that lives next to ``/metrics``, not on the
SOAP message path.  Both substrates are covered:
:class:`GossipDaemon` runs a thread over :class:`~repro.rt.client.HttpClient`,
:class:`SimGossipPeer` runs a simulation process over
:class:`~repro.simnet.httpsim.SimHttpClientPool`, and the sans-io round
(:func:`run_round_steps`) plus :func:`sync_pair` drive the same state
machine in-process for tests and benchmarks.
"""

from __future__ import annotations

import json
import random
import threading
import time

from repro.errors import RegistryUnavailable, ReproError, TransportError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.registry.replica import RegistryReplica

#: default mount path of a replica's gossip endpoint
GOSSIP_PATH = "/gossip"

GOSSIP_CONTENT_TYPE = "application/json; charset=utf-8"


# -- wire codec -------------------------------------------------------------
def encode_gossip(payload: dict) -> bytes:
    """Deterministic bytes: sorted keys, no hash-order dependence."""
    return json.dumps(payload, sort_keys=True).encode()


def decode_gossip(body: bytes) -> dict:
    """Parse and validate a gossip payload; raises ValueError when bad."""
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("gossip payload must be a JSON object")
    if not isinstance(payload.get("peer"), str) or not payload["peer"]:
        raise ValueError("gossip payload needs a 'peer' name")
    vv = payload.get("vv")
    if not isinstance(vv, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in vv.items()
    ):
        raise ValueError("gossip payload needs a {peer: lamport} 'vv'")
    entries = payload.get("entries", [])
    if not isinstance(entries, list):
        raise ValueError("gossip 'entries' must be a list")
    return payload


def gossip_payload(replica: RegistryReplica, entries: list[dict] | None = None) -> dict:
    payload = replica.digest()
    if entries:
        payload["entries"] = entries
    return payload


def handle_gossip(replica: RegistryReplica, payload: dict) -> dict:
    """Responder side of one POST: merge what the sender pushed, reply
    with the sender's missing entries and our (updated) vector.

    A ``sync`` payload marks the round's second POST: its entries are
    exactly ``delta_for(our vv)``, so after applying them (even zero of
    them) we hold everything the sender has and may adopt its frontier —
    the step that lets the losing side of an LWW tie still be counted as
    seen."""
    entries = payload.get("entries") or []
    if entries:
        replica.apply_delta(entries)
    elif not replica.available:
        raise RegistryUnavailable(
            f"registry replica {replica.peer_id} is unavailable"
        )
    if payload.get("sync"):
        replica.merge_vv(payload.get("vv") or {})
    reply = replica.digest()
    reply["entries"] = replica.delta_for(payload.get("vv") or {})
    return reply


def run_round_steps(replica: RegistryReplica):
    """Sans-io initiator round: a generator that yields request payloads
    and receives reply payloads via ``send()``; its return value is
    ``(converged, applied)``.

    The first reply carries everything our vector lacks, so merging it
    leaves us holding the responder's full state — we then adopt its
    frontier and push back what *it* lacks as a ``sync`` POST (sent even
    with zero entries whenever the vectors still differ, so the
    responder learns our frontier too)."""
    reply = yield gossip_payload(replica)
    applied = replica.apply_delta(reply.get("entries") or [])
    replica.merge_vv(reply.get("vv") or {})
    missing = replica.delta_for(reply.get("vv") or {})
    final = reply
    if missing or replica.vv != (reply.get("vv") or {}):
        payload = gossip_payload(replica, entries=missing)
        payload["sync"] = True
        final = yield payload
        applied += replica.apply_delta(final.get("entries") or [])
        replica.merge_vv(final.get("vv") or {})
    return replica.vv == (final.get("vv") or {}), applied


def drive_round(replica: RegistryReplica, post) -> tuple[bool, int]:
    """Run one round through a synchronous ``post(payload) -> payload``."""
    steps = run_round_steps(replica)
    request = next(steps)
    try:
        while True:
            request = steps.send(post(request))
    except StopIteration as stop:
        return stop.value


def sync_pair(a: RegistryReplica, b: RegistryReplica) -> tuple[bool, int]:
    """One in-process anti-entropy round from ``a`` against ``b``."""
    return drive_round(a, lambda payload: handle_gossip(b, payload))


# -- the replica's HTTP endpoint -------------------------------------------
class GossipHandler:
    """POST handler serving a replica's gossip endpoint.

    Mount on a :class:`~repro.rt.service.SoapHttpApp` via
    ``app.mount_raw(GOSSIP_PATH, handler)`` or route to it from a simnet
    server wrapper.  200 with the reply payload, 400 for malformed
    gossip, 503 while the replica is unavailable (chaos fault)."""

    def __init__(
        self,
        replica: RegistryReplica,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.replica = replica
        registry = metrics if metrics is not None else default_registry()
        requests = registry.counter(
            "registry_gossip_requests_total",
            "gossip exchanges served, by outcome",
        )
        self._m_ok = requests.labels(outcome="ok")
        self._m_bad = requests.labels(outcome="bad")
        self._m_refused = requests.labels(outcome="refused")

    def __call__(self, request: HttpRequest) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(status=405, body=b"gossip is POSTed")
        try:
            payload = decode_gossip(request.body)
        except (ValueError, UnicodeDecodeError) as exc:
            self._m_bad.inc()
            return HttpResponse(status=400, body=f"bad gossip: {exc}".encode())
        try:
            reply = handle_gossip(self.replica, payload)
        except RegistryUnavailable:
            self._m_refused.inc()
            return HttpResponse(status=503, body=b"replica unavailable")
        self._m_ok.inc()
        headers = Headers()
        headers.set("Content-Type", GOSSIP_CONTENT_TYPE)
        return HttpResponse(status=200, headers=headers, body=encode_gossip(reply))


def make_gossip_request(payload: dict, path: str = GOSSIP_PATH) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", GOSSIP_CONTENT_TYPE)
    return HttpRequest("POST", path, headers=headers, body=encode_gossip(payload))


# -- shared round bookkeeping ----------------------------------------------
class GossipHealth:
    """Per-peer round accounting shared by both gossip drivers.

    Owns the obs surface: ``registry_gossip_rounds_total{peer,outcome}``,
    the ``registry_replica_lag_seconds{peer}`` gauge (seconds since the
    last successful exchange with that peer), and the flight-recorder
    edges ``replica-down`` / ``replica-rejoin`` / ``gossip-converged``.
    """

    def __init__(
        self,
        own_peer: str,
        peers: list[str],
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
        now_fn=None,
    ) -> None:
        self.own_peer = own_peer
        self.now_fn = now_fn if now_fn is not None else time.monotonic
        self.metrics = metrics if metrics is not None else default_registry()
        self.flight = flight if flight is not None else default_flight_recorder()
        rounds = self.metrics.counter(
            "registry_gossip_rounds_total",
            "anti-entropy rounds initiated, by peer and outcome",
        )
        lag = self.metrics.gauge(
            "registry_replica_lag_seconds",
            "seconds since the last successful exchange with the peer",
        )
        self._m_ok = {p: rounds.labels(peer=p, outcome="ok") for p in peers}
        self._m_fail = {p: rounds.labels(peer=p, outcome="fail") for p in peers}
        now = self.now_fn()
        self._lock = threading.Lock()
        self._up = {p: True for p in peers}
        self._converged = {p: False for p in peers}
        self._last_ok = {p: now for p in peers}
        self._rounds = {p: 0 for p in peers}
        self._failures = {p: 0 for p in peers}
        for p in peers:
            lag.labels(peer=p).set_function(
                lambda _p=p: max(0.0, self.now_fn() - self._last_ok[_p])
            )

    def note_ok(self, peer: str, converged: bool, applied: int) -> None:
        self._m_ok[peer].inc()
        with self._lock:
            self._rounds[peer] += 1
            self._last_ok[peer] = self.now_fn()
            rejoined = not self._up[peer]
            self._up[peer] = True
            newly_converged = converged and not self._converged[peer]
            self._converged[peer] = converged
        if rejoined:
            self.flight.record(
                "replica-rejoin", "registry", t=self.now_fn(),
                peer=peer, by=self.own_peer,
            )
        if newly_converged:
            self.flight.record(
                "gossip-converged", "registry", t=self.now_fn(),
                peer=peer, by=self.own_peer, applied=applied,
            )

    def note_fail(self, peer: str) -> None:
        self._m_fail[peer].inc()
        with self._lock:
            self._failures[peer] += 1
            went_down = self._up[peer]
            self._up[peer] = False
            self._converged[peer] = False
        if went_down:
            self.flight.record(
                "replica-down", "registry", t=self.now_fn(),
                peer=peer, by=self.own_peer,
            )

    def snapshot(self) -> dict:
        now = self.now_fn()
        with self._lock:
            return {
                peer: {
                    "up": self._up[peer],
                    "converged": self._converged[peer],
                    "lag_seconds": round(max(0.0, now - self._last_ok[peer]), 6),
                    "rounds": self._rounds[peer],
                    "failures": self._failures[peer],
                }
                for peer in sorted(self._up)
            }


# -- drivers ----------------------------------------------------------------
class GossipDaemon:
    """Threaded anti-entropy driver: every ``interval`` seconds pick one
    peer (seeded RNG) and run a round over an rt HTTP client.

    ``peers`` maps peer name → base URL of its gossip endpoint."""

    def __init__(
        self,
        replica: RegistryReplica,
        peers: dict[str, str],
        client,
        interval: float = 0.5,
        seed: int | None = None,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        self.replica = replica
        self.peers = dict(peers)
        self.client = client
        self.interval = interval
        self._rng = random.Random(seed)
        self.health = GossipHealth(
            replica.peer_id, sorted(self.peers), metrics=metrics,
            flight=flight,
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "GossipDaemon":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name=f"gossip-{self.replica.peer_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.replica.available or not self.peers:
                continue
            self.round(self._rng.choice(sorted(self.peers)))

    def round(self, peer: str) -> bool:
        """One synchronous round against ``peer``; True when it converged."""
        url = self.peers[peer]

        def post(payload: dict) -> dict:
            response = self.client.request(url, make_gossip_request(payload, url))
            if response.status >= 300:
                raise TransportError(f"HTTP {response.status} from {url}")
            return decode_gossip(response.body)

        try:
            converged, applied = drive_round(self.replica, post)
        except (TransportError, ReproError, ValueError):
            self.health.note_fail(peer)
            return False
        self.health.note_ok(peer, converged, applied)
        return converged

    def snapshot(self) -> dict:
        return {"peer": self.replica.peer_id, "peers": self.health.snapshot()}


class SimGossipPeer:
    """Simulation-process anti-entropy driver (deterministic twin of
    :class:`GossipDaemon`).  ``peers`` maps peer name → (host, port)."""

    def __init__(
        self,
        net,
        host,
        replica: RegistryReplica,
        peers: dict[str, tuple[str, int]],
        interval: float = 0.5,
        seed: int | None = None,
        path: str = GOSSIP_PATH,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
        connect_timeout: float = 1.0,
        response_timeout: float = 2.0,
    ) -> None:
        from repro.simnet.httpsim import SimHttpClientPool

        self.sim = net.sim
        self.replica = replica
        self.peers = dict(peers)
        self.interval = interval
        self.path = path
        self._rng = random.Random(seed)
        self.health = GossipHealth(
            replica.peer_id, sorted(self.peers), metrics=metrics,
            flight=flight, now_fn=lambda: self.sim.now,
        )
        self.pool = SimHttpClientPool(
            net, host,
            connect_timeout=connect_timeout,
            response_timeout=response_timeout,
        )
        self._running = False

    def start(self) -> "SimGossipPeer":
        if not self._running:
            self._running = True
            self.sim.process(
                self._pump(), name=f"gossip-{self.replica.peer_id}"
            )
        return self

    def stop(self) -> None:
        self._running = False

    def _pump(self):
        while self._running:
            yield self.sim.timeout(self.interval)
            if not self._running:
                return
            if not self.replica.available or not self.peers:
                continue
            yield from self.round(self._rng.choice(sorted(self.peers)))

    def round(self, peer: str):
        """Generator: one round against ``peer``; yields sim events."""
        dest_host, dest_port = self.peers[peer]
        steps = run_round_steps(self.replica)
        request_payload = next(steps)
        try:
            while True:
                response = yield from self.pool.exchange(
                    dest_host, dest_port,
                    make_gossip_request(request_payload, self.path),
                )
                if response.status >= 300:
                    raise TransportError(f"HTTP {response.status} from {peer}")
                request_payload = steps.send(decode_gossip(response.body))
        except StopIteration as stop:
            converged, applied = stop.value
            self.health.note_ok(peer, converged, applied)
            return converged
        except (TransportError, ReproError, ValueError):
            self.health.note_fail(peer)
            return False

    def snapshot(self) -> dict:
        return {"peer": self.replica.peer_id, "peers": self.health.snapshot()}

"""One registry replica: a version-vectored, gossip-convergent record store.

The single-process :class:`~repro.core.registry.ServiceRegistry` is the
paper's registry module; this is its P2P-scale replacement (ROADMAP item
2, motivated by the Srirama et al. discovery line in PAPERS.md): N
replicas each hold the full entry set, accept writes locally, and
converge by anti-entropy gossip (:mod:`repro.registry.gossip`).

State model — last-writer-wins per field, with tombstones:

- Every mutation is stamped ``(lamport, peer_id)``; stamps are totally
  ordered (lamport first, peer id breaks ties), so any two replicas
  merge any two values of one field identically.
- An entry carries four independently-stamped slots: ``life`` (alive or
  tombstone — the register/unregister axis), ``physical``, ``metadata``,
  and ``enabled``.  ``unregister`` writes a *tombstone* into ``life``
  rather than deleting the entry, so a removal gossips and cannot be
  resurrected by a replica that still holds the older register;
  resurrection requires a register with a *higher* stamp.
- The version vector ``{peer: max lamport seen}`` summarises what a
  replica holds.  A digest exchange compares vectors; the delta is every
  entry holding a stamp the other side's vector does not dominate.
  Merging whole entries per-field is idempotent and order-insensitive —
  re-gossiping the same delta is a no-op.

Durability: each applied entry state is journaled to a
:class:`~repro.store.MessageJournal` (``kind="registry"``), the previous
record for that name retired as ``absorbed(superseded)``.  A SIGKILL'd
replica rebuilds from the journal's ``undelivered`` scan and converges
with its peers via ordinary gossip — recovery needs no special protocol.
"""

from __future__ import annotations

import json
import logging
import threading
from dataclasses import dataclass
from typing import Callable

from repro.core.registry import ServiceRecord
from repro.errors import RegistryError, RegistryUnavailable, UnknownServiceError
from repro.obs.logkv import component_logger, log_event
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.store.journal import ABSORBED, MessageJournal

#: journal ``kind`` under which replicas log entry states
REGISTRY_KIND = "registry"

#: a stamp: (lamport, peer_id) — lexicographic order is the LWW order
Stamp = tuple[int, str]

_SLOTS = ("life", "physical", "metadata", "enabled")


@dataclass
class _Entry:
    """Per-name replicated state: four independently-stamped slots."""

    logical: str
    life: tuple[Stamp, bool]            # alive=True / tombstone=False
    physical: tuple[Stamp, list[str]]
    metadata: tuple[Stamp, dict[str, str]]
    enabled: tuple[Stamp, bool]

    @property
    def alive(self) -> bool:
        return self.life[1]

    def stamps(self) -> list[Stamp]:
        return [self.life[0], self.physical[0], self.metadata[0],
                self.enabled[0]]

    def to_wire(self) -> dict:
        """JSON-safe dict; stamps flattened to ``[lamport, peer, value]``."""
        out: dict = {"logical": self.logical}
        for slot in _SLOTS:
            (lamport, peer), value = getattr(self, slot)
            out[slot] = [lamport, peer, value]
        return out

    @classmethod
    def from_wire(cls, payload: dict) -> "_Entry":
        logical = payload.get("logical")
        if not isinstance(logical, str) or not logical:
            raise RegistryError(f"bad gossip entry (logical): {payload!r}")
        slots = {}
        for slot in _SLOTS:
            triple = payload.get(slot)
            if not isinstance(triple, (list, tuple)) or len(triple) != 3:
                raise RegistryError(f"bad gossip entry ({slot}): {payload!r}")
            lamport, peer, value = triple
            if not isinstance(lamport, int) or not isinstance(peer, str):
                raise RegistryError(f"bad gossip stamp ({slot}): {payload!r}")
            slots[slot] = ((lamport, peer), value)
        life = slots["life"]
        physical = slots["physical"]
        metadata = slots["metadata"]
        enabled = slots["enabled"]
        return cls(
            logical,
            (life[0], bool(life[1])),
            (physical[0], [str(u) for u in (physical[1] or [])]),
            (metadata[0], {str(k): str(v)
                           for k, v in (metadata[1] or {}).items()}),
            (enabled[0], bool(enabled[1])),
        )

    def merge(self, other: "_Entry") -> bool:
        """Per-field LWW merge of ``other`` into self; True if changed."""
        changed = False
        for slot in _SLOTS:
            mine = getattr(self, slot)
            theirs = getattr(other, slot)
            if theirs[0] > mine[0]:
                setattr(self, slot, theirs)
                changed = True
        return changed


class RegistryReplica:
    """A single gossip peer holding the replicated service directory.

    Duck-compatible with :class:`~repro.core.registry.ServiceRegistry`
    where the dispatchers care (``lookup``/``resolve``/``register``/
    ``unregister``/``set_enabled``/``set_available``/``list_services``),
    plus the anti-entropy surface (:meth:`digest`, :meth:`delta_for`,
    :meth:`apply_delta`) the gossip layer drives.
    """

    def __init__(
        self,
        peer_id: str,
        journal: MessageJournal | None = None,
        selector: Callable[[ServiceRecord], str] | None = None,
        metrics: MetricsRegistry | None = None,
        recover: bool = True,
    ) -> None:
        if not peer_id:
            raise RegistryError("replica needs a non-empty peer_id")
        self.peer_id = peer_id
        self.journal = journal
        self.metrics = metrics if metrics is not None else default_registry()
        self._selector = selector or (lambda record: record.physical[0])
        self._log = component_logger("registry-replica")
        self._lock = threading.RLock()
        self._entries: dict[str, _Entry] = {}
        #: alive entries materialised as ServiceRecords (lookup hot path)
        self._records: dict[str, ServiceRecord] = {}
        self._vv: dict[str, int] = {}
        self._journal_seq: dict[str, int] = {}
        self._append_n = 0
        self._available = True
        self._lookups = 0
        self._misses = 0
        self.applied_total = 0
        self.restored = 0
        self._m_applied = self.metrics.counter(
            "registry_gossip_entries_applied_total",
            "remote entry states merged in, by peer",
        ).labels(peer=peer_id)
        self.metrics.gauge(
            "registry_replica_entries", "directory entries held, by peer"
        ).labels(peer=peer_id).set_function(lambda: float(len(self)))
        if journal is not None and recover:
            self.restored = self._restore()

    # -- local mutation (stamped, journaled) -------------------------------
    def _check_available(self) -> None:
        """A crashed/faulted replica refuses writes as well as reads —
        accepting a registration the process cannot gossip or journal
        would silently strand it (call with the lock held)."""
        if not self._available:
            raise RegistryUnavailable(
                f"registry replica {self.peer_id} is unavailable"
            )

    def _next_stamp(self) -> Stamp:
        """A stamp dominating everything this replica has ever seen."""
        lamport = max(self._vv.values(), default=0) + 1
        self._vv[self.peer_id] = lamport
        return (lamport, self.peer_id)

    def register(
        self,
        logical: str,
        physical: str | list[str],
        metadata: dict[str, str] | None = None,
    ) -> ServiceRecord:
        addresses = [physical] if isinstance(physical, str) else list(physical)
        # validate through the canonical record type
        record = ServiceRecord(logical, addresses, metadata=dict(metadata or {}))
        with self._lock:
            self._check_available()
            stamp = self._next_stamp()
            entry = _Entry(
                logical,
                (stamp, True),
                (stamp, list(record.physical)),
                (stamp, dict(record.metadata)),
                (stamp, True),
            )
            existing = self._entries.get(logical)
            if existing is not None:
                existing.merge(entry)
                entry = existing
            else:
                self._entries[logical] = entry
            self._materialise(entry)
            self._journal_entry(entry)
        log_event(
            self._log, logging.INFO, "register", peer=self.peer_id,
            logical=logical, physical=",".join(addresses),
        )
        return self._records.get(logical, record)

    def unregister(self, logical: str) -> bool:
        with self._lock:
            self._check_available()
            entry = self._entries.get(logical)
            existed = entry is not None and entry.alive
            stamp = self._next_stamp()
            if entry is None:
                # tombstone a name never seen here: guards against a
                # concurrent register still in flight on another replica
                entry = _Entry(
                    logical, (stamp, False), (stamp, []), (stamp, {}),
                    (stamp, True),
                )
                self._entries[logical] = entry
            else:
                entry.life = (stamp, False)
            self._materialise(entry)
            self._journal_entry(entry)
        if existed:
            log_event(
                self._log, logging.INFO, "unregister", peer=self.peer_id,
                logical=logical,
            )
        return existed

    def set_enabled(self, logical: str, enabled: bool) -> None:
        with self._lock:
            self._check_available()
            entry = self._entries.get(logical)
            if entry is None or not entry.alive:
                raise UnknownServiceError(logical)
            entry.enabled = (self._next_stamp(), enabled)
            self._materialise(entry)
            self._journal_entry(entry)

    # -- lookup (the dispatcher-facing surface) ----------------------------
    def lookup(self, logical: str) -> ServiceRecord:
        with self._lock:
            self._lookups += 1
            self._check_available()
            record = self._records.get(logical)
            if record is None or not record.enabled:
                self._misses += 1
                raise UnknownServiceError(logical)
            return record

    def resolve(self, logical: str) -> str:
        record = self.lookup(logical)
        with self._lock:
            return self._selector(record)

    def list_services(self) -> list[ServiceRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.logical)

    def __contains__(self, logical: str) -> bool:
        with self._lock:
            record = self._records.get(logical)
            return record is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def set_available(self, available: bool) -> None:
        """Fault switch: an unavailable replica refuses lookups *and*
        gossip (both directions) until restored — a crashed process."""
        with self._lock:
            self._available = available
        log_event(
            self._log, logging.WARNING,
            "available" if available else "unavailable", peer=self.peer_id,
        )

    @property
    def available(self) -> bool:
        return self._available

    # -- anti-entropy surface ----------------------------------------------
    def merge_vv(self, remote_vv: dict[str, int]) -> None:
        """Adopt a peer's frontier element-wise.  ONLY sound after a full
        exchange — the caller must already hold every entry the remote
        vector summarizes (a superseded event's stamp survives in no
        entry, so without this step the losing side of an LWW tie could
        never be marked as seen and convergence would never be reached).
        """
        with self._lock:
            self._check_available()
            for peer, lamport in remote_vv.items():
                if lamport > self._vv.get(peer, 0):
                    self._vv[peer] = lamport

    @property
    def vv(self) -> dict[str, int]:
        """Version vector: max lamport seen per peer (a copy)."""
        with self._lock:
            return dict(self._vv)

    def digest(self) -> dict:
        """The summary exchanged each gossip round: who am I, what do I
        hold.  Content depends only on applied stamps — two converged
        replicas always produce equal vectors regardless of arrival
        order or PYTHONHASHSEED."""
        with self._lock:
            return {"peer": self.peer_id, "vv": dict(self._vv)}

    def delta_for(self, remote_vv: dict[str, int]) -> list[dict]:
        """Entries holding any stamp the remote vector does not dominate,
        sorted by logical name (deterministic wire order)."""
        out = []
        with self._lock:
            for logical in sorted(self._entries):
                entry = self._entries[logical]
                if any(
                    lamport > remote_vv.get(peer, 0)
                    for lamport, peer in entry.stamps()
                ):
                    out.append(entry.to_wire())
        return out

    def apply_delta(self, entries: list[dict]) -> int:
        """State-based merge of received entries; returns how many local
        entries changed.  Idempotent: re-applying a delta changes nothing
        and advances nothing."""
        changed = 0
        with self._lock:
            if not self._available:
                raise RegistryUnavailable(
                    f"registry replica {self.peer_id} is unavailable"
                )
            for payload in entries:
                incoming = _Entry.from_wire(payload)
                entry = self._entries.get(incoming.logical)
                if entry is None:
                    entry = incoming
                    self._entries[incoming.logical] = entry
                    merged = True
                else:
                    merged = entry.merge(incoming)
                for lamport, peer in incoming.stamps():
                    if lamport > self._vv.get(peer, 0):
                        self._vv[peer] = lamport
                if merged:
                    changed += 1
                    self._materialise(entry)
                    self._journal_entry(entry)
        if changed:
            self.applied_total += changed
            self._m_applied.inc(changed)
        return changed

    # -- internals ---------------------------------------------------------
    def _materialise(self, entry: _Entry) -> None:
        """Rebuild the lookup-facing ServiceRecord after any change."""
        if entry.alive and entry.physical[1]:
            self._records[entry.logical] = ServiceRecord(
                entry.logical,
                list(entry.physical[1]),
                metadata=dict(entry.metadata[1]),
                enabled=entry.enabled[1],
            )
        else:
            self._records.pop(entry.logical, None)

    def _journal_entry(self, entry: _Entry) -> None:
        """Append the entry's new state; retire the state it supersedes."""
        if self.journal is None:
            return
        self._append_n += 1
        body = json.dumps(entry.to_wire(), sort_keys=True).encode()
        seq = self.journal.append(
            f"{self.peer_id}:{entry.logical}:{self._append_n}",
            entry.logical, body, kind=REGISTRY_KIND,
        )
        prev = self._journal_seq.get(entry.logical)
        if prev is not None:
            self.journal.mark(prev, ABSORBED, reason="superseded")
        self._journal_seq[entry.logical] = seq

    def _restore(self) -> int:
        """Rebuild state from the journal (crash rejoin).  Records are
        scanned in sequence order; marks lost in the crash can leave more
        than one ``enqueued`` state per name, so the latest wins and the
        stragglers are retired."""
        count = 0
        with self._lock:
            for rec in self.journal.undelivered(kind=REGISTRY_KIND):
                try:
                    entry = _Entry.from_wire(json.loads(rec.body.decode()))
                except (RegistryError, ValueError, UnicodeDecodeError):
                    continue
                prev_seq = self._journal_seq.get(entry.logical)
                if prev_seq is not None:
                    self.journal.mark(prev_seq, ABSORBED, reason="superseded")
                self._journal_seq[entry.logical] = rec.seq
                existing = self._entries.get(entry.logical)
                if existing is None:
                    self._entries[entry.logical] = entry
                else:
                    existing.merge(entry)
                    entry = existing
                for lamport, peer in entry.stamps():
                    if lamport > self._vv.get(peer, 0):
                        self._vv[peer] = lamport
                self._materialise(entry)
                count += 1
        if count:
            log_event(
                self._log, logging.INFO, "restore", peer=self.peer_id,
                entries=count,
            )
        return count

    # -- introspection -----------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "lookups": self._lookups,
                "misses": self._misses,
                "entries": len(self._records),
                "tombstones": sum(
                    1 for e in self._entries.values() if not e.alive
                ),
                "applied": self.applied_total,
                "restored": self.restored,
            }

    def snapshot(self) -> dict:
        """Health-surface view of this replica (per-replica ``/health``)."""
        with self._lock:
            return {
                "peer": self.peer_id,
                "available": self._available,
                "entries": len(self._records),
                "tombstones": sum(
                    1 for e in self._entries.values() if not e.alive
                ),
                "vv": dict(sorted(self._vv.items())),
                "durable": self.journal is not None,
            }

"""Shared exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.  The
hierarchy mirrors the subsystem layout: XML/SOAP/addressing parse errors,
HTTP wire errors, transport errors, simulation errors, and the
dispatcher-level routing/registry errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# Message-format layer
# ---------------------------------------------------------------------------

class XmlError(ReproError):
    """Malformed XML or an illegal operation on an XML tree."""


class XmlParseError(XmlError):
    """Raised by the XML parser; carries the byte/char offset of the fault."""

    def __init__(self, message: str, pos: int = -1, line: int = -1) -> None:
        suffix = ""
        if line >= 0:
            suffix = f" (line {line})"
        elif pos >= 0:
            suffix = f" (offset {pos})"
        super().__init__(message + suffix)
        self.pos = pos
        self.line = line


class SoapError(ReproError):
    """A SOAP envelope could not be built or understood."""


class FastPathUnsupported(ReproError):
    """The zero-copy envelope scanner bailed out; fall back to the full parse.

    Deliberately *not* a subclass of :class:`XmlError` or :class:`SoapError`:
    it does not mean the document is invalid, only that the fast path cannot
    prove it safe to splice — ``except (XmlError, SoapError)`` handlers that
    turn parse failures into HTTP 400s must never swallow it.  ``reason`` is
    a short stable label used as the ``outcome`` of the
    ``soap_fastpath_total`` counter.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        message = f"fast path unsupported: {reason}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.reason = reason
        self.detail = detail


class SoapFaultError(SoapError):
    """A SOAP Fault was received; carries the parsed fault."""

    def __init__(self, code: str, reason: str, detail: str | None = None) -> None:
        super().__init__(f"SOAP fault {code}: {reason}")
        self.code = code
        self.reason = reason
        self.detail = detail


class AddressingError(SoapError):
    """WS-Addressing headers are missing, duplicated, or invalid."""


# ---------------------------------------------------------------------------
# Wire / transport layer
# ---------------------------------------------------------------------------

class HttpError(ReproError):
    """HTTP message violates the wire protocol."""


class HttpParseError(HttpError):
    """Bytes on the wire do not form a valid HTTP message."""


class TransportError(ReproError):
    """A byte-stream transport failed (reset, refused, closed)."""


class ConnectionRefused(TransportError):
    """No listener at the destination, or the firewall rejected the SYN."""


class ConnectionTimeout(TransportError):
    """Connect or read deadline expired."""


class ConnectionClosed(TransportError):
    """Peer closed the stream mid-message."""


class ConnectionLimitExceeded(TransportError):
    """The host's connection table (or listen backlog) is full."""


# ---------------------------------------------------------------------------
# Simulation layer
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Internal inconsistency in the discrete-event kernel."""


class SimInterrupt(ReproError):
    """A simulated process was interrupted; carries the interrupt cause."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


# ---------------------------------------------------------------------------
# Dispatcher / service layer
# ---------------------------------------------------------------------------

class RegistryError(ReproError):
    """Registry lookup or mutation failed."""


class UnknownServiceError(RegistryError):
    """Logical address has no registered physical binding."""

    def __init__(self, logical: str) -> None:
        super().__init__(f"no service registered for logical address {logical!r}")
        self.logical = logical


class RoutingError(ReproError):
    """The dispatcher cannot decide where to forward a message."""


class MailboxError(ReproError):
    """WS-MsgBox operation failed."""


class MailboxNotFound(MailboxError):
    """The mailbox address does not exist (or was destroyed)."""


class MailboxQuotaExceeded(MailboxError):
    """The mailbox is full; deposit rejected."""


class MailboxAuthError(MailboxError):
    """Owner-token check failed for a protected mailbox operation."""


class AuthError(ReproError):
    """Single-sign-on authentication or authorization rejected the call."""


class DeliveryExpired(ReproError):
    """A held message exceeded its expiration before delivery succeeded."""


class RegistryUnavailable(RegistryError):
    """The registry is administratively down (fault injection / outage)."""


class OverloadedError(ReproError):
    """Admission control shed the request; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JournalError(ReproError):
    """The durable message journal rejected an operation or is unusable."""

"""repro.obs — observability for the WS-Dispatcher deployment.

The paper positions the WSD as shared production infrastructure; an
intermediary that owns the message path must also own its visibility.
This package is that visibility — the telemetry plane:

- :mod:`repro.obs.metrics` — the unified :class:`MetricsRegistry`
  (labeled counters/gauges/histograms, process-wide default, disabled
  mode) every component records into.
- :mod:`repro.obs.trace` — hop-by-hop message tracing: a
  :class:`TraceContext` carried as a SOAP header next to WS-Addressing,
  spans recorded into a ring-buffer :class:`TraceStore`.
- :mod:`repro.obs.spanreport` — cross-process span aggregation: remote
  stores ship completed spans to the dispatcher's store so
  ``GET /trace/<id>`` shows the whole multi-hop tree.
- :mod:`repro.obs.flight` — the :class:`FlightRecorder`: an always-on
  ring of state-transition events with postmortem dump-to-file.
- :mod:`repro.obs.slo` — declared pipeline-stage latency objectives and
  delivery-success error budgets (:class:`SloTracker`).
- :mod:`repro.obs.history` — the :class:`MetricsSnapshotter` sampling
  the registry into a bounded time-series ring.
- :mod:`repro.obs.logkv` — structured key=value logging on stdlib
  :mod:`logging`, one named logger per component.
- :mod:`repro.obs.http` — the :class:`Introspection` surface serving
  ``GET /metrics``, ``/trace/<id>``, ``/health``, ``/deadletters``,
  ``/slo``, ``/flightrecorder``, and ``/metrics/history``.
- :mod:`repro.obs.aggregate` — cross-process exposition merging: the
  shard supervisor scrapes each worker's ``/metrics`` text and serves
  one fleet-wide exposition via :func:`merge_expositions`.
"""

from repro.obs.aggregate import (
    MergeError,
    merge_expositions,
    parse_exposition,
)
from repro.obs.flight import (
    FlightRecorder,
    default_flight_recorder,
    set_default_flight_recorder,
)
from repro.obs.history import MetricsSnapshotter
from repro.obs.http import Introspection
from repro.obs.logkv import (
    KeyValueFormatter,
    component_logger,
    configure_logging,
    kv_line,
    log_event,
)
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.slo import SloPolicy, SloTracker, StageObjective
from repro.obs.spanreport import (
    SPAN_REPORT_PATH,
    HttpSpanShipper,
    ReportingTraceStore,
    SimSpanShipper,
    SpanReportHandler,
)
from repro.obs.trace import (
    TRACE_NS,
    Span,
    TraceContext,
    TraceStore,
    attach_trace,
    default_trace_store,
    ensure_trace,
    extract_trace,
    propagate_trace,
    set_default_trace_store,
)

__all__ = [
    "FlightRecorder",
    "HttpSpanShipper",
    "Introspection",
    "KeyValueFormatter",
    "MergeError",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "ReportingTraceStore",
    "SPAN_REPORT_PATH",
    "SimSpanShipper",
    "SloPolicy",
    "SloTracker",
    "Span",
    "SpanReportHandler",
    "StageObjective",
    "TRACE_NS",
    "TraceContext",
    "TraceStore",
    "attach_trace",
    "component_logger",
    "configure_logging",
    "default_flight_recorder",
    "default_registry",
    "default_trace_store",
    "ensure_trace",
    "extract_trace",
    "kv_line",
    "log_event",
    "merge_expositions",
    "parse_exposition",
    "propagate_trace",
    "set_default_flight_recorder",
    "set_default_registry",
    "set_default_trace_store",
]

"""repro.obs — observability for the WS-Dispatcher deployment.

The paper positions the WSD as shared production infrastructure; an
intermediary that owns the message path must also own its visibility.
This package is that visibility, in four parts:

- :mod:`repro.obs.metrics` — the unified :class:`MetricsRegistry`
  (labeled counters/gauges/histograms, process-wide default, disabled
  mode) every component records into.
- :mod:`repro.obs.trace` — hop-by-hop message tracing: a
  :class:`TraceContext` carried as a SOAP header next to WS-Addressing,
  spans recorded into a ring-buffer :class:`TraceStore`.
- :mod:`repro.obs.logkv` — structured key=value logging on stdlib
  :mod:`logging`, one named logger per component.
- :mod:`repro.obs.http` — the :class:`Introspection` surface serving
  ``GET /metrics`` (Prometheus text + JSON) and ``GET /trace/<id>``.
"""

from repro.obs.http import Introspection
from repro.obs.logkv import (
    KeyValueFormatter,
    component_logger,
    configure_logging,
    kv_line,
    log_event,
)
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.trace import (
    TRACE_NS,
    Span,
    TraceContext,
    TraceStore,
    attach_trace,
    default_trace_store,
    ensure_trace,
    extract_trace,
    propagate_trace,
    set_default_trace_store,
)

__all__ = [
    "Introspection",
    "KeyValueFormatter",
    "MetricsRegistry",
    "Span",
    "TRACE_NS",
    "TraceContext",
    "TraceStore",
    "attach_trace",
    "component_logger",
    "configure_logging",
    "default_registry",
    "default_trace_store",
    "ensure_trace",
    "extract_trace",
    "kv_line",
    "log_event",
    "propagate_trace",
    "set_default_registry",
    "set_default_trace_store",
]

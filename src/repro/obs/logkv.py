"""Structured key=value logging for the dispatcher deployment.

Stdlib :mod:`logging` underneath — one named logger per component
(``repro.msgd``, ``repro.rpcd``, ``repro.registry``, ``repro.msgbox``) —
with a key=value line format so log output greps and parses the same way
the metrics do.  Hot-path events (admit/route/enqueue/drain) log at DEBUG
and cost one ``isEnabledFor`` check when logging is off; abnormal events
(retry/drop/reject) log at WARNING.

>>> log = component_logger("msgd")
>>> log.name
'repro.msgd'
>>> kv_line("admit", trace="trace-1", dest="ws:9000")
'event=admit trace=trace-1 dest=ws:9000'
"""

from __future__ import annotations

import logging

#: the package root logger every component logger hangs off
ROOT_LOGGER = "repro"

# Silence "no handler" warnings for library users who never configure
# logging; configure_logging() installs a real handler on demand.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def component_logger(component: str) -> logging.Logger:
    """The logger for one component, namespaced under ``repro``."""
    if component == ROOT_LOGGER or component.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(component)
    return logging.getLogger(f"{ROOT_LOGGER}.{component}")


def _format_value(value: object) -> str:
    text = str(value)
    if text == "":
        return '""'
    if any(c in text for c in ' ="\n'):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return text


def kv_line(event: str, **fields: object) -> str:
    """Render one log line: ``event=<event> k=v k2=v2 ...``.

    ``None``-valued fields are dropped so call sites can pass optional
    context (e.g. ``trace=ctx and ctx.trace_id``) unconditionally.
    """
    parts = [f"event={_format_value(event)}"]
    for key, value in fields.items():
        if value is None:
            continue
        parts.append(f"{key}={_format_value(value)}")
    return " ".join(parts)


def log_event(
    logger: logging.Logger, level: int, event: str, **fields: object
) -> None:
    """Log a structured event if ``level`` is enabled (cheap when not)."""
    if logger.isEnabledFor(level):
        logger.log(level, kv_line(event, **fields))


class KeyValueFormatter(logging.Formatter):
    """Formats records as ``ts=<epoch> level=<name> logger=<name> <msg>``."""

    def format(self, record: logging.LogRecord) -> str:
        prefix = (
            f"ts={record.created:.6f} level={record.levelname.lower()} "
            f"logger={record.name}"
        )
        return f"{prefix} {record.getMessage()}"


def configure_logging(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Install a key=value stream handler on the ``repro`` root logger.

    Idempotent: a previously installed handler from this function is
    replaced, not duplicated.  Returns the installed handler so callers
    (tests) can remove it again.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_kv_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(KeyValueFormatter())
    handler._repro_kv_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler

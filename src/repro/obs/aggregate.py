"""Cross-shard metrics aggregation: merge Prometheus expositions.

The shard supervisor's ``GET /metrics`` scrapes each worker's
introspection endpoint (the text exposition
:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus` produces)
and serves one merged exposition, so a single scrape sees fleet-wide
totals no matter how many processes serve the port.

Merge semantics per family kind:

- **counter** / **gauge** — samples with identical label sets sum.
  (Gauges here are monotone counts exposed as gauges — connections
  served, queue depths — where a sum across shards is the fleet truth.)
- **histogram** — ``_sum`` and ``_count`` sum; ``_bucket`` series merge
  over the *union* of ``le`` edges using cumulative semantics.  All
  shards run the same code, so finite bucket edges come from the same
  grid (``bucket_width`` multiples) and an edge missing from one shard's
  sparse exposition means *that bucket was empty there*: the shard's
  cumulative value at the missing edge is its value at the largest
  present edge below it (or 0).  That makes the carried-forward merge
  exact, not an approximation.

Disagreements that would make a merge silently wrong fail loudly as
:class:`MergeError`: the same family name exposed with different
``# TYPE`` kinds, or histogram series whose label *names* differ across
shards (label values may differ freely — that is what labels are for).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["MergeError", "ParsedFamily", "parse_exposition", "merge_expositions"]


class MergeError(ValueError):
    """Shard expositions disagree in a way a sum cannot paper over."""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


@dataclass
class ParsedFamily:
    """One metric family from a text exposition."""

    name: str
    kind: str = "untyped"
    help: str = ""
    #: (sample_name, labels, value) in exposition order
    samples: list[tuple[str, dict[str, str], float]] = field(
        default_factory=list
    )


def parse_exposition(text: str) -> dict[str, ParsedFamily]:
    """Parse a Prometheus text exposition into families keyed by name.

    Understands the subset ``render_prometheus`` emits (and any
    conforming v0.0.4 text): ``# HELP`` / ``# TYPE`` comments and
    ``name{labels} value`` samples.  Histogram ``_bucket``/``_sum``/
    ``_count`` samples are filed under their family's base name.
    """
    families: dict[str, ParsedFamily] = {}

    def family_for(sample_name: str) -> ParsedFamily:
        # histogram samples belong to the family declared by # TYPE
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base].kind == "histogram":
                    return families[base]
        return families.setdefault(sample_name, ParsedFamily(sample_name))

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                fam = families.setdefault(name, ParsedFamily(name))
                if parts[1] == "TYPE":
                    fam.kind = parts[3].strip() if len(parts) > 3 else "untyped"
                else:
                    fam.help = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MergeError(f"unparseable exposition line: {line!r}")
        labels_text = match.group("labels") or ""
        labels = {
            key: _unescape(value)
            for key, value in _LABEL_RE.findall(labels_text)
        }
        fam = family_for(match.group("name"))
        fam.samples.append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return families


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


def _check_label_names(
    family: str, seen: set[frozenset] , labels: dict[str, str]
) -> None:
    names = frozenset(labels)
    if seen and names not in seen:
        expected = ", ".join(sorted(next(iter(seen))) or ("<none>",))
        got = ", ".join(sorted(names) or ("<none>",))
        raise MergeError(
            f"family {family!r}: label names disagree across shards "
            f"(saw {{{expected}}}, then {{{got}}})"
        )
    seen.add(names)


def merge_expositions(texts: list[str]) -> str:
    """Merge shard expositions into one fleet-wide exposition text."""
    parsed = [parse_exposition(text) for text in texts]

    # family name -> kind/help consensus (fail loudly on kind conflict)
    merged: dict[str, ParsedFamily] = {}
    for shards in parsed:
        for name, fam in shards.items():
            agg = merged.setdefault(
                name, ParsedFamily(name, fam.kind, fam.help)
            )
            if not agg.help and fam.help:
                agg.help = fam.help
            if agg.kind == "untyped":
                agg.kind = fam.kind
            elif fam.kind not in ("untyped", agg.kind):
                raise MergeError(
                    f"family {name!r}: kind disagrees across shards "
                    f"({agg.kind} vs {fam.kind})"
                )

    lines: list[str] = []
    for name in sorted(merged):
        fam = merged[name]
        shard_fams = [shards[name] for shards in parsed if name in shards]
        if not any(f.samples for f in shard_fams):
            continue
        lines.append(f"# HELP {name} {fam.help or name}")
        lines.append(f"# TYPE {name} {fam.kind}")
        if fam.kind == "histogram":
            lines.extend(_merge_histogram(name, shard_fams))
        else:
            lines.extend(_merge_flat(name, shard_fams))
    return "\n".join(lines) + "\n"


def _merge_flat(name: str, shard_fams: list[ParsedFamily]) -> list[str]:
    """Sum counter/gauge samples with identical label sets."""
    totals: dict[tuple, float] = {}
    labels_by_key: dict[tuple, dict[str, str]] = {}
    seen_names: set[frozenset] = set()
    for fam in shard_fams:
        for _sample, labels, value in fam.samples:
            _check_label_names(name, seen_names, labels)
            key = _label_key(labels)
            totals[key] = totals.get(key, 0.0) + value
            labels_by_key[key] = labels
    return [
        f"{name}{_render_labels(labels_by_key[key])} {_render_value(total)}"
        for key, total in sorted(totals.items())
    ]


def _merge_histogram(name: str, shard_fams: list[ParsedFamily]) -> list[str]:
    """Merge cumulative bucket series over the union of ``le`` edges."""
    # series key = labels minus `le`; per shard keep its sorted cumulative
    # bucket list so missing edges carry the prior cumulative forward.
    buckets: dict[tuple, list[list[tuple[float, float]]]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}
    labels_by_key: dict[tuple, dict[str, str]] = {}
    seen_names: set[frozenset] = set()

    for fam in shard_fams:
        shard_buckets: dict[tuple, list[tuple[float, float]]] = {}
        for sample, labels, value in fam.samples:
            if sample == f"{name}_bucket":
                base = {k: v for k, v in labels.items() if k != "le"}
                _check_label_names(name, seen_names, base)
                key = _label_key(base)
                labels_by_key.setdefault(key, base)
                edge = _parse_value(labels.get("le", "+Inf"))
                shard_buckets.setdefault(key, []).append((edge, value))
            elif sample == f"{name}_sum":
                _check_label_names(name, seen_names, labels)
                key = _label_key(labels)
                labels_by_key.setdefault(key, labels)
                sums[key] = sums.get(key, 0.0) + value
            elif sample == f"{name}_count":
                _check_label_names(name, seen_names, labels)
                key = _label_key(labels)
                labels_by_key.setdefault(key, labels)
                counts[key] = counts.get(key, 0.0) + value
            else:
                raise MergeError(
                    f"family {name!r}: unexpected histogram sample "
                    f"{sample!r}"
                )
        for key, series in shard_buckets.items():
            series.sort(key=lambda pair: pair[0])
            buckets.setdefault(key, []).append(series)

    lines: list[str] = []
    for key in sorted(labels_by_key):
        base = labels_by_key[key]
        shard_series = buckets.get(key, [])
        edges = sorted({edge for series in shard_series for edge, _ in series})
        for edge in edges:
            total = 0.0
            for series in shard_series:
                # cumulative value at `edge` for this shard: the value at
                # the largest present edge <= edge (0 before the first)
                value = 0.0
                for present_edge, cum in series:
                    if present_edge <= edge:
                        value = cum
                    else:
                        break
                total += value
            b_labels = dict(base)
            b_labels["le"] = _render_value(edge)
            lines.append(
                f"{name}_bucket{_render_labels(b_labels)} "
                f"{_render_value(total)}"
            )
        if key in sums:
            lines.append(
                f"{name}_sum{_render_labels(base)} "
                f"{_render_value(sums[key])}"
            )
        if key in counts:
            lines.append(
                f"{name}_count{_render_labels(base)} "
                f"{_render_value(counts[key])}"
            )
    return lines


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))

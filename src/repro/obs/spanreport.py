"""Cross-process span reporting: remote stores ship spans to an aggregator.

Each process in a deployment (client shim, WS-Dispatcher, WS-MsgBox,
service host) records spans into its *own* :class:`~repro.obs.trace.TraceStore`
— stores are in-memory and per-process, so ``GET /trace/<id>`` on the
dispatcher historically showed only the dispatcher's half of the story.
This module closes the loop: remote processes buffer their completed spans
in a :class:`ReportingTraceStore` outbox and a *shipper* POSTs them in
batches to the aggregator's span-report endpoint
(``POST /trace-report``), where :class:`SpanReportHandler` feeds them into
the aggregating store via :meth:`TraceStore.ingest`.  After one shipping
round, the dispatcher's ``GET /trace/<id>`` renders the complete
multi-hop span tree.

The wire format is deliberately plain JSON (``{"spans": [...]}``, each
entry a :meth:`Span.to_dict` payload), not SOAP: span reports are
operator-plane traffic between co-operating processes, and the endpoint
sits next to ``/metrics``, not next to the message path.  Span-id
collisions between per-process stores (each counts ``span-1, span-2 ...``)
are avoided by giving every store a distinct ``span_prefix``.

Two shippers cover both substrates: :class:`SimSpanShipper` runs as a
simulation process over :class:`~repro.simnet.httpsim.SimHttpClientPool`,
:class:`HttpSpanShipper` runs a daemon thread over
:class:`~repro.rt.client.HttpClient`.
"""

from __future__ import annotations

import json
import threading
from collections import deque

from repro.errors import ReproError, TransportError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import Span, TraceStore

#: default mount path of the aggregator's report endpoint
SPAN_REPORT_PATH = "/trace-report"

SPAN_REPORT_CONTENT_TYPE = "application/json; charset=utf-8"


def encode_span_report(spans: list[dict]) -> bytes:
    """Serialise a batch of span dicts into the report body."""
    return json.dumps({"spans": spans}, sort_keys=True).encode()


def decode_span_report(body: bytes) -> list[dict]:
    """Parse a report body; raises :class:`ValueError` on malformed input."""
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict) or not isinstance(payload.get("spans"), list):
        raise ValueError("span report must be a JSON object with a 'spans' list")
    return payload["spans"]


def make_span_report_request(
    spans: list[dict], path: str = SPAN_REPORT_PATH
) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", SPAN_REPORT_CONTENT_TYPE)
    return HttpRequest("POST", path, headers=headers, body=encode_span_report(spans))


class SpanReportHandler:
    """The aggregator side: a request handler absorbing reported spans.

    Mount it on a :class:`~repro.rt.service.SoapHttpApp` via
    ``app.mount_raw(SPAN_REPORT_PATH, handler)`` or route to it from a
    simnet server wrapper.  Replies 202 with the absorbed count, 400 for
    malformed reports.
    """

    def __init__(
        self,
        traces: TraceStore,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.traces = traces
        registry = metrics if metrics is not None else default_registry()
        reports = registry.counter(
            "obs_span_reports_total", "span-report requests, by outcome"
        )
        self._m_ok = reports.labels(outcome="ok")
        self._m_bad = reports.labels(outcome="bad")
        self._m_spans = registry.counter(
            "obs_spans_ingested_total", "remote spans absorbed into the store"
        )

    def __call__(self, request: HttpRequest) -> HttpResponse:
        if request.method != "POST":
            return HttpResponse(status=405, body=b"span reports are POSTed")
        try:
            spans = decode_span_report(request.body)
        except (ValueError, UnicodeDecodeError) as exc:
            self._m_bad.inc()
            return HttpResponse(status=400, body=f"bad span report: {exc}".encode())
        absorbed = self.traces.ingest(spans)
        self._m_ok.inc()
        self._m_spans.inc(absorbed)
        headers = Headers()
        headers.set("Content-Type", SPAN_REPORT_CONTENT_TYPE)
        body = json.dumps({"absorbed": absorbed}).encode()
        return HttpResponse(status=202, headers=headers, body=body)


class ReportingTraceStore(TraceStore):
    """A TraceStore that also buffers recorded spans for shipping.

    Every span recorded locally lands in a bounded outbox (oldest dropped
    on overflow — shipping is best-effort telemetry, never backpressure on
    the message path).  A shipper drains the outbox in batches.  Spans
    absorbed via :meth:`ingest` are *not* re-buffered, so chaining stores
    cannot loop reports forever.
    """

    def __init__(
        self,
        capacity: int = 512,
        enabled: bool = True,
        span_prefix: str = "span",
        outbox_capacity: int = 4096,
    ) -> None:
        super().__init__(capacity=capacity, enabled=enabled, span_prefix=span_prefix)
        if outbox_capacity <= 0:
            raise ValueError("outbox_capacity must be positive")
        self._outbox: deque[dict] = deque(maxlen=outbox_capacity)
        self._outbox_lock = threading.Lock()
        self._ingesting = False
        self.shipped_total = 0

    def record(self, *args, **kwargs) -> Span | None:
        span = super().record(*args, **kwargs)
        if span is not None and not self._ingesting:
            with self._outbox_lock:
                self._outbox.append(span.to_dict())
        return span

    def ingest(self, spans: list[dict]) -> int:
        self._ingesting = True
        try:
            return super().ingest(spans)
        finally:
            self._ingesting = False

    @property
    def pending(self) -> int:
        with self._outbox_lock:
            return len(self._outbox)

    def drain_reports(self, max_spans: int | None = None) -> list[dict]:
        """Pop up to ``max_spans`` buffered spans (all, when None)."""
        out: list[dict] = []
        with self._outbox_lock:
            while self._outbox and (max_spans is None or len(out) < max_spans):
                out.append(self._outbox.popleft())
        self.shipped_total += len(out)
        return out

    def requeue_reports(self, spans: list[dict]) -> None:
        """Put a failed batch back at the front (bounded, best-effort)."""
        self.shipped_total -= len(spans)
        with self._outbox_lock:
            for span in reversed(spans):
                self._outbox.appendleft(span)


class SimSpanShipper:
    """Ships a :class:`ReportingTraceStore`'s outbox over simnet.

    Runs as a simulation process: every ``interval`` simulated seconds it
    drains up to ``batch`` spans and POSTs them to the aggregator's
    report endpoint.  ``flush()`` is a generator usable from tests and
    experiment teardown to ship synchronously at a chosen simulated time.
    """

    def __init__(
        self,
        net,
        host,
        store: ReportingTraceStore,
        dest_host: str,
        dest_port: int,
        interval: float = 0.5,
        batch: int = 64,
        path: str = SPAN_REPORT_PATH,
        connect_timeout: float = 3.0,
        response_timeout: float = 5.0,
    ) -> None:
        from repro.simnet.httpsim import SimHttpClientPool

        self.sim = net.sim
        self.store = store
        self.dest_host = dest_host
        self.dest_port = dest_port
        self.interval = interval
        self.batch = batch
        self.path = path
        self.pool = SimHttpClientPool(
            net, host,
            connect_timeout=connect_timeout,
            response_timeout=response_timeout,
        )
        self.shipped = 0
        self.failed = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.process(self._pump())

    def stop(self) -> None:
        self._running = False

    def _pump(self):
        while self._running:
            yield self.sim.timeout(self.interval)
            yield from self.flush()

    def flush(self):
        """Generator: ship everything currently buffered, batch by batch."""
        while True:
            spans = self.store.drain_reports(self.batch)
            if not spans:
                return
            request = make_span_report_request(spans, path=self.path)
            try:
                response = yield from self.pool.exchange(
                    self.dest_host, self.dest_port, request
                )
                if response.status >= 300:
                    raise TransportError(f"HTTP {response.status}")
                self.shipped += len(spans)
            except (TransportError, ReproError):
                # telemetry is best-effort: requeue once and stop this
                # round; the next pump tick retries
                self.failed += len(spans)
                self.store.requeue_reports(spans)
                return


class HttpSpanShipper:
    """Ships a :class:`ReportingTraceStore`'s outbox over real sockets.

    A daemon thread drains the outbox every ``interval`` seconds and
    POSTs batches to ``url`` with an :class:`~repro.rt.client.HttpClient`.
    ``flush()`` ships synchronously (used on shutdown and in tests).
    """

    def __init__(
        self,
        client,
        url: str,
        store: ReportingTraceStore,
        interval: float = 0.5,
        batch: int = 64,
    ) -> None:
        self.client = client
        self.url = url
        self.store = store
        self.interval = interval
        self.batch = batch
        self.shipped = 0
        self.failed = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="span-shipper", daemon=True
        )
        self._thread.start()

    def stop(self, final_flush: bool = True) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if final_flush:
            self.flush()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.flush()

    def flush(self) -> int:
        """Ship everything currently buffered; returns spans shipped."""
        total = 0
        while True:
            spans = self.store.drain_reports(self.batch)
            if not spans:
                return total
            request = make_span_report_request(spans, path=self.url)
            try:
                response = self.client.request(self.url, request)
                if response.status >= 300:
                    raise TransportError(f"HTTP {response.status}")
                self.shipped += len(spans)
                total += len(spans)
            except (TransportError, ReproError):
                self.failed += len(spans)
                self.store.requeue_reports(spans)
                return total

"""The dispatcher introspection surface: ``GET /metrics`` and ``GET /trace/<id>``.

:class:`Introspection` aggregates the three observability feeds — the
:class:`~repro.obs.metrics.MetricsRegistry`, the
:class:`~repro.obs.trace.TraceStore`, and legacy per-component ``stats``
dict sources (what :class:`~repro.core.status.StatusPage` used to scrape)
— behind two GET endpoints mounted on any
:class:`~repro.rt.service.SoapHttpApp`:

- ``GET /metrics`` — Prometheus-style text exposition by default;
  ``?format=json`` (or ``Accept: application/json``) returns the JSON
  view, which also embeds the component sources and trace-store summary.
- ``GET /trace/<id>`` — one trace as JSON (span list + wall time);
  ``?format=text`` renders the ASCII timeline instead.
- ``GET /deadletters`` — the dead-letter queues of every registered
  durable journal: totals, counts by reason, and the most recent poison
  messages.
- ``GET /slo`` — the declared pipeline-stage latency objectives and the
  delivery-success error budget, evaluated live by an
  :class:`~repro.obs.slo.SloTracker`; also embedded in ``GET /health``.
- ``GET /flightrecorder`` — the :class:`~repro.obs.flight.FlightRecorder`
  ring of recent state-transition events (``?kind=<k>`` filters,
  ``?last=<n>`` truncates).
- ``GET /metrics/history`` — the :class:`~repro.obs.history.MetricsSnapshotter`
  time-series ring of periodic registry samples.

Component sources keep working so existing deployments lose nothing: a
source is anything with a ``stats`` dict property or a callable returning
a dict, exactly as :meth:`StatusPage.add` accepted — but duplicate names
are now rejected (or suffixed, opt-in) instead of silently shadowing.
"""

from __future__ import annotations

import json
import threading
from typing import Callable

from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.flight import FlightRecorder, default_flight_recorder
from repro.obs.history import MetricsSnapshotter
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.slo import SloTracker
from repro.obs.trace import TraceStore, default_trace_store


def _query_param(request: HttpRequest, name: str) -> str | None:
    """Tiny query-string accessor (no stdlib urllib to stay dependency-light)."""
    parts = request.target.split("?", 1)
    if len(parts) < 2:
        return None
    for pair in parts[1].split("&"):
        if "=" in pair:
            key, value = pair.split("=", 1)
            if key == name:
                return value
    return None


def _wants_json(request: HttpRequest) -> bool:
    target = request.target
    if "format=json" in target:
        return True
    accept = request.headers.get("Accept") or ""
    return "application/json" in accept


def _text_response(body: str, content_type: str = "text/plain; charset=utf-8") -> HttpResponse:
    headers = Headers()
    headers.set("Content-Type", content_type)
    return HttpResponse(status=200, headers=headers, body=body.encode())


def _json_response(payload: dict, status: int = 200) -> HttpResponse:
    headers = Headers()
    headers.set("Content-Type", "application/json; charset=utf-8")
    body = json.dumps(payload, indent=2, sort_keys=True, default=str).encode()
    return HttpResponse(status=status, headers=headers, body=body)


class Introspection:
    """One deployment's introspection endpoints, fed by the registry."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        traces: TraceStore | None = None,
        title: str = "WS-Dispatcher introspection",
        flight: FlightRecorder | None = None,
        slo: SloTracker | None = None,
        history: MetricsSnapshotter | None = None,
    ) -> None:
        """``flight``/``slo``/``history`` feed the ``/flightrecorder``,
        ``/slo``, and ``/metrics/history`` pages; defaults are the
        process-wide flight recorder, a tracker with the default policy
        over ``metrics``, and an (unstarted) snapshotter over ``metrics``
        — so every endpoint answers even on a bare deployment."""
        self.metrics = metrics if metrics is not None else default_registry()
        self.traces = traces if traces is not None else default_trace_store()
        self.flight = flight if flight is not None else default_flight_recorder()
        self.slo = slo if slo is not None else SloTracker(self.metrics)
        self.history = (
            history if history is not None else MetricsSnapshotter(self.metrics)
        )
        self.title = title
        self._lock = threading.Lock()
        self._sources: dict[str, Callable[[], dict]] = {}
        self._health_sources: dict[str, Callable[[], dict]] = {}
        self._deadletter_sources: dict[str, Callable[[], dict]] = {}

    # -- breaker / overload health ----------------------------------------
    def add_health_source(self, name: str, fetch: Callable[[], dict]) -> None:
        """Register a health feed (e.g. a dispatcher's
        ``health_snapshot`` bound method): breaker states, shed counts,
        hold-store stats.  Rendered as a ``health`` section of the JSON
        snapshot and a ``GET /health`` endpoint."""
        with self._lock:
            if name in self._health_sources:
                raise ValueError(f"health source {name!r} already registered")
            self._health_sources[name] = fetch

    def health_snapshot(self) -> dict[str, dict]:
        with self._lock:
            sources = list(self._health_sources.items())
        out: dict[str, dict] = {}
        for name, fetch in sources:
            try:
                out[name] = dict(fetch())
            except Exception as exc:  # noqa: BLE001 - a broken source is data
                out[name] = {"error": repr(exc)}
        return out

    # -- dead-letter queue --------------------------------------------------
    def add_deadletter_source(self, name: str, fetch: Callable[[], dict]) -> None:
        """Register a dead-letter feed (e.g. a
        :meth:`~repro.store.MessageJournal.deadletter_snapshot` bound
        method): counts by reason plus the most recent poison messages.
        Rendered as ``GET /deadletters``."""
        with self._lock:
            if name in self._deadletter_sources:
                raise ValueError(f"deadletter source {name!r} already registered")
            self._deadletter_sources[name] = fetch

    def deadletters_snapshot(self) -> dict[str, dict]:
        with self._lock:
            sources = list(self._deadletter_sources.items())
        out: dict[str, dict] = {}
        for name, fetch in sources:
            try:
                out[name] = dict(fetch())
            except Exception as exc:  # noqa: BLE001 - a broken source is data
                out[name] = {"error": repr(exc)}
        return out

    # -- legacy component sources (StatusPage semantics) ------------------
    def add_source(
        self, name: str, source: object, on_duplicate: str = "error"
    ) -> str:
        """Register a component stat source; returns the name used.

        ``source`` must expose a ``stats`` dict property or be callable.
        Duplicate names raise :class:`ValueError` (``on_duplicate="error"``)
        or get a ``#2``-style suffix (``on_duplicate="suffix"``) — never
        the silent shadowing the old StatusPage allowed.
        """
        if on_duplicate not in ("error", "suffix"):
            raise ValueError(f"unknown on_duplicate policy {on_duplicate!r}")
        if callable(source):
            fetch = source
        elif hasattr(source, "stats"):
            fetch = lambda s=source: dict(s.stats)
        else:
            raise TypeError(f"{name}: source needs .stats or to be callable")
        with self._lock:
            final = name
            if final in self._sources:
                if on_duplicate == "error":
                    raise ValueError(
                        f"component {name!r} already registered; pass "
                        "on_duplicate='suffix' to keep both"
                    )
                n = 2
                while f"{name}#{n}" in self._sources:
                    n += 1
                final = f"{name}#{n}"
            self._sources[final] = fetch
            return final

    def components_snapshot(self) -> dict[str, dict]:
        """Point-in-time stats of every registered component source."""
        with self._lock:
            sources = list(self._sources.items())
        out: dict[str, dict] = {}
        for name, fetch in sources:
            try:
                out[name] = dict(fetch())
            except Exception as exc:  # noqa: BLE001 - a broken source is data
                out[name] = {"error": repr(exc)}
        return out

    # -- views ------------------------------------------------------------
    def json_snapshot(self) -> dict:
        trace_ids = self.traces.ids()
        snapshot = {
            "title": self.title,
            "metrics": self.metrics.snapshot(),
            "components": self.components_snapshot(),
            "traces": {"count": len(trace_ids), "ids": trace_ids[-20:]},
        }
        health = self.health_snapshot()
        if health:
            snapshot["health"] = health
        deadletters = self.deadletters_snapshot()
        if deadletters:
            snapshot["deadletters"] = deadletters
        return snapshot

    def render_prometheus(self) -> str:
        """Registry exposition plus component stats as synthetic gauges."""
        lines = [self.metrics.render_prometheus().rstrip("\n")]
        components = self.components_snapshot()
        if components:
            lines.append("# TYPE repro_component_stat gauge")
            for component in sorted(components):
                for key, value in sorted(components[component].items()):
                    try:
                        numeric = float(value)
                    except (TypeError, ValueError):
                        continue
                    if numeric.is_integer():
                        rendered = str(int(numeric))
                    else:
                        rendered = repr(numeric)
                    lines.append(
                        f'repro_component_stat{{component="{component}",'
                        f'stat="{key}"}} {rendered}'
                    )
        return "\n".join(lines) + "\n"

    # -- GET handlers ------------------------------------------------------
    def metrics_handler(self, request: HttpRequest) -> HttpResponse:
        if _wants_json(request):
            return _json_response(self.json_snapshot())
        return _text_response(
            self.render_prometheus(), "text/plain; version=0.0.4; charset=utf-8"
        )

    def trace_handler(self, request: HttpRequest) -> HttpResponse:
        path = request.target.split("?", 1)[0]
        marker = "/trace/"
        idx = path.rfind(marker)
        trace_id = path[idx + len(marker):] if idx >= 0 else ""
        if not trace_id:
            return _json_response(
                {"traces": self.traces.ids()[-50:]}, status=200
            )
        if trace_id not in self.traces:
            return _json_response(
                {"error": f"unknown trace {trace_id!r}"}, status=404
            )
        if "format=text" in request.target:
            return _text_response(self.traces.render_timeline(trace_id))
        return _json_response(self.traces.to_json(trace_id))

    def health_handler(self, request: HttpRequest) -> HttpResponse:
        payload: dict = dict(self.health_snapshot())
        payload["slo"] = self.slo.snapshot()
        return _json_response(payload)

    def deadletters_handler(self, request: HttpRequest) -> HttpResponse:
        return _json_response(self.deadletters_snapshot())

    def slo_handler(self, request: HttpRequest) -> HttpResponse:
        return _json_response(self.slo.snapshot())

    def flight_handler(self, request: HttpRequest) -> HttpResponse:
        kind = _query_param(request, "kind")
        last = _query_param(request, "last")
        if kind is None and last is None:
            return _json_response(self.flight.to_json())
        try:
            last_n = int(last) if last is not None else None
        except ValueError:
            return _json_response({"error": f"bad last={last!r}"}, status=400)
        return _json_response(
            {"events": self.flight.snapshot(last=last_n, kind=kind)}
        )

    def history_handler(self, request: HttpRequest) -> HttpResponse:
        return _json_response(self.history.to_json())

    def mount(
        self,
        app,
        metrics_path: str = "/metrics",
        trace_path: str = "/trace",
        health_path: str = "/health",
        deadletters_path: str = "/deadletters",
        slo_path: str = "/slo",
        flight_path: str = "/flightrecorder",
        history_path: str = "/metrics/history",
    ) -> None:
        """Mount the endpoints on a :class:`~repro.rt.service.SoapHttpApp`.

        ``/metrics/history`` coexists with ``/metrics`` because page
        routing is longest-prefix-first.
        """
        app.mount_page(metrics_path, self.metrics_handler)
        app.mount_page(trace_path, self.trace_handler)
        app.mount_page(health_path, self.health_handler)
        app.mount_page(deadletters_path, self.deadletters_handler)
        app.mount_page(slo_path, self.slo_handler)
        app.mount_page(flight_path, self.flight_handler)
        app.mount_page(history_path, self.history_handler)

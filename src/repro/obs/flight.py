"""Flight recorder: an always-on ring buffer of state-transition events.

Metrics answer *how much* and traces answer *where*, but neither answers
the postmortem question — *what happened in the five seconds before this
deadletter?*  The :class:`FlightRecorder` keeps a bounded deque of
structured events recorded at every interesting state transition in the
pipeline: breaker trips, overload sheds, deadletters, journal recovery,
chaos fault activations, drain timeouts, simulated crashes.  Recording is
a dict append under a lock — cheap enough to leave on in production, which
is the whole point: the recorder is most valuable for the failure nobody
reproduced.

On a terminal event (crash, deadletter) the owning component calls
:meth:`FlightRecorder.postmortem`, which dumps the current ring to a JSON
file in ``postmortem_dir`` — the "black box" retrieved after the fact.
Dumps are capped by ``postmortem_limit`` so a deadletter storm cannot fill
the disk.

Timestamps are supplied by the recording component (``t=``) so the ring
works identically under the simulated clock and the threaded runtime; when
omitted the recorder falls back to its own ``clock`` (wall monotonic by
default).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Callable


class FlightRecorder:
    """Bounded ring buffer of structured state-transition events."""

    def __init__(
        self,
        capacity: int = 2048,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        postmortem_dir: str | None = None,
        postmortem_limit: int = 16,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.clock = clock if clock is not None else time.monotonic
        self.postmortem_dir = postmortem_dir
        self.postmortem_limit = postmortem_limit
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._dumps = 0

    # -- recording ---------------------------------------------------------
    def record(
        self, kind: str, component: str, t: float | None = None, **fields
    ) -> dict | None:
        """Append one event; returns it (None when disabled).

        ``kind`` is the transition class (``breaker-open``, ``shed``,
        ``deadletter``, ...), ``component`` names the recording party, and
        ``fields`` carry the event-specific payload (stringified so the
        ring is always JSON-serialisable).
        """
        if not self.enabled:
            return None
        event = {
            "kind": kind,
            "component": component,
            "t": float(t) if t is not None else self.clock(),
        }
        for key, value in fields.items():
            if value is None:
                continue
            event[key] = value if isinstance(value, (int, float, bool)) else str(value)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)
        return event

    # -- retrieval ---------------------------------------------------------
    def snapshot(self, last: int | None = None, kind: str | None = None) -> list[dict]:
        """Recent events oldest-first, optionally filtered by kind."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if last is not None:
            events = events[-last:]
        return [dict(e) for e in events]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (monotonic, unlike ``len`` on a full ring)."""
        with self._lock:
            return self._seq

    def counts_by_kind(self) -> dict[str, int]:
        with self._lock:
            events = list(self._events)
        out: dict[str, int] = {}
        for e in events:
            out[e["kind"]] = out.get(e["kind"], 0) + 1
        return out

    def to_json(self) -> dict:
        return {
            "capacity": self.capacity,
            "enabled": self.enabled,
            "total_recorded": self.total_recorded,
            "counts_by_kind": self.counts_by_kind(),
            "postmortems_written": self._dumps,
            "events": self.snapshot(),
        }

    # -- postmortem dumps --------------------------------------------------
    def dump(self, path: str, trigger: str = "manual") -> str:
        """Write the current ring to ``path`` as deterministic JSON."""
        payload = {
            "trigger": trigger,
            "total_recorded": self.total_recorded,
            "events": self.snapshot(),
        }
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def postmortem(
        self, trigger: str, t: float | None = None, **fields
    ) -> str | None:
        """Dump the ring to ``postmortem_dir`` on a terminal event.

        Returns the written path, or None when no directory is configured
        or the per-process dump cap was reached.  The triggering event is
        recorded into the ring first so the dump explains itself; pass
        ``t`` under the simulated clock so dumps stay deterministic.
        """
        self.record("postmortem", "flight", t=t, **{"trigger": trigger, **fields})
        if self.postmortem_dir is None:
            return None
        with self._lock:
            if self._dumps >= self.postmortem_limit:
                return None
            self._dumps += 1
            n = self._dumps
        path = os.path.join(self.postmortem_dir, f"postmortem-{n}-{trigger}.json")
        return self.dump(path, trigger=trigger)


# -- process-wide default recorder -----------------------------------------
_default_lock = threading.Lock()
_default_recorder = FlightRecorder()


def default_flight_recorder() -> FlightRecorder:
    """The process-wide recorder components record into by default."""
    with _default_lock:
        return _default_recorder


def set_default_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the process-wide default; returns the previous one."""
    global _default_recorder
    with _default_lock:
        previous = _default_recorder
        _default_recorder = recorder
        return previous

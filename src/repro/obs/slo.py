"""Pipeline-stage latency SLOs: objectives, error budgets, burn rates.

The dispatcher pipeline has five instrumented stages — **admit** (arrival
to queued), **journal** (write-ahead append), **queue_accept** (waiting
for a CxThread), **queue_destination** (waiting for a WsThread), and
**deliver** (transmit to the destination) — each observed into one
``msgd_stage_seconds{stage=...}`` histogram family by both dispatchers
(:mod:`repro.core.msg_dispatcher` and :mod:`repro.core.sim_dispatcher`).

:class:`SloTracker` evaluates declared objectives against that family: a
p99 latency target per stage, plus an end-to-end delivery-success target
(delivered / (delivered + dropped), default **99.9%**) with classic
error-budget arithmetic — the budget is ``1 - objective``, consumption is
the observed failure fraction, and the *burn rate* is consumption divided
by budget (burn rate 1.0 = the budget is exactly spent; > 1.0 = the SLO
is violated).  The snapshot is surfaced on ``GET /slo`` and embedded in
``GET /health`` by :class:`repro.obs.http.Introspection`.

Objectives are declared data (:class:`SloPolicy`), not configuration
files: experiments construct a policy matching their simulated latency
regime, deployments take the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry, default_registry

#: canonical stage names, pipeline order
STAGES = ("admit", "journal", "queue_accept", "queue_destination", "deliver")

#: the shared stage histogram family: one bucket = 20ms, range 10.24s.
#: Both dispatchers and the tracker must create the family with the same
#: shape, so the parameters live here.
STAGE_METRIC = "msgd_stage_seconds"
STAGE_BUCKET_WIDTH = 0.02
STAGE_NUM_BUCKETS = 512


def stage_histogram(metrics: MetricsRegistry):
    """The ``msgd_stage_seconds`` family (created on first use)."""
    return metrics.histogram(
        STAGE_METRIC,
        "time spent in each dispatcher pipeline stage, by stage",
        bucket_width=STAGE_BUCKET_WIDTH,
        num_buckets=STAGE_NUM_BUCKETS,
    )


@dataclass(frozen=True)
class StageObjective:
    """One declared per-stage latency objective."""

    stage: str
    p99: float  # seconds


def _default_objectives() -> tuple[StageObjective, ...]:
    return (
        StageObjective("admit", p99=0.10),
        StageObjective("journal", p99=0.10),
        StageObjective("queue_accept", p99=0.50),
        StageObjective("queue_destination", p99=2.00),
        StageObjective("deliver", p99=1.00),
    )


@dataclass(frozen=True)
class SloPolicy:
    """The declared service-level objectives for one deployment."""

    objectives: tuple[StageObjective, ...] = field(
        default_factory=_default_objectives
    )
    #: delivered / (delivered + dropped) must stay at or above this
    delivery_success: float = 0.999

    def objective_for(self, stage: str) -> StageObjective | None:
        for obj in self.objectives:
            if obj.stage == stage:
                return obj
        return None


class SloTracker:
    """Evaluates an :class:`SloPolicy` against the live metrics registry."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        policy: SloPolicy | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else default_registry()
        self.policy = policy if policy is not None else SloPolicy()

    # -- evaluation --------------------------------------------------------
    def _stage_children(self) -> dict[str, object]:
        if not self.metrics.enabled:
            return {}
        family = stage_histogram(self.metrics)
        out: dict[str, object] = {}
        for labels, child in family.samples():
            stage = labels.get("stage")
            if stage:
                out[stage] = child
        return out

    def _counter_total(self, name: str) -> float:
        if not self.metrics.enabled:
            return 0.0
        family = self.metrics.counter(name)
        return sum(child.get() for _labels, child in family.samples())

    def stage_report(self) -> dict[str, dict]:
        """Per-stage p99 against the declared objective.

        A stage with no observations yet is vacuously met; a stage whose
        p99 landed in the histogram overflow bucket reports ``p99`` as
        ``inf`` and is counted as missed.
        """
        children = self._stage_children()
        report: dict[str, dict] = {}
        for stage in STAGES:
            objective = self.policy.objective_for(stage)
            child = children.get(stage)
            count = child.count if child is not None else 0
            p99 = child.quantile(0.99) if child is not None and count else 0.0
            entry: dict = {"count": count, "p99": p99}
            if objective is not None:
                entry["objective_p99"] = objective.p99
                entry["met"] = count == 0 or p99 <= objective.p99
            report[stage] = entry
        return report

    def delivery_report(self) -> dict:
        """Delivery-success ratio with error-budget/burn-rate arithmetic."""
        delivered = self._counter_total("msgd_delivered_total")
        dropped = self._counter_total("msgd_dropped_total")
        total = delivered + dropped
        objective = self.policy.delivery_success
        allowed = max(1.0 - objective, 1e-12)
        if total:
            success_ratio = delivered / total
            consumed = dropped / total
        else:
            success_ratio = 1.0
            consumed = 0.0
        burn_rate = consumed / allowed
        return {
            "delivered": delivered,
            "dropped": dropped,
            "total": total,
            "success_ratio": success_ratio,
            "objective": objective,
            "met": success_ratio >= objective,
            "error_budget": {
                "allowed": 1.0 - objective,
                "consumed": consumed,
                "burn_rate": burn_rate,
                "remaining_fraction": max(0.0, 1.0 - burn_rate),
            },
        }

    def snapshot(self) -> dict:
        """The full SLO evaluation served on ``GET /slo``."""
        stages = self.stage_report()
        delivery = self.delivery_report()
        met = delivery["met"] and all(
            entry.get("met", True) for entry in stages.values()
        )
        return {"met": met, "stages": stages, "delivery": delivery}

"""Hop-by-hop message tracing for the dispatcher pipeline.

The question this answers is the one the paper's architecture makes hard:
*where did message X spend its time* on the client → CxThread → WsThread
queue → service → reply path.  A :class:`TraceContext` (trace id + parent
span id) rides each message as a SOAP header block in its own namespace,
next to the WS-Addressing headers; because the dispatchers copy unknown
headers verbatim when forwarding, the context survives every rewrite and
both transport stacks (real sockets and simnet) for free.  Components
that *build new envelopes* in response to a message (echo services,
WS-MsgBox acknowledgements) re-attach the context with
:func:`propagate_trace`.

Spans land in a :class:`TraceStore` — a bounded in-memory ring buffer of
recent traces with a per-trace ASCII timeline — served over HTTP by
:mod:`repro.obs.http` as ``GET /trace/<id>``.

Timestamps are whatever clock the recording component uses (wall
monotonic in the threaded runtime, simulated seconds under simnet); one
trace should stay within one clock domain, which holds whenever the whole
deployment shares a clock, as every experiment here does.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.soap.envelope import Envelope
from repro.util.ids import new_uuid
from repro.xmlmini import Element, QName

#: namespace of the trace header block (sits alongside WS-Addressing)
TRACE_NS = "urn:repro:obs"

Q_TRACE = QName(TRACE_NS, "Trace")
Q_TRACE_ID = QName(TRACE_NS, "TraceId")
Q_PARENT_SPAN = QName(TRACE_NS, "ParentSpanId")


@dataclass
class TraceContext:
    """The propagated part of a trace: its id and the upstream span."""

    trace_id: str
    parent_span_id: str | None = None

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=f"trace-{new_uuid()}")

    def child(self, parent_span_id: str) -> "TraceContext":
        """The context downstream hops should see."""
        return TraceContext(self.trace_id, parent_span_id=parent_span_id)


def attach_trace(envelope: Envelope, ctx: TraceContext) -> Envelope:
    """Replace the envelope's trace header with ``ctx`` (in place)."""
    envelope.remove_headers(TRACE_NS)
    block = Element(Q_TRACE)
    block.children.append(Element(Q_TRACE_ID, text=ctx.trace_id))
    if ctx.parent_span_id:
        block.children.append(Element(Q_PARENT_SPAN, text=ctx.parent_span_id))
    envelope.headers.append(block)
    return envelope


def extract_trace(envelope: Envelope) -> TraceContext | None:
    """Decode the trace header, or None for untraced messages."""
    block = envelope.find_header(Q_TRACE)
    if block is None:
        return None
    trace_id: str | None = None
    parent: str | None = None
    for child in block.element_children():
        if child.name == Q_TRACE_ID:
            trace_id = child.text.strip()
        elif child.name == Q_PARENT_SPAN:
            parent = child.text.strip()
    if not trace_id:
        return None
    return TraceContext(trace_id, parent_span_id=parent or None)


def ensure_trace(envelope: Envelope) -> TraceContext:
    """Extract the trace context, creating and attaching one if absent."""
    ctx = extract_trace(envelope)
    if ctx is None:
        ctx = TraceContext.new()
        attach_trace(envelope, ctx)
    return ctx


def propagate_trace(
    source: Envelope, target: Envelope, parent_span_id: str | None = None
) -> TraceContext | None:
    """Copy the trace context of ``source`` onto ``target``.

    Used by components that answer a message with a *new* envelope (the
    echo services, WS-MsgBox acks): forwarding copies headers already, but
    a freshly built reply does not.  Returns the propagated context.
    """
    ctx = extract_trace(source)
    if ctx is None:
        return None
    out = ctx if parent_span_id is None else ctx.child(parent_span_id)
    attach_trace(target, out)
    return out


@dataclass
class Span:
    """One timed hop segment inside a trace."""

    trace_id: str
    span_id: str
    name: str
    component: str
    start: float
    end: float
    parent_id: str | None = None
    attrs: dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "component": self.component,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }


class TraceStore:
    """Bounded in-memory ring buffer of recent traces.

    Holds at most ``capacity`` traces; starting a new trace evicts the
    oldest.  ``enabled=False`` turns every record into a no-op (the
    tracing half of the benchmark guard's disabled mode).
    """

    def __init__(
        self,
        capacity: int = 512,
        enabled: bool = True,
        span_prefix: str = "span",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.enabled = enabled
        self.span_prefix = span_prefix
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        self._span_seq = itertools.count(1)

    def new_span_id(self) -> str:
        """Pre-allocate a span id (to advertise downstream before recording).

        ``span_prefix`` keeps ids from colliding when several processes —
        each with its own store counting from 1 — report spans into one
        aggregating store (the cross-process span-report path).
        """
        return f"{self.span_prefix}-{next(self._span_seq)}"

    def record(
        self,
        trace_id: str,
        name: str,
        component: str,
        start: float,
        end: float,
        span_id: str | None = None,
        parent_id: str | None = None,
        **attrs: str,
    ) -> Span | None:
        """Append one span to a trace; returns it (None when disabled)."""
        if not self.enabled:
            return None
        span = Span(
            trace_id=trace_id,
            span_id=span_id or self.new_span_id(),
            name=name,
            component=component,
            start=start,
            end=end,
            parent_id=parent_id,
            attrs={k: str(v) for k, v in attrs.items()},
        )
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                while len(self._traces) >= self.capacity:
                    self._traces.popitem(last=False)
                spans = []
                self._traces[trace_id] = spans
            spans.append(span)
        return span

    def ingest(self, spans: list[dict]) -> int:
        """Absorb spans reported by another process's store.

        Each entry is a :meth:`Span.to_dict` payload shipped over the
        span-report protocol (:mod:`repro.obs.spanreport`); malformed
        entries are skipped.  Returns the number of spans absorbed.
        Reported span ids are kept verbatim — remote stores use distinct
        ``span_prefix`` values so parent links resolve unambiguously.
        """
        absorbed = 0
        for payload in spans:
            try:
                trace_id = payload["trace_id"]
                span_id = payload["span_id"]
                name = payload["name"]
                component = payload["component"]
                start = float(payload["start"])
                end = float(payload["end"])
            except (KeyError, TypeError, ValueError):
                continue
            if not trace_id or not span_id:
                continue
            attrs = payload.get("attrs") or {}
            if not isinstance(attrs, dict):
                attrs = {}
            span = self.record(
                str(trace_id),
                str(name),
                str(component),
                start,
                end,
                span_id=str(span_id),
                parent_id=payload.get("parent_id") or None,
                **{str(k): str(v) for k, v in attrs.items()},
            )
            if span is not None:
                absorbed += 1
        return absorbed

    # -- retrieval --------------------------------------------------------
    def get(self, trace_id: str) -> list[Span]:
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def __contains__(self, trace_id: str) -> bool:
        with self._lock:
            return trace_id in self._traces

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def ids(self) -> list[str]:
        """Trace ids, oldest first."""
        with self._lock:
            return list(self._traces)

    def wall_time(self, trace_id: str) -> float:
        """Last span end minus first span start (0.0 for unknown traces)."""
        spans = self.get(trace_id)
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    def to_json(self, trace_id: str) -> dict:
        spans = sorted(self.get(trace_id), key=lambda s: (s.start, s.end))
        return {
            "trace_id": trace_id,
            "spans": [s.to_dict() for s in spans],
            "wall_time": (
                max(s.end for s in spans) - min(s.start for s in spans)
                if spans
                else 0.0
            ),
        }

    def render_timeline(self, trace_id: str, width: int = 48) -> str:
        """ASCII per-trace timeline: one bar per span, time left to right."""
        spans = sorted(self.get(trace_id), key=lambda s: (s.start, s.end))
        if not spans:
            return f"trace {trace_id}: (no spans)\n"
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        total = max(t1 - t0, 1e-12)
        label_w = max(
            len(f"{s.component}/{s.name}") for s in spans
        )
        lines = [f"trace {trace_id}  wall={total:.6g}s  spans={len(spans)}"]
        for s in spans:
            lo = int((s.start - t0) / total * width)
            hi = max(lo + 1, int((s.end - t0) / total * width))
            bar = " " * lo + "#" * (hi - lo)
            label = f"{s.component}/{s.name}".ljust(label_w)
            lines.append(f"  {label} |{bar.ljust(width)}| {s.duration:.6g}s")
        return "\n".join(lines) + "\n"


# -- process-wide default trace store -------------------------------------
_default_lock = threading.Lock()
_default_store = TraceStore()


def default_trace_store() -> TraceStore:
    """The process-wide store components record spans into by default."""
    with _default_lock:
        return _default_store


def set_default_trace_store(store: TraceStore) -> TraceStore:
    """Swap the process-wide default; returns the previous one."""
    global _default_store
    with _default_lock:
        previous = _default_store
        _default_store = store
        return previous

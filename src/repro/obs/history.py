"""Metrics history: periodic registry snapshots in a bounded ring.

``GET /metrics`` answers *what is the state now*; experiments and
postmortems need *how did it get there*.  :class:`MetricsSnapshotter`
samples a :class:`~repro.obs.metrics.MetricsRegistry` every ``interval``
seconds into a bounded time-series ring: each sample is a flat
``{"t": ..., "values": {"name{label=x}": number}}`` dict (counters and
gauges by value, histograms as ``_count``/``_sum``/``_p99`` derivatives),
so a whole chaos run compresses to a few hundred small dicts regardless
of message volume.

Three driving modes cover every substrate:

- :meth:`start`/:meth:`stop` — a daemon thread for the threaded runtime;
- :meth:`sim_process` — a generator to hand to ``sim.process(...)`` so
  sampling happens in *simulated* time (deterministic under a seed);
- :meth:`sample` — manual, for tests and teardown snapshots.

The ring is served as ``GET /metrics/history`` (JSON) by
:class:`repro.obs.http.Introspection` and exported to
``benchmarks/out/metrics_history.json`` by the chaos experiment via
:meth:`export_json`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Callable

from repro.obs.metrics import MetricsRegistry, default_registry


class MetricsSnapshotter:
    """Samples a registry into a bounded time-series ring buffer."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        interval: float = 1.0,
        capacity: int = 600,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.metrics = metrics if metrics is not None else default_registry()
        self.interval = interval
        self.capacity = capacity
        self.clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._samples: deque[dict] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- sampling ----------------------------------------------------------
    def _flatten(self) -> dict[str, float]:
        values: dict[str, float] = {}
        for name, family in self.metrics.snapshot().items():
            kind = family["kind"]
            for sample in family["samples"]:
                labels = sample.get("labels") or {}
                key = name
                if labels:
                    inner = ",".join(
                        f"{k}={v}" for k, v in sorted(labels.items())
                    )
                    key = f"{name}{{{inner}}}"
                if kind == "histogram":
                    values[f"{key}_count"] = sample["count"]
                    values[f"{key}_sum"] = sample["sum"]
                    p99 = sample.get("quantiles", {}).get(0.99)
                    if p99 is not None:
                        values[f"{key}_p99"] = p99
                else:
                    values[key] = sample["value"]
        return values

    def sample(self, t: float | None = None) -> dict:
        """Take one snapshot now; returns the appended sample."""
        entry = {
            "t": float(t) if t is not None else self.clock(),
            "values": self._flatten(),
        }
        with self._lock:
            self._samples.append(entry)
        return entry

    # -- retrieval ---------------------------------------------------------
    def history(self) -> list[dict]:
        with self._lock:
            return [dict(s) for s in self._samples]

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def to_json(self) -> dict:
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.history(),
        }

    def export_json(self, path: str) -> str:
        """Write the ring to ``path`` as deterministic JSON."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # -- threaded driver ---------------------------------------------------
    def start(self) -> None:
        """Begin background sampling (daemon thread; idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="metrics-snapshotter", daemon=True
        )
        self._thread.start()

    def stop(self, final_sample: bool = True) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)
        if final_sample:
            self.sample()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    # -- simulated driver --------------------------------------------------
    def sim_process(self, sim, until: float | None = None):
        """Generator for ``sim.process(...)``: samples in simulated time.

        With ``until`` set the process exits on its own (so ``sim.run()``
        without a horizon still terminates); without it, it samples until
        the simulation stops scheduling it.
        """
        while until is None or sim.now < until:
            yield sim.timeout(self.interval)
            self.sample(t=sim.now)

"""Unified metrics registry: labeled counters, gauges, and histograms.

Before this module the reproduction had three unconnected bookkeeping
mechanisms (``util.stats`` accumulators, the simnet sampler, per-component
ad-hoc ``stats`` dicts).  :class:`MetricsRegistry` is the one sink they
all feed: every message-path component records into a process-wide default
registry (or an explicitly injected one), and a single exposition surface
(:mod:`repro.obs.http`) renders the lot as Prometheus-style text or JSON.

Design constraints, in order:

- **Cheap hot path.**  A counter increment is a dict hit on a cached child
  handle plus one lock; components resolve their children once at
  construction time, not per event.
- **Disabled mode.**  ``MetricsRegistry(enabled=False)`` hands out a
  shared no-op child for every instrument, so fully unobserved runs cost
  one attribute call per record point (the benchmark-guard baseline).
- **Thread safety.**  Children carry their own locks; the registry lock
  only guards family/child creation.

Histograms reuse :class:`repro.util.stats.Histogram` (bucketed quantiles)
and :class:`repro.util.stats.OnlineStats` (sum/mean/min/max) rather than
inventing a new accumulator.

>>> reg = MetricsRegistry()
>>> reg.counter("demo_total").inc()
>>> reg.counter("demo_total").labels(kind="x").inc(2)
>>> sorted(s["value"] for s in reg.snapshot()["demo_total"]["samples"])
[1, 2]
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterator

from repro.util.stats import Histogram, OnlineStats

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class CounterChild:
    """One labeled monotonic counter."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def get(self) -> float:
        with self._lock:
            return self.value


class GaugeChild:
    """One labeled gauge: settable value or a live callback."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._fn = None
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Bind a live read callback (re-binding replaces the old one)."""
        with self._lock:
            self._fn = fn

    def get(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:  # noqa: BLE001 - a dead gauge reads 0, like the sampler
            return 0.0


class HistogramChild:
    """One labeled latency/size histogram with summary statistics."""

    __slots__ = ("_lock", "_hist", "_stats")

    def __init__(self, bucket_width: float, num_buckets: int) -> None:
        self._lock = threading.Lock()
        self._hist = Histogram(bucket_width, num_buckets=num_buckets)
        self._stats = OnlineStats()

    def observe(self, value: float) -> None:
        with self._lock:
            self._hist.add(max(0.0, value))
            self._stats.add(value)

    def quantile(self, q: float) -> float:
        with self._lock:
            return self._hist.quantile(q)

    @property
    def count(self) -> int:
        with self._lock:
            return self._stats.count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._stats.mean * self._stats.count

    def summary(self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict:
        with self._lock:
            n = self._stats.count
            return {
                "count": n,
                "sum": self._stats.mean * n,
                "min": self._stats.min if n else 0.0,
                "max": self._stats.max if n else 0.0,
                "quantiles": {q: self._hist.quantile(q) for q in quantiles},
            }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative series: ``(upper_edge, count_le)``.

        Only non-empty buckets appear (plus the mandatory ``+Inf`` total,
        which also covers overflow samples), keeping the exposition small
        for sparse latency distributions.
        """
        with self._lock:
            out: list[tuple[float, int]] = []
            cum = 0
            for i, c in enumerate(self._hist.buckets):
                if c:
                    cum += c
                    out.append(((i + 1) * self._hist.bucket_width, cum))
            out.append((math.inf, self._hist.count))
            return out


class _NoopChild:
    """Shared do-nothing child handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def get(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def summary(self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "quantiles": {}}

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        return []

    def labels(self, **labels: str) -> "_NoopChild":
        return self


NOOP_CHILD = _NoopChild()


class MetricFamily:
    """A named metric plus all its labeled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        bucket_width: float = 0.005,
        num_buckets: int = 256,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.bucket_width = bucket_width
        self.num_buckets = num_buckets
        self._lock = threading.Lock()
        self._children: dict[_LabelKey, object] = {}

    def _make_child(self):
        if self.kind == "counter":
            return CounterChild()
        if self.kind == "gauge":
            return GaugeChild()
        return HistogramChild(self.bucket_width, self.num_buckets)

    def labels(self, **labels: str):
        """The child for one label combination (created on first use)."""
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    # -- unlabeled convenience (delegates to the empty-label child) -------
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self.labels().set_function(fn)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> Iterator[tuple[dict[str, str], object]]:
        with self._lock:
            items = list(self._children.items())
        for key, child in items:
            yield dict(key), child


class MetricsRegistry:
    """Process-wide sink for every component's counters/gauges/histograms.

    ``enabled=False`` puts the registry in no-op mode: every instrument
    resolves to a shared inert child and ``snapshot()`` is empty.  This is
    the "disabled mode" the benchmark overhead guard compares against.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    # -- instrument factories --------------------------------------------
    def _family(self, name: str, kind: str, help: str, **kwargs) -> MetricFamily:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = MetricFamily(name, kind, help=help, **kwargs)
                self._families[name] = fam
            elif fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"requested {kind}"
                )
            return fam

    def counter(self, name: str, help: str = ""):
        if not self.enabled:
            return NOOP_CHILD
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = ""):
        if not self.enabled:
            return NOOP_CHILD
        return self._family(name, "gauge", help)

    def histogram(
        self,
        name: str,
        help: str = "",
        bucket_width: float = 0.005,
        num_buckets: int = 256,
    ):
        if not self.enabled:
            return NOOP_CHILD
        return self._family(
            name,
            "histogram",
            help,
            bucket_width=bucket_width,
            num_buckets=num_buckets,
        )

    # -- exposition -------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def snapshot(self) -> dict[str, dict]:
        """JSON-able view: {name: {kind, help, samples: [...]}}."""
        out: dict[str, dict] = {}
        for fam in self.families():
            samples = []
            for labels, child in fam.samples():
                if fam.kind == "histogram":
                    samples.append({"labels": labels, **child.summary()})
                else:
                    samples.append({"labels": labels, "value": child.get()})
            out[fam.name] = {"kind": fam.kind, "help": fam.help, "samples": samples}
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (v0.0.4) a real scraper can ingest.

        Histograms render as proper cumulative ``_bucket{le="..."}``
        series (non-empty buckets plus the mandatory ``+Inf``), followed
        by ``_sum`` and ``_count``; every family gets ``# HELP`` and
        ``# TYPE`` lines.
        """
        lines: list[str] = []
        for fam in self.families():
            name = _prom_name(fam.name)
            help_text = fam.help if fam.help else name
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {fam.kind}")
            for labels, child in fam.samples():
                if fam.kind == "histogram":
                    for edge, cum in child.cumulative_buckets():
                        b_labels = dict(labels)
                        b_labels["le"] = _prom_value(edge)
                        lines.append(
                            f"{name}_bucket{_prom_labels(b_labels)} {cum}"
                        )
                    lines.append(
                        f"{name}_sum{_prom_labels(labels)} "
                        f"{_prom_value(child.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_prom_labels(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_prom_labels(labels)} {_prom_value(child.get())}"
                    )
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{_escape_label(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# -- process-wide default registry ---------------------------------------
_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry components record into by default."""
    with _default_lock:
        return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous

"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import _parse_counts, main


def test_parse_counts():
    assert _parse_counts(None) is None
    assert _parse_counts("") is None
    assert _parse_counts("1,5, 10") == [1, 5, 10]


def test_reliability_command(capsys):
    assert main(["reliability"]) == 0
    out = capsys.readouterr().out
    assert "backoff x8" in out
    assert "all shape checks passed" in out


def test_msgbox_bug_command(capsys):
    assert main(["msgbox-bug", "--clients", "5,60"]) == 0
    out = capsys.readouterr().out
    assert "thread-per-message" in out


@pytest.mark.slow
def test_fig5_command_with_plot(capsys):
    assert main(["fig5", "--clients", "10,100", "--duration", "5", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "messages/minute" in out
    assert "|" in out  # the ASCII plot


@pytest.mark.slow
def test_table1_command(capsys):
    assert main(["table1", "--clients", "5", "--duration", "8"]) == 0
    out = capsys.readouterr().out
    assert "quadrant" in out


def test_drain_command_threaded(capsys):
    assert main(["drain", "--clients", "60"]) == 0
    out = capsys.readouterr().out
    assert "backlog drain" in out
    assert "threaded\t60\t60" in out


def test_drain_command_aio(capsys):
    assert main(["drain", "--clients", "60", "--runtime", "aio"]) == 0
    out = capsys.readouterr().out
    assert "aio\t60\t60" in out


def test_drain_rejects_unknown_runtime():
    with pytest.raises(SystemExit):
        main(["drain", "--runtime", "gevent"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["not-a-thing"])

"""Unit tests for the experiment shape-check logic (synthetic data).

The shape checks are the acceptance criteria for the reproduction; these
tests pin their behaviour on hand-built series so a regression in a check
is distinguishable from a regression in the simulation.
"""

from repro.experiments import fig4, fig5, fig6, table1
from repro.experiments.common import ExperimentReport, paper_shape_summary
from repro.experiments.table1 import QuadrantResult
from repro.workload.results import RunResult, Series


def make_result(clients, tx, lost=0, duration=60.0):
    return RunResult(clients=clients, duration=duration, transmitted=tx, not_sent=lost)


def series(label, points):
    s = Series(label)
    for clients, tx, lost in points:
        s.add(make_result(clients, tx, lost))
    return s


def report_with(*series_list) -> ExperimentReport:
    return ExperimentReport(experiment="x", description="", series=list(series_list))


class TestFig4Checks:
    def good(self):
        return report_with(
            series("direct", [(10, 1000, 0), (500, 2500, 3000), (2000, 2500, 90000)]),
            series("dispatcher", [(10, 950, 0), (500, 2400, 3100), (2000, 2400, 91000)]),
        )

    def test_good_shape_passes(self):
        assert fig4.check_shape(self.good()) == []

    def test_loss_at_small_count_fails(self):
        bad = report_with(
            series("direct", [(10, 1000, 50), (2000, 2500, 90000)]),
            series("dispatcher", [(10, 950, 0), (2000, 2400, 91000)]),
        )
        assert any("loss at smallest" in f for f in fig4.check_shape(bad))

    def test_no_loss_at_large_count_fails(self):
        bad = report_with(
            series("direct", [(10, 1000, 0), (2000, 90000, 10)]),
            series("dispatcher", [(10, 950, 0), (2000, 89000, 10)]),
        )
        assert any("heavy loss" in f for f in fig4.check_shape(bad))

    def test_dispatcher_collapse_detected(self):
        bad = report_with(
            series("direct", [(10, 1000, 0), (500, 2500, 3000)]),
            series("dispatcher", [(10, 100, 0), (500, 300, 3000)]),
        )
        assert any("collapses" in f for f in fig4.check_shape(bad))


class TestFig5Checks:
    def good(self):
        return report_with(
            series("Direct WS-RPC", [(10, 1000, 0), (100, 5000, 0), (300, 5200, 0)]),
            series("With RPC-Dispatcher", [(10, 950, 0), (100, 4800, 0), (300, 5000, 0)]),
        )

    def test_good_shape_passes(self):
        assert fig5.check_shape(self.good()) == []

    def test_loss_fails(self):
        bad = report_with(
            series("Direct WS-RPC", [(10, 1000, 5), (100, 5000, 0), (300, 5200, 0)]),
            series("With RPC-Dispatcher", [(10, 950, 0), (100, 4800, 0), (300, 5000, 0)]),
        )
        assert any("zero loss" in f for f in fig5.check_shape(bad))

    def test_still_scaling_at_top_fails(self):
        bad = report_with(
            series("Direct WS-RPC", [(10, 100, 0), (100, 1000, 0), (300, 9000, 0)]),
            series("With RPC-Dispatcher", [(10, 95, 0), (100, 950, 0), (300, 8500, 0)]),
        )
        assert any("still scaling" in f for f in fig5.check_shape(bad))

    def test_dispatcher_overhead_fails(self):
        bad = report_with(
            series("Direct WS-RPC", [(10, 1000, 0), (100, 5000, 0), (300, 5100, 0)]),
            series("With RPC-Dispatcher", [(10, 100, 0), (100, 500, 0), (300, 510, 0)]),
        )
        assert any("overhead" in f for f in fig5.check_shape(bad))


class TestFig6Checks:
    def test_good_ordering_passes(self):
        good = report_with(
            series(fig6.MODES[0], [(1, 400, 0), (30, 480, 0)]),
            series(fig6.MODES[1], [(1, 200, 0), (30, 230, 0)]),
            series(fig6.MODES[2], [(1, 410, 0), (30, 5000, 0)]),
        )
        assert fig6.check_shape(good) == []

    def test_msgbox_not_best_fails(self):
        bad = report_with(
            series(fig6.MODES[0], [(30, 6000, 0)]),
            series(fig6.MODES[1], [(30, 230, 0)]),
            series(fig6.MODES[2], [(30, 5000, 0)]),
        )
        assert any("not best" in f for f in fig6.check_shape(bad))

    def test_dispatcher_not_slowest_fails(self):
        bad = report_with(
            series(fig6.MODES[0], [(30, 480, 0)]),
            series(fig6.MODES[1], [(30, 2000, 0)]),
            series(fig6.MODES[2], [(30, 5000, 0)]),
        )
        assert any("slowest" in f for f in fig6.check_shape(bad))

    def test_small_counts_exempt_from_ordering(self):
        ok = report_with(
            series(fig6.MODES[0], [(5, 480, 0)]),
            series(fig6.MODES[1], [(5, 2000, 0)]),  # fine below 10 clients
            series(fig6.MODES[2], [(5, 100, 0)]),
        )
        assert fig6.check_shape(ok) == []


class TestTable1Checks:
    def report(self, **overrides) -> ExperimentReport:
        results = {
            1: QuadrantResult(1, True, False, 480.0),
            2: QuadrantResult(2, True, False, 480.0),
            3: QuadrantResult(3, True, False, 60.0),
            4: QuadrantResult(4, True, True, 4000.0),
        }
        results.update(overrides)
        report = ExperimentReport(experiment="t1", description="")
        report.extras["results"] = results
        return report

    def test_good_matrix_passes(self):
        assert table1.check_shape(self.report()) == []

    def test_broken_quadrant_detected(self):
        bad = self.report()
        bad.extras["results"][2] = QuadrantResult(2, False, False, 0.0)
        assert any("broken" in f for f in table1.check_shape(bad))

    def test_rpc_surviving_slow_service_detected(self):
        bad = self.report()
        bad.extras["results"][1] = QuadrantResult(1, True, True, 480.0)
        assert any("time limits" in f for f in table1.check_shape(bad))

    def test_q4_must_be_unlimited(self):
        bad = self.report()
        bad.extras["results"][4] = QuadrantResult(4, True, False, 4000.0)
        assert any("quadrant 4" in f for f in table1.check_shape(bad))

    def test_q3_bottleneck_required(self):
        bad = self.report()
        bad.extras["results"][3] = QuadrantResult(3, True, False, 9000.0)
        assert any("bottleneck" in f for f in table1.check_shape(bad))

    def test_verdict_property(self):
        assert QuadrantResult(4, True, True, 1.0).verdict == "unlimited"
        assert QuadrantResult(1, True, False, 1.0).verdict == "limited"
        assert QuadrantResult(2, False, False, 1.0).verdict == "broken"


def test_paper_shape_summary_renders():
    s = series("direct", [(10, 600, 5)])
    text = paper_shape_summary([s])
    assert "direct" in text and "600" in text and "5" in text


def test_report_render_and_lookup():
    report = report_with(series("a", [(1, 10, 0)]))
    report.tables.append("table text")
    report.notes.append("a note")
    out = report.render()
    assert "table text" in out and "a note" in out
    assert report.series_by_label("a").label == "a"
    import pytest

    with pytest.raises(KeyError):
        report.series_by_label("missing")

"""Tests for the byte-offset envelope scanner (zero-copy fast path)."""

import pytest

from repro.errors import FastPathUnsupported
from repro.xmlmini import QName, parse, parse_fragment, scan_envelope

SOAP = "http://schemas.xmlsoap.org/soap/envelope/"


def doc(header="", body="<p>hi</p>", decl='<?xml version="1.0"?>'):
    h = f"<s:Header>{header}</s:Header>" if header is not None else ""
    return (
        f'{decl}<s:Envelope xmlns:s="{SOAP}">{h}<s:Body>{body}</s:Body>'
        f"</s:Envelope>"
    ).encode()


def bail_reason(data):
    with pytest.raises(FastPathUnsupported) as exc_info:
        scan_envelope(data)
    return exc_info.value.reason


def test_scan_offsets_reconstruct_the_document():
    data = doc(header="<a>1</a>")
    scan = scan_envelope(data)
    assert scan.root_name == QName(SOAP, "Envelope")
    # preamble + header span + tail is the whole document
    header_bytes = data[scan.splice_start : scan.tail_start]
    assert header_bytes.startswith(b"<s:Header>")
    assert header_bytes.endswith(b"</s:Header>")
    assert data[: scan.splice_start] + header_bytes + data[scan.tail_start :] == data


def test_body_view_is_zero_copy_slice():
    data = doc(body="<p>payload</p>")
    scan = scan_envelope(data)
    view = scan.body_view
    assert isinstance(view, memoryview)
    assert bytes(view) == data[scan.body_start : scan.body_end]
    assert bytes(view).startswith(b"<s:Body>")
    assert bytes(view).endswith(b"</s:Body>")


def test_header_parsed_matches_dom_parse():
    data = doc(header='<a x="1">one</a><b>two</b>')
    scan = scan_envelope(data)
    dom = parse(data)
    dom_header = next(iter(dom.element_children()))
    assert scan.header == dom_header


def test_no_header_splices_at_body():
    data = doc(header=None)
    scan = scan_envelope(data)
    assert scan.header is None
    assert scan.splice_start == scan.tail_start == scan.body_start


def test_body_first_child_and_count():
    scan = scan_envelope(doc(body="<p><q/><q/></p>"))
    assert scan.body_children == 1
    assert scan.body_first_child == QName(None, "p")
    scan = scan_envelope(doc(body=""))
    assert scan.body_children == 0
    assert scan.body_first_child is None


def test_body_with_cdata_comments_and_pi():
    body = "<p><![CDATA[ </fake> ]]><!-- <s:Body> --><?pi data?>text</p>"
    data = doc(body=body)
    scan = scan_envelope(data)
    assert scan.body_children == 1
    assert bytes(scan.body_view).endswith(b"</s:Body>")


def test_quoted_angle_brackets_in_attributes():
    data = doc(body='<p attr="a &gt; b" other=\'x>y\'><q/></p>')
    scan = scan_envelope(data)
    assert scan.body_first_child == QName(None, "p")


def test_self_closing_body():
    data = (
        f'<s:Envelope xmlns:s="{SOAP}"><s:Header><h/></s:Header><s:Body/>'
        f"</s:Envelope>"
    ).encode()
    scan = scan_envelope(data)
    assert scan.body_children == 0
    assert bytes(scan.body_view) == b"<s:Body/>"


def test_prolog_comments_and_bom():
    data = b"\xef\xbb\xbf" + doc(decl='<?xml version="1.0" encoding="UTF-8"?>')
    data = data.replace(b"?><s:", b"?><!-- hello --><?pi?><s:", 1)
    scan = scan_envelope(data)
    assert scan.root_name.local == "Envelope"


def test_trailing_comment_accepted():
    data = doc() + b"<!-- trailer -->  "
    assert scan_envelope(data).root_name.local == "Envelope"


# -- bail-outs ------------------------------------------------------------

def test_bails_on_doctype():
    data = b'<?xml version="1.0"?><!DOCTYPE x []>' + doc(decl="")
    assert bail_reason(data) == "doctype"


def test_bails_on_non_utf8_encoding_declaration():
    data = doc(decl='<?xml version="1.0" encoding="latin-1"?>')
    assert bail_reason(data) == "encoding"


def test_bails_on_multi_root():
    assert bail_reason(doc() + b"<extra/>") == "trailing_content"


def test_bails_on_text_after_body():
    data = doc().replace(b"</s:Envelope>", b"junk</s:Envelope>")
    assert bail_reason(data) == "trailing_content"


def test_bails_on_envelope_child_in_foreign_namespace():
    data = doc().replace(b"<s:Body>", b'<x xmlns="urn:x"/><s:Body>')
    assert bail_reason(data) == "structure"


def test_bails_on_missing_body():
    data = f'<s:Envelope xmlns:s="{SOAP}"><s:Header/></s:Envelope>'.encode()
    assert bail_reason(data) == "structure"


def test_bails_on_duplicate_header():
    data = doc(header="<a/>").replace(
        b"</s:Header>", b"</s:Header><s:Header></s:Header>", 1
    )
    assert bail_reason(data) == "structure"


def test_bails_on_entity_in_namespace_declaration():
    data = doc().replace(
        b"<p>hi</p>", b'<p><i xmlns:q="urn:a&amp;b"><q:x/></i></p>', 1
    )
    # below the Body's first child nothing is decoded, so this is fine ...
    assert scan_envelope(data).body_children == 1
    # ... but on a scanned tag it forces the slow path
    bad = doc().replace(
        f'xmlns:s="{SOAP}"'.encode(),
        f'xmlns:s="{SOAP}" xmlns:q="urn:a&amp;b"'.encode(),
        1,
    )
    assert bail_reason(bad) == "unsupported"


def test_bails_on_undeclared_prefix():
    data = f'<s:Envelope xmlns:x="{SOAP}"><x:Body/></s:Envelope>'.encode()
    assert bail_reason(data) == "malformed"


def test_bails_on_unterminated_document():
    assert bail_reason(doc()[:-5]) in ("malformed", "structure")


def test_bails_on_mismatched_end_tag():
    data = doc().replace(b"</s:Envelope>", b"</s:Envelop>")
    assert bail_reason(data) in ("malformed", "structure")


# -- parse_fragment -------------------------------------------------------

def test_parse_fragment_uses_outer_scope():
    el = parse_fragment("<q:x>v</q:x>", {"q": "urn:q", None: "urn:default"})
    assert el.name == QName("urn:q", "x")
    el = parse_fragment("<y/>", {None: "urn:default"})
    assert el.name == QName("urn:default", "y")


def test_parse_fragment_rejects_trailing_content():
    from repro.errors import XmlParseError

    with pytest.raises(XmlParseError):
        parse_fragment("<a/><b/>", {})

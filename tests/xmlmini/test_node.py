"""Tests for the element tree."""

import pytest

from repro.errors import XmlError
from repro.xmlmini import Element, QName


def test_constructor_accepts_clark_strings():
    e = Element("{urn:x}tag")
    assert e.name == QName("urn:x", "tag")


def test_text_shorthand():
    e = Element("tag", text="hello")
    assert e.text == "hello"


def test_text_and_children_mutually_exclusive():
    with pytest.raises(XmlError):
        Element("tag", children=["a"], text="b")


def test_add_returns_child_element():
    root = Element("root")
    child = root.add(Element("child"))
    assert child.name.local == "child"
    assert root.children == [child]


def test_add_rejects_bad_types():
    with pytest.raises(XmlError):
        Element("root").add(42)


def test_attrs_set_get_with_clark():
    e = Element("tag")
    e.set("{urn:a}attr", "v")
    assert e.get("{urn:a}attr") == "v"
    assert e.get("missing", "dflt") == "dflt"


def test_find_and_find_all():
    root = Element("root")
    a1 = root.add(Element("{urn:x}a"))
    root.add(Element("b"))
    a2 = root.add(Element("{urn:x}a"))
    assert root.find("{urn:x}a") is a1
    assert root.find_all("{urn:x}a") == [a1, a2]
    assert root.find("missing") is None


def test_require_raises_when_absent():
    with pytest.raises(XmlError):
        Element("root").require("child")


def test_text_ignores_child_elements():
    root = Element("root")
    root.children = ["a", Element("mid", text="X"), "b"]
    assert root.text == "ab"
    assert root.full_text() == "aXb"


def test_structural_equality_normalizes_text_runs():
    a = Element("r")
    a.children = ["he", "llo"]
    b = Element("r")
    b.children = ["hello"]
    assert a == b


def test_structural_equality_ignores_empty_text():
    a = Element("r")
    a.children = ["", Element("c")]
    b = Element("r")
    b.children = [Element("c")]
    assert a == b


def test_inequality_on_attrs():
    a = Element("r", attrs={QName(None, "x"): "1"})
    b = Element("r")
    assert a != b


def test_copy_is_deep():
    root = Element("root")
    child = root.add(Element("child", text="t"))
    dup = root.copy()
    assert dup == root
    dup.element_children().__next__().children[0] = "changed"
    assert child.text == "t"


def test_element_children_iterates_only_elements():
    root = Element("root")
    root.children = ["txt", Element("a"), "more", Element("b")]
    assert [c.name.local for c in root.element_children()] == ["a", "b"]

"""Tests for qualified names."""

import pytest

from repro.errors import XmlError
from repro.xmlmini.names import QName, is_ncname, split_prefixed


class TestIsNcname:
    @pytest.mark.parametrize("name", ["a", "Envelope", "_x", "a-b.c1", "héllo"])
    def test_valid(self, name):
        assert is_ncname(name)

    @pytest.mark.parametrize("name", ["", "1abc", "-a", "a b", "a:b", "a<b"])
    def test_invalid(self, name):
        assert not is_ncname(name)


class TestSplitPrefixed:
    def test_unprefixed(self):
        assert split_prefixed("local") == (None, "local")

    def test_prefixed(self):
        assert split_prefixed("soap:Envelope") == ("soap", "Envelope")

    @pytest.mark.parametrize("bad", [":x", "x:", "a:b:c"])
    def test_malformed(self, bad):
        with pytest.raises(XmlError):
            split_prefixed(bad)


class TestQName:
    def test_equality_and_hash(self):
        a = QName("urn:x", "tag")
        b = QName("urn:x", "tag")
        assert a == b
        assert hash(a) == hash(b)
        assert a != QName("urn:y", "tag")
        assert a != QName("urn:x", "other")

    def test_not_equal_to_strings(self):
        assert QName(None, "tag") != "tag"

    def test_rejects_invalid_local(self):
        with pytest.raises(XmlError):
            QName("urn:x", "bad name")

    def test_rejects_empty_namespace(self):
        with pytest.raises(XmlError):
            QName("", "tag")

    def test_clark_roundtrip(self):
        q = QName("urn:x", "tag")
        assert q.clark() == "{urn:x}tag"
        assert QName.from_clark(q.clark()) == q

    def test_clark_no_namespace(self):
        q = QName(None, "tag")
        assert q.clark() == "tag"
        assert QName.from_clark("tag") == q

    def test_from_clark_malformed(self):
        with pytest.raises(XmlError):
            QName.from_clark("{unclosed")

    def test_repr(self):
        assert "tag" in repr(QName(None, "tag"))

"""Tests for the from-scratch XML parser."""

import pytest

from repro.errors import XmlParseError
from repro.xmlmini import Element, QName, parse


class TestBasicParsing:
    def test_empty_element(self):
        e = parse("<root/>")
        assert e.name == QName(None, "root")
        assert e.children == []

    def test_text_content(self):
        assert parse("<a>hello</a>").text == "hello"

    def test_nested_elements(self):
        e = parse("<a><b><c/></b></a>")
        assert e.require("b").require("c").name.local == "c"

    def test_attributes(self):
        e = parse('<a x="1" y=\'2\'/>')
        assert e.get("x") == "1"
        assert e.get("y") == "2"

    def test_mixed_content(self):
        e = parse("<a>pre<b/>post</a>")
        assert e.children[0] == "pre"
        assert isinstance(e.children[1], Element)
        assert e.children[2] == "post"

    def test_xml_declaration_and_bom(self):
        assert parse('﻿<?xml version="1.0"?><a/>').name.local == "a"

    def test_bytes_input_utf8(self):
        assert parse("<a>é</a>".encode("utf-8")).text == "é"

    def test_invalid_utf8_bytes(self):
        with pytest.raises(XmlParseError):
            parse(b"<a>\xff\xfe</a>")

    def test_comments_skipped(self):
        e = parse("<a><!-- note --><b/></a>")
        assert [c.name.local for c in e.element_children()] == ["b"]

    def test_processing_instruction_skipped(self):
        e = parse("<a><?php echo ?><b/></a>")
        assert e.find("b") is not None

    def test_cdata(self):
        assert parse("<a><![CDATA[<not> & parsed]]></a>").text == "<not> & parsed"

    def test_whitespace_in_tags(self):
        e = parse('<a  x="1"\n  y="2" ></a >')
        assert e.get("x") == "1" and e.get("y") == "2"


class TestEntities:
    def test_predefined(self):
        assert parse("<a>&lt;&gt;&amp;&apos;&quot;</a>").text == "<>&'\""

    def test_numeric_decimal_and_hex(self):
        assert parse("<a>&#65;&#x42;</a>").text == "AB"

    def test_unknown_entity(self):
        with pytest.raises(XmlParseError):
            parse("<a>&nbsp;</a>")

    def test_surrogate_reference_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a>&#xD800;</a>")

    def test_entities_in_attributes(self):
        assert parse('<a x="&lt;&quot;"/>').get("x") == '<"'


class TestNamespaces:
    def test_default_namespace(self):
        e = parse('<a xmlns="urn:x"><b/></a>')
        assert e.name == QName("urn:x", "a")
        assert e.find(QName("urn:x", "b")) is not None

    def test_prefixed_namespace(self):
        e = parse('<p:a xmlns:p="urn:x"/>')
        assert e.name == QName("urn:x", "a")

    def test_default_ns_does_not_apply_to_attributes(self):
        e = parse('<a xmlns="urn:x" k="v"/>')
        assert e.get(QName(None, "k")) == "v"

    def test_prefixed_attribute(self):
        e = parse('<a xmlns:p="urn:x" p:k="v"/>')
        assert e.get(QName("urn:x", "k")) == "v"

    def test_scope_shadowing(self):
        e = parse('<a xmlns="urn:outer"><b xmlns="urn:inner"/><c/></a>')
        children = list(e.element_children())
        assert children[0].name.ns == "urn:inner"
        assert children[1].name.ns == "urn:outer"

    def test_default_ns_undeclaration(self):
        e = parse('<a xmlns="urn:x"><b xmlns=""/></a>')
        assert next(e.element_children()).name.ns is None

    def test_undeclared_prefix_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<p:a/>")

    def test_xml_prefix_implicit(self):
        e = parse('<a xml:lang="en"/>')
        assert e.get(QName("http://www.w3.org/XML/1998/namespace", "lang")) == "en"


class TestMalformed:
    @pytest.mark.parametrize(
        "doc",
        [
            "",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            "<a x='1' x='2'/>",
            "text only",
            "<a/><b/>",
            "<a><b></a></b>",
            '<a x="<"/>',
            "<a>&unterminated",
            "<!-- -- --><a/>",
            "<1abc/>",
        ],
    )
    def test_rejected(self, doc):
        with pytest.raises(XmlParseError):
            parse(doc)

    def test_duplicate_namespaced_attribute(self):
        with pytest.raises(XmlParseError):
            parse('<a xmlns:p="urn:x" xmlns:q="urn:x" p:k="1" q:k="2"/>')

    def test_doctype_rejected(self):
        with pytest.raises(XmlParseError):
            parse('<!DOCTYPE a [<!ENTITY e "boom">]><a>&e;</a>')

    def test_error_reports_line(self):
        try:
            parse("<a>\n\n<bad")
        except XmlParseError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected XmlParseError")

    def test_content_after_root(self):
        with pytest.raises(XmlParseError):
            parse("<a/>trailing")

    def test_comment_and_pi_after_root_allowed(self):
        assert parse("<a/><!-- bye --><?pi ?>").name.local == "a"

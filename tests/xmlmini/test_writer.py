"""Tests for the XML serializer."""

import pytest

from repro.errors import XmlError
from repro.xmlmini import Element, QName, parse, serialize, write_document
from repro.xmlmini.names import XMLNS_NS
from repro.xmlmini.writer import escape_attr, escape_text


def test_empty_element_self_closes():
    assert serialize(Element("a")) == "<a/>"


def test_text_escaping():
    assert serialize(Element("a", text="x < y & z > w")) == (
        "<a>x &lt; y &amp; z &gt; w</a>"
    )


def test_attr_escaping():
    e = Element("a")
    e.set("k", 'va"l\nue')
    assert 'k="va&quot;l&#10;ue"' in serialize(e)


def test_escape_helpers():
    assert escape_text("&<>") == "&amp;&lt;&gt;"
    assert escape_attr('"\t\r') == "&quot;&#9;&#13;"


def test_preferred_prefixes_used():
    soap = "http://schemas.xmlsoap.org/soap/envelope/"
    out = serialize(Element(QName(soap, "Envelope")))
    assert out.startswith("<soapenv:Envelope")


def test_auto_prefixes_for_unknown_namespaces():
    out = serialize(Element(QName("urn:custom", "a")))
    assert 'xmlns:n0="urn:custom"' in out


def test_namespaces_hoisted_to_root():
    root = Element("root")
    root.add(Element(QName("urn:x", "a")))
    root.add(Element(QName("urn:x", "b")))
    out = serialize(root)
    assert out.count("urn:x") == 1  # declared once, on the root


def test_xml_decl():
    assert serialize(Element("a"), xml_decl=True).startswith("<?xml")
    assert write_document(Element("a")) == b'<?xml version="1.0" encoding="UTF-8"?><a/>'


def test_xmlns_attrs_never_copied_through():
    e = Element("a", attrs={QName(XMLNS_NS, "stale"): "urn:old"})
    assert "urn:old" not in serialize(e)


def test_element_in_xmlns_namespace_rejected():
    with pytest.raises(XmlError):
        serialize(Element(QName(XMLNS_NS, "bogus")))


def test_mixed_namespaced_and_plain():
    root = Element(QName("urn:x", "r"))
    root.add(Element("plain", text="t"))
    reparsed = parse(serialize(root))
    assert reparsed.find(QName(None, "plain")).text == "t"


def test_roundtrip_complex_document():
    doc = (
        '<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">'
        "<soapenv:Header>"
        '<wsa:To xmlns:wsa="http://schemas.xmlsoap.org/ws/2004/08/addressing">urn:x</wsa:To>'
        "</soapenv:Header>"
        '<soapenv:Body><e:echo xmlns:e="urn:echo"><text>hi &amp; bye</text></e:echo></soapenv:Body>'
        "</soapenv:Envelope>"
    )
    tree = parse(doc)
    assert parse(serialize(tree)) == tree


def test_deterministic_output():
    root = Element(QName("urn:a", "r"))
    root.set(QName("urn:b", "x"), "1")
    root.add(Element(QName("urn:c", "child")))
    assert serialize(root) == serialize(root.copy())

"""Property-based tests: serialize∘parse is the identity on element trees."""

from hypothesis import given, settings, strategies as st

from repro.xmlmini import Element, QName, parse, serialize

_ns = st.sampled_from(
    [None, "urn:a", "urn:b", "http://schemas.xmlsoap.org/soap/envelope/"]
)
_local = st.from_regex(r"[A-Za-z_][A-Za-z0-9._-]{0,8}", fullmatch=True)
# text without lone surrogates or control chars the writer doesn't escape
_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
        whitelist_characters=" \t\n",
    ),
    max_size=20,
)


@st.composite
def qnames(draw):
    return QName(draw(_ns), draw(_local))


@st.composite
def elements(draw, depth=3):
    el = Element(draw(qnames()))
    for _ in range(draw(st.integers(0, 3))):
        el.attrs[draw(qnames())] = draw(_text)
    if depth > 0:
        n = draw(st.integers(0, 3))
        for _ in range(n):
            if draw(st.booleans()):
                child = draw(elements(depth=depth - 1))
                el.children.append(child)
            else:
                el.children.append(draw(_text))
    return el


@given(elements())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip(tree):
    assert parse(serialize(tree)) == tree


@given(elements())
@settings(max_examples=75, deadline=None)
def test_roundtrip_with_xml_declaration(tree):
    assert parse(serialize(tree, xml_decl=True)) == tree


@given(elements())
@settings(max_examples=75, deadline=None)
def test_serialization_is_stable(tree):
    """Serializing the same tree twice yields identical bytes."""
    assert serialize(tree) == serialize(tree)


@given(elements())
@settings(max_examples=75, deadline=None)
def test_copy_serializes_identically(tree):
    assert serialize(tree.copy()) == serialize(tree)


@given(_text)
@settings(max_examples=100, deadline=None)
def test_text_content_preserved_exactly(text):
    el = Element("t", text=text)
    reparsed = parse(serialize(el))
    assert reparsed.text == text

"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.XmlError,
    errors.XmlParseError,
    errors.SoapError,
    errors.SoapFaultError,
    errors.AddressingError,
    errors.HttpError,
    errors.HttpParseError,
    errors.TransportError,
    errors.ConnectionRefused,
    errors.ConnectionTimeout,
    errors.ConnectionClosed,
    errors.ConnectionLimitExceeded,
    errors.SimulationError,
    errors.SimInterrupt,
    errors.RegistryError,
    errors.UnknownServiceError,
    errors.RoutingError,
    errors.MailboxError,
    errors.MailboxNotFound,
    errors.MailboxQuotaExceeded,
    errors.MailboxAuthError,
    errors.AuthError,
    errors.DeliveryExpired,
    errors.JournalError,
]


@pytest.mark.parametrize("exc_type", ALL_ERRORS)
def test_everything_derives_from_repro_error(exc_type):
    assert issubclass(exc_type, errors.ReproError)


def test_transport_taxonomy():
    for sub in (
        errors.ConnectionRefused,
        errors.ConnectionTimeout,
        errors.ConnectionClosed,
        errors.ConnectionLimitExceeded,
    ):
        assert issubclass(sub, errors.TransportError)


def test_mailbox_taxonomy():
    for sub in (
        errors.MailboxNotFound,
        errors.MailboxQuotaExceeded,
        errors.MailboxAuthError,
    ):
        assert issubclass(sub, errors.MailboxError)


def test_soap_fault_error_carries_fields():
    exc = errors.SoapFaultError("Client", "bad", detail="d")
    assert exc.code == "Client"
    assert exc.reason == "bad"
    assert exc.detail == "d"
    assert "Client" in str(exc)


def test_xml_parse_error_location_formats():
    assert "(line 3)" in str(errors.XmlParseError("x", line=3))
    assert "(offset 9)" in str(errors.XmlParseError("x", pos=9))
    assert str(errors.XmlParseError("bare")) == "bare"


def test_unknown_service_error_carries_logical():
    exc = errors.UnknownServiceError("echo")
    assert exc.logical == "echo"
    assert "echo" in str(exc)


def test_sim_interrupt_carries_cause():
    exc = errors.SimInterrupt(cause="deadline")
    assert exc.cause == "deadline"

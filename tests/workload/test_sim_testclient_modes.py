"""Tests for sim test client connection modes and edge behaviour."""

import pytest

from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.topology import AccessLink, Network
from repro.workload.echo import EchoService
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


def build_world():
    sim = Simulator()
    net = Network(sim)
    client = net.add_host("client", AccessLink(5000, 5000, 0.005))
    server_host = net.add_host("server", AccessLink(5000, 5000, 0.005))
    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    server = SimHttpServer(
        net, server_host, 80, lambda r: app.handle_request(r, None)
    )
    return net, client, server


def test_keep_alive_uses_one_connection_per_client():
    net, client, server = build_world()
    tester = SimRampTester(net, client, "server", 80, "/echo")
    result = tester.run(SimRampConfig(clients=3, duration=5.0, keep_alive=True))
    assert result.transmitted > 20
    assert server.connections_accepted == 3


def test_connection_per_call_mode():
    net, client, server = build_world()
    tester = SimRampTester(net, client, "server", 80, "/echo")
    result = tester.run(SimRampConfig(clients=3, duration=5.0, keep_alive=False))
    assert result.transmitted > 10
    # one connection per call (give or take the last in-flight ones)
    assert server.connections_accepted >= result.transmitted

def test_keep_alive_is_faster_than_reconnecting():
    net1, client1, _ = build_world()
    with_ka = SimRampTester(net1, client1, "server", 80, "/echo").run(
        SimRampConfig(clients=2, duration=5.0, keep_alive=True)
    )
    net2, client2, _ = build_world()
    without_ka = SimRampTester(net2, client2, "server", 80, "/echo").run(
        SimRampConfig(clients=2, duration=5.0, keep_alive=False)
    )
    # reconnecting pays an extra handshake RTT per call
    assert with_ka.transmitted > without_ka.transmitted * 1.2


def test_latency_statistics_populated():
    net, client, _ = build_world()
    result = SimRampTester(net, client, "server", 80, "/echo").run(
        SimRampConfig(clients=1, duration=3.0)
    )
    assert result.latency.count == result.transmitted
    assert 0.01 < result.latency.mean < 1.0
    assert result.latency.min <= result.latency.mean <= result.latency.max
